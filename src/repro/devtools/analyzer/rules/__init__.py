"""Built-in contract rules.

Importing this package registers every rule with
:data:`repro.devtools.analyzer.core.REGISTRY`.
"""

from repro.devtools.analyzer.rules import (  # noqa: F401
    batch_api,
    buffer_internals,
    config_hygiene,
    determinism,
    mutable_state,
    obs_hygiene,
    serve_hygiene,
    stats_conservation,
    wire_schema,
)
