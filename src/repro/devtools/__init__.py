"""Developer tooling that ships with the reproduction.

Currently one subpackage: :mod:`repro.devtools.analyzer`, the AST-based
contract checker that enforces the runtime's determinism,
wire-serialisation, and cycle-accounting invariants at lint time.
"""
