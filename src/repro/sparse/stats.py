"""Degree and sparsity statistics.

These are the measurements behind the paper's motivation section:
Figure 2 shows that in real graph datasets the top 20% of nodes by
degree account for more than 70% of all edges, which is what makes a
*hybrid* dataflow worthwhile.  ``edge_share_of_top_fraction`` computes
exactly that curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional, Tuple

import numpy as np

from repro.sparse.coo import COOMatrix


@dataclass(frozen=True)
class DegreeStats:
    """Summary of a degree distribution.

    Attributes
    ----------
    n_nodes / n_edges:
        Matrix dimension and stored non-zero count.
    min / max / mean / median:
        Degree summary statistics.
    top20_edge_share:
        Fraction of all edges owned by the top 20% highest-degree nodes
        (the paper's Fig. 2 headline statistic).
    gini:
        Gini coefficient of the degree distribution -- 0 for perfectly
        balanced degrees, approaching 1 for extreme power-law skew.
    """

    n_nodes: int
    n_edges: int
    min: int
    max: int
    mean: float
    median: float
    top20_edge_share: float
    gini: float


def sparsity(matrix: COOMatrix) -> float:
    """Fraction of zero cells, e.g. 0.9986 for Cora's adjacency matrix."""
    return 1.0 - matrix.density


def edge_share_of_top_fraction(degrees: np.ndarray, fraction: float) -> float:
    """Share of total edges held by the top ``fraction`` of nodes by degree.

    ``fraction`` is in (0, 1]; at least one node is always counted.  For
    the paper's Fig. 2 observation, call with ``fraction=0.2`` and expect
    > 0.7 on power-law graphs.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    degrees = np.asarray(degrees)
    total = degrees.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(fraction * degrees.size)))
    top = np.sort(degrees)[::-1][:k]
    return float(top.sum() / total)


def gini_coefficient(degrees: np.ndarray) -> float:
    """Gini coefficient of a non-negative degree vector (0 = uniform)."""
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    n = degrees.size
    total = degrees.sum()
    if n == 0 or total == 0:
        return 0.0
    # Standard closed form over the sorted sample.
    index = np.arange(1, n + 1)
    return float((2.0 * (index * degrees).sum() / (n * total)) - (n + 1) / n)


def degree_stats(matrix: COOMatrix, axis: str = "row") -> DegreeStats:
    """Compute :class:`DegreeStats` for the rows or columns of a matrix.

    ``axis='row'`` measures out-degrees, ``axis='col'`` in-degrees.  For
    the symmetric adjacency matrices in Table II the two coincide.
    """
    if axis == "row":
        degrees = matrix.row_degrees()
    elif axis == "col":
        degrees = matrix.col_degrees()
    else:
        raise ValueError("axis must be 'row' or 'col'")
    if degrees.size == 0:
        return DegreeStats(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    return DegreeStats(
        n_nodes=int(degrees.size),
        n_edges=int(degrees.sum()),
        min=int(degrees.min()),
        max=int(degrees.max()),
        mean=float(degrees.mean()),
        median=float(np.median(degrees)),
        top20_edge_share=edge_share_of_top_fraction(degrees, 0.2),
        gini=gini_coefficient(degrees),
    )


def degree_cdf(
    degrees: np.ndarray, fractions: "Optional[np.ndarray]" = None
) -> "Tuple[np.ndarray, np.ndarray]":
    """Cumulative edge share as a function of top-node fraction (Fig. 2 curve).

    Returns ``(fractions, shares)`` where ``shares[k]`` is the fraction of
    edges owned by the top ``fractions[k]`` of nodes sorted by degree
    descending.
    """
    if fractions is None:
        fractions = np.linspace(0.05, 1.0, 20)
    fractions = np.asarray(fractions, dtype=np.float64)
    shares = np.array(
        [edge_share_of_top_fraction(degrees, f) for f in fractions]
    )
    return fractions, shares
