"""Rule ``obs-hygiene``: tracing is opt-in and must stay free when off.

Two contracts keep :mod:`repro.obs` honest in model code (kernels and
baseline accelerators):

* **Events go through the Tracer API.**  Appending to a tracer's event
  list directly (``tracer._events.append(...)`` or ``tracer.events``)
  bypasses the schema the exporter and the validator agree on; the only
  legitimate emitters are ``span`` / ``instant`` / ``counter``.
* **Every emission is guarded.**  ``tracer.span(...)`` builds its args
  dict before the no-op body runs, so an unguarded call allocates on
  the hot path even with the :class:`~repro.obs.tracer.NullTracer`.
  Call sites must sit under ``if tracer.enabled:`` (or an equivalent
  conditional expression), which is a single attribute load on a class
  constant when tracing is off.

Scope is the model code the zero-overhead contract protects:
``repro.hymm`` and ``repro.baselines``.  The obs package itself and
the simulator core are exempt -- the tracer's own methods obviously
touch ``_events``, and the engine's guarded sites are covered by this
rule's pattern anyway (``repro.sim`` can be added to the scope once it
has no audited exceptions).

The interprocedural pass closes the helper loophole: a scope function
calling a helper whose inferred effects include ``emits-trace`` (an
*unguarded* emission somewhere below, see
:mod:`repro.devtools.analyzer.effects`) is flagged at the call site
with the witness chain.  Callees living in the ``audited`` packages
(default: ``repro.obs`` and ``repro.sim``, whose emission sites are
internally guarded or are the Tracer implementation itself) are
exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.devtools.analyzer.callgraph import KIND_CALL, get_callgraph
from repro.devtools.analyzer.core import Finding, Project, Rule, register
from repro.devtools.analyzer.effects import EMITS_TRACE, get_effects

#: The Tracer API's emitting methods.
TRACER_METHODS = {"span", "instant", "counter"}

#: Event-list attributes that only the tracer implementation may touch.
EVENT_FIELDS = {"events", "_events"}


@register
class ObsHygieneRule(Rule):
    name = "obs-hygiene"
    description = (
        "kernels and baselines emit trace events only via the Tracer "
        "API, with every call site guarded by `if tracer.enabled:`"
    )
    default_severity = "error"
    default_options = {
        "scope": [
            "repro.hymm",
            "repro.baselines",
        ],
        #: Packages whose emission sites are audited (internally
        #: guarded or the tracer implementation itself): calls into
        #: them never count as transitive unguarded emissions.
        "audited": [
            "repro.obs",
            "repro.sim",
        ],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        for mod in project.in_package(*scope):
            parents = _parent_map(mod.tree)
            for node in ast.walk(mod.tree):
                if isinstance(node, ast.Attribute):
                    if node.attr in EVENT_FIELDS:
                        receiver = _receiver_chain(node.value)
                        if receiver is not None and _tracer_like(receiver):
                            yield self.finding(
                                project, mod, node,
                                f"direct access to tracer event list "
                                f"{receiver}.{node.attr}: emit through the "
                                f"Tracer API (span/instant/counter)",
                                symbol=f"{receiver}.{node.attr}",
                            )
                    continue
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in TRACER_METHODS:
                    continue
                receiver = _receiver_chain(func.value)
                if receiver is None or not _tracer_like(receiver):
                    continue
                if _enabled_guarded(node, parents):
                    continue
                yield self.finding(
                    project, mod, node,
                    f"unguarded tracer call {receiver}.{func.attr}(...): "
                    f"wrap in `if {receiver}.enabled:` so the NullTracer "
                    f"path stays allocation-free",
                    symbol=f"{receiver}.{func.attr}",
                )
        yield from self._check_transitive(project, scope)

    def _check_transitive(
        self, project: Project, scope: "tuple[str, ...]"
    ) -> Iterator[Finding]:
        """Unguarded emissions reached through a helper call."""
        audited = tuple(self.options["audited"])
        graph = get_callgraph(project)
        effects = get_effects(project)
        in_pkgs = lambda m, pkgs: any(  # noqa: E731
            m == p or m.startswith(p + ".") for p in pkgs
        )
        for info in graph.in_package(*scope):
            for site in graph.sites(info.qname):
                if site.kind != KIND_CALL or site.callee is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None:
                    continue
                callee_mod = callee.module.module
                if in_pkgs(callee_mod, audited) or in_pkgs(callee_mod, scope):
                    continue  # audited, or gets its own direct finding
                fx = effects.of(site.callee)
                if EMITS_TRACE not in fx.all:
                    continue
                chain = effects.render_chain(site.callee, EMITS_TRACE)
                yield self.finding(
                    project, info.module, site.node,
                    f"`{callee.name}` emits trace events without an "
                    f"`enabled` guard [emits-trace]: {info.name} -> "
                    f"{chain}; guard the emission site itself",
                    symbol=f"{info.name}->{callee.name}:emits-trace",
                )


def _tracer_like(receiver: str) -> bool:
    """Model code reaches the tracer through names containing
    ``tracer`` (``tracer``, ``self.tracer``, ``ctx.engine.tracer``);
    an unrelated ``span``/``counter`` method on a differently named
    object is not the Tracer API."""
    return "tracer" in receiver.lower()


def _receiver_chain(node: ast.AST) -> Optional[str]:
    """Dotted receiver of an attribute access; ``None`` if computed."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _parent_map(tree: ast.Module) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _mentions_enabled(test: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "enabled"
        for sub in ast.walk(test)
    )


def _enabled_guarded(node: ast.AST, parents: Dict[ast.AST, ast.AST]) -> bool:
    """True when an enclosing ``if``/conditional expression tests
    ``<something>.enabled``.  Function boundaries stop the walk: a
    guard around a *call* to a helper does not make the helper's own
    emissions guarded."""
    current: Optional[ast.AST] = parents.get(node)
    while current is not None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        if isinstance(current, (ast.If, ast.IfExp)) and _mentions_enabled(
            current.test
        ):
            return True
        current = parents.get(current)
    return False
