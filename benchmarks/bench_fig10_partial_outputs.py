"""Fig. 10: memory consumed by partial outputs.

Compares the classic no-accumulator outer product (every partial is a
separate entry, overflowing the DMB to DRAM) against HyMM's near-memory
accumulator (same-index partials merge in place, and region-1 tiling
bounds the live set).  Paper: up to 85% footprint reduction at AP.
"""

from repro.bench import figures


def test_fig10_partial_outputs(benchmark, emit):
    result = benchmark.pedantic(figures.fig10_partial_outputs, rounds=1, iterations=1)
    emit("fig10_partial_outputs", result["text"])
    reduction = result["reduction_pct"]

    # The accumulator always reduces the footprint...
    for abbr, pct in reduction.items():
        assert pct > 0, abbr
    # ...and dramatically so on the dense graphs (paper: 85% at AP).
    assert reduction["AP"] > 70
    assert reduction["AC"] > 70
    # The paper's overflow claim: without the accumulator, the partial
    # pool exceeds the 256 KB DMB on every evaluated dataset.
    for row in result["rows"]:
        assert row[2] == "yes", row[0]
    # The sampled timeline behind the curve is non-trivial.
    for abbr, timeline in result["timelines"].items():
        assert len(timeline) > 1, abbr
