"""Record-then-replay correctness: replayed runs are bit-identical.

The replay lane (:mod:`repro.sim.replay`) claims that restoring a
recorded post-phase state and merging the recorded stats delta is
indistinguishable from simulating the phase live.  These tests pin
that claim down for every accelerator kind and every partial-merge
mode: run live, run recording (must not perturb the result), run
replaying (must replay *every* phase -- asserted, not assumed -- and
reproduce the full ``RunResult`` bit-for-bit: stats dict, per-phase
cycles/stats/snapshots, and output matrices).

Also covered: the exemption semantics (engine / clock / dead tiling
knobs share traces; timing-relevant knobs must miss), corrupt-record
degradation to live simulation, the no-replay-under-tracer contract,
and the signature chain's sensitivity to model content and phase
order.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.workloads import make_model
from repro.hymm.config import HyMMConfig
from repro.obs.tracer import ChromeTracer
from repro.runtime.cache import TraceStore
from repro.runtime.execute import make_accelerator
from repro.sim.replay import (
    TRACE_SCHEMA_VERSION,
    TraceSession,
    model_fingerprint,
    timing_config_dict,
)

#: Small buffer so phases actually evict and spill while recording.
SMALL = {"dmb_bytes": 32 * 1024}

#: Every accelerator kind x merge mode the executor can build.  The
#: three OP merge modes reach all three partial-merge kernels; the
#: remaining kinds cover the rwp/hybrid/tiled/reorder dataflows.
ALL_POINTS = [
    ("hymm", {}),
    ("rwp", {}),
    ("cwp", {}),
    ("gcod", {}),
    ("op", {}),           # merge_mode="pe"
    ("op-deferred", {}),  # merge_mode="deferred"
    ("op-dmb", {}),       # merge_mode="dmb"
    ("op-tiled", {}),     # dmb merge inside the tiled bands
]


@pytest.fixture(scope="module")
def model():
    return make_model("cora", 0.25)


def _run(model, kind, session=None, tracer=None, **overrides):
    if kind == "op-dmb":
        # Not an executor kind; built directly to cover the third
        # partial-merge kernel.
        from repro.baselines import OPAccelerator

        acc = OPAccelerator(merge_mode="dmb")
    else:
        acc = make_accelerator(kind)
    if overrides:
        acc.config = acc.config.with_overrides(**overrides)
    return acc.run_inference(model, tracer=tracer, replay_session=session)


def _assert_identical(a, b, context):
    assert a.stats.to_dict() == b.stats.to_dict(), f"{context}: stats"
    assert a.phase_cycles == b.phase_cycles, f"{context}: phase_cycles"
    assert a.phase_stats == b.phase_stats, f"{context}: phase_stats"
    assert {k: v.to_dict() for k, v in a.phase_snapshots.items()} == {
        k: v.to_dict() for k, v in b.phase_snapshots.items()
    }, f"{context}: phase_snapshots"
    assert len(a.outputs) == len(b.outputs)
    for x, y in zip(a.outputs, b.outputs):
        assert x.dtype == y.dtype and x.shape == y.shape
        assert (x == y).all(), f"{context}: outputs"


@pytest.mark.parametrize("kind,overrides", ALL_POINTS)
def test_record_then_replay_bit_identical(tmp_path, model, kind, overrides):
    ov = dict(SMALL, **overrides)
    live = _run(model, kind, **ov)
    store = TraceStore(tmp_path / "traces")

    recording = TraceSession(store)
    recorded = _run(model, kind, session=recording, **ov)
    assert recording.recorded and not recording.replayed
    _assert_identical(live, recorded, f"{kind} recording run")

    replaying = TraceSession(store)
    replayed = _run(model, kind, session=replaying, **ov)
    # Every phase must actually replay -- a silent fallback to live
    # simulation would pass the identity checks without testing replay.
    assert replaying.replayed == recording.recorded, kind
    assert not replaying.recorded
    _assert_identical(live, replayed, f"{kind} replay run")


def test_exempt_knobs_share_traces(tmp_path, model):
    store = TraceStore(tmp_path / "traces")
    session = TraceSession(store)
    base = _run(model, "op", session=session, **SMALL)
    n_phases = len(session.recorded)
    assert n_phases
    # engine choice, reporting clock, and OP's dead tiling knobs all
    # hit the same chain.
    for kw in (
        {"engine": "scalar"},
        {"clock_ghz": 2.0},
        {"threshold_fraction": 0.5},
        {"resident_fraction": 0.4},
    ):
        s = TraceSession(store)
        result = _run(model, "op", session=s, **dict(SMALL, **kw))
        assert len(s.replayed) == n_phases, kw
        assert result.stats.to_dict() == base.stats.to_dict(), kw


def test_timing_knobs_miss(tmp_path, model):
    store = TraceStore(tmp_path / "traces")
    session = TraceSession(store)
    _run(model, "op", session=session, **SMALL)
    s = TraceSession(store)
    _run(model, "op", session=s, **dict(SMALL, dmb_bytes=16 * 1024))
    assert not s.replayed and s.recorded


def test_hymm_tiling_knobs_not_exempt(tmp_path, model):
    """HyMM *reads* the tiling knobs (region planning), so they must
    stay in its signature."""
    store = TraceStore(tmp_path / "traces")
    _run(model, "hymm", session=TraceSession(store), **SMALL)
    s = TraceSession(store)
    _run(model, "hymm", session=s, **dict(SMALL, threshold_fraction=0.5))
    assert not s.replayed


def test_corrupt_record_degrades_to_live(tmp_path, model):
    store = TraceStore(tmp_path / "traces")
    session = TraceSession(store)
    live = _run(model, "rwp", session=session, **SMALL)
    # Truncate every stored record.
    paths = list(store._record_paths())
    assert paths
    for p in paths:
        p.write_text("{\"truncated", encoding="utf-8")
    s = TraceSession(store)
    result = _run(model, "rwp", session=s, **SMALL)
    assert not s.replayed and s.recorded  # evicted + re-recorded
    assert result.stats.to_dict() == live.stats.to_dict()
    # The re-recorded traces replay again.
    s2 = TraceSession(store)
    _run(model, "rwp", session=s2, **SMALL)
    assert s2.replayed == s.recorded


def test_no_replay_under_tracer(tmp_path, model):
    store = TraceStore(tmp_path / "traces")
    _run(model, "rwp", session=TraceSession(store), **SMALL)
    s = TraceSession(store)
    tracer = ChromeTracer()
    traced = _run(model, "rwp", session=s, tracer=tracer, **SMALL)
    assert not s.replayed  # tracer needs the live simulation
    assert traced.stats.cycles > 0


def test_schema_bump_invalidates(tmp_path, model):
    """A record whose embedded schema does not match the code is a
    structural miss (second line of defence behind the chained hash)."""
    store = TraceStore(tmp_path / "traces")
    session = TraceSession(store)
    _run(model, "rwp", session=session, **SMALL)
    for p in store._record_paths():
        rec = json.loads(p.read_text(encoding="utf-8"))
        rec["trace_schema"] = TRACE_SCHEMA_VERSION + 1
        p.write_text(json.dumps(rec), encoding="utf-8")
    s = TraceSession(store)
    _run(model, "rwp", session=s, **SMALL)
    assert not s.replayed and s.recorded


def test_chain_requires_open():
    session = TraceSession(store=None)
    with pytest.raises(RuntimeError):
        session.next_signature("layer0.combination")


def test_chain_orders_phases(tmp_path, model):
    """Same phases in a different order produce different signatures:
    the chain commits to history, not to a set."""
    store = TraceStore(tmp_path / "traces")
    a = TraceSession(store)
    a.open("x", HyMMConfig(), model)
    b = TraceSession(store)
    b.open("x", HyMMConfig(), model)
    s1 = [a.next_signature("p"), a.next_signature("q")]
    s2 = [b.next_signature("q"), b.next_signature("p")]
    assert s1[0] != s2[0] and s1[1] != s2[1]
    assert len(set(s1 + s2)) == 4


def test_model_fingerprint_sensitivity(model):
    fp = model_fingerprint(model)
    assert fp == model_fingerprint(model)  # deterministic
    other = make_model("cora", 0.2)
    assert fp != model_fingerprint(other)
    # A single weight flip changes the fingerprint.
    model.layers[0].weights[0, 0] += 1.0
    try:
        assert fp != model_fingerprint(model)
    finally:
        model.layers[0].weights[0, 0] -= 1.0


def test_timing_config_dict_drops_exempt():
    cfg = HyMMConfig()
    d = timing_config_dict(cfg, frozenset({"engine", "clock_ghz"}))
    assert "engine" not in d and "clock_ghz" not in d
    assert d["dmb_bytes"] == cfg.dmb_bytes
