"""HyMMAccelerator end-to-end behaviour and RunResult contents."""

import numpy as np
import pytest

from repro.gcn import GCNModel, reference_inference
from repro.hymm import HyMMAccelerator, HyMMConfig


@pytest.fixture
def result(tiny_model):
    return HyMMAccelerator().run_inference(tiny_model)


class TestRunResult:
    def test_identity(self, result, tiny_model):
        assert result.accelerator == "hymm"
        assert result.dataset == "tiny"

    def test_cycles_positive(self, result):
        assert result.stats.cycles > 0
        assert result.cycles == result.stats.cycles

    def test_output_per_layer(self, result, tiny_model):
        assert len(result.outputs) == tiny_model.n_layers

    def test_phase_cycles_cover_both_phases(self, result):
        assert "layer0.combination" in result.phase_cycles
        assert "layer0.aggregation" in result.phase_cycles
        assert all(v >= 0 for v in result.phase_cycles.values())

    def test_sort_cost_recorded(self, result):
        assert result.sort_ms > 0

    def test_wall_clock_recorded(self, result):
        assert result.wall_seconds > 0

    def test_extra_carries_plan(self, result):
        assert "plan" in result.extra
        assert result.extra["plan"].threshold > 0

    def test_runtime_ms(self, result):
        assert result.runtime_ms == pytest.approx(result.stats.cycles / 1e6)

    def test_speedup_over(self, result):
        other = result  # same run: speedup exactly 1
        assert result.speedup_over(other) == pytest.approx(1.0)


class TestCorrectness:
    def test_matches_reference_single_layer(self, tiny_model, tiny_dataset):
        result = HyMMAccelerator().run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_matches_reference_two_layers(self, tiny_dataset):
        model = GCNModel(tiny_dataset, n_layers=2, seed=31)
        result = HyMMAccelerator().run_inference(model)
        ref = reference_inference(tiny_dataset, model.weight_list)
        for ours, theirs in zip(result.outputs, ref):
            np.testing.assert_allclose(ours, theirs, rtol=1e-2, atol=1e-3)

    def test_outputs_in_original_node_order(self, tiny_model, tiny_dataset):
        """The degree-sort permutation must be undone in the outputs."""
        result = HyMMAccelerator().run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        # A wrong permutation would misalign nearly every row.
        row_errors = np.abs(result.outputs[-1] - ref[-1]).max(axis=1)
        assert (row_errors < 1e-2).all()

    def test_deterministic(self, tiny_model):
        a = HyMMAccelerator().run_inference(tiny_model)
        b = HyMMAccelerator().run_inference(tiny_model)
        assert a.stats.cycles == b.stats.cycles
        assert a.stats.dram_total_bytes() == b.stats.dram_total_bytes()


class TestConfigVariants:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"near_memory_accumulator": False},
            {"op_first": False},
            {"unified_buffer": False},
            {"forwarding": False},
            {"lru": False},
            {"dmb_bytes": 8 * 1024},
            {"threshold_fraction": 0.5},
        ],
    )
    def test_all_ablations_stay_correct(self, tiny_model, tiny_dataset, overrides):
        config = HyMMConfig(**overrides)
        result = HyMMAccelerator(config).run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    @pytest.mark.parametrize("mode", ["degree", "random", "none"])
    def test_sort_modes_stay_correct(self, mode, tiny_model, tiny_dataset):
        result = HyMMAccelerator(sort_mode=mode).run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_sort_mode_validated(self):
        with pytest.raises(ValueError, match="sort_mode"):
            HyMMAccelerator(sort_mode="alphabetical")

    def test_sort_mode_names(self):
        assert HyMMAccelerator(sort_mode="none").name == "hymm-nosort"
        assert HyMMAccelerator(sort_mode="random").name == "hymm-randomsort"

    def test_nosort_reports_zero_cost(self, tiny_model):
        result = HyMMAccelerator(sort_mode="none").run_inference(tiny_model)
        assert result.sort_ms == 0.0

    def test_phase_stats_carry_occupancy(self, tiny_model):
        result = HyMMAccelerator().run_inference(tiny_model)
        for phase in result.phase_stats.values():
            assert "occupancy" in phase
            assert sum(phase["occupancy"].values()) >= 0

    def test_narrow_pe_array_costs_cycles(self, tiny_model):
        """Halving the MAC count doubles compute passes per non-zero."""
        full = HyMMAccelerator(HyMMConfig(n_pes=16)).run_inference(tiny_model)
        half = HyMMAccelerator(HyMMConfig(n_pes=8)).run_inference(tiny_model)
        assert half.stats.busy_cycles > 1.5 * full.stats.busy_cycles

    def test_small_buffer_increases_traffic(self, tiny_model):
        big = HyMMAccelerator(HyMMConfig()).run_inference(tiny_model)
        small = HyMMAccelerator(HyMMConfig(dmb_bytes=2 * 1024)).run_inference(tiny_model)
        assert small.stats.dram_total_bytes() >= big.stats.dram_total_bytes()
