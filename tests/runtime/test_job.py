"""JobSpec: fingerprint stability, sensitivity, serialisation."""

import os
import pathlib
import subprocess
import sys

import pytest

from repro.hymm import HyMMConfig
from repro.runtime import SCHEMA_VERSION, JobSpec


def _spec(**overrides):
    base = dict(dataset="cora", kind="hymm", scale=0.05, n_layers=1, seed=0)
    base.update(overrides)
    return JobSpec(**base)


class TestFingerprint:
    def test_deterministic_within_process(self):
        assert _spec().fingerprint() == _spec().fingerprint()

    def test_hex_sha256(self):
        fp = _spec().fingerprint()
        assert len(fp) == 64
        int(fp, 16)  # valid hex

    def test_stable_across_processes(self):
        """The cache key must be reproducible from a cold interpreter."""
        src = pathlib.Path(__file__).resolve().parents[2] / "src"
        code = (
            "from repro.runtime import JobSpec;"
            "print(JobSpec(dataset='cora', kind='hymm', scale=0.05).fingerprint())"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == JobSpec(
            dataset="cora", kind="hymm", scale=0.05
        ).fingerprint()

    @pytest.mark.parametrize("field,value", [
        ("dataset", "flickr"),
        ("kind", "rwp"),
        ("scale", 0.1),
        ("n_layers", 2),
        ("seed", 1),
        ("sort_mode", "none"),
        ("feature_length", 64),
        ("config", HyMMConfig()),
    ])
    def test_every_field_changes_fingerprint(self, field, value):
        assert _spec().fingerprint() != _spec(**{field: value}).fingerprint()

    def test_none_config_differs_from_default_config(self):
        """config=None means "accelerator default" (baselines use split
        buffers), a different point from an explicit HyMMConfig()."""
        assert _spec(config=None).fingerprint() != _spec(
            config=HyMMConfig()
        ).fingerprint()

    def test_config_override_changes_fingerprint(self):
        a = _spec(config=HyMMConfig())
        b = a.with_overrides(dmb_bytes=64 * 1024)
        assert a.fingerprint() != b.fingerprint()

    def test_payload_embeds_schema_version(self):
        assert _spec().canonical_payload()["schema_version"] == SCHEMA_VERSION


class TestValidation:
    def test_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            _spec(scale=0.0)
        with pytest.raises(ValueError):
            _spec(n_layers=0)
        with pytest.raises(ValueError):
            _spec(dataset="")
        with pytest.raises(ValueError):
            _spec(kind="")


class TestSerialisation:
    def test_round_trip_plain(self):
        spec = _spec()
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_round_trip_with_config(self):
        spec = _spec(config=HyMMConfig(dmb_bytes=64 * 1024, lru=False),
                     sort_mode="random")
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.fingerprint() == spec.fingerprint()

    def test_config_from_dict_rejects_unknown_fields(self):
        data = HyMMConfig().to_dict()
        data["warp_drive"] = True
        with pytest.raises(ValueError):
            HyMMConfig.from_dict(data)

    def test_describe_mentions_kind_and_dataset(self):
        assert "hymm" in _spec().describe()
        assert "cora" in _spec().describe()
