#!/usr/bin/env python3
"""Wall-clock benchmark of the scalar vs batched timing engines.

Runs HyMM and the two headline baselines (OP, RWP) over registry
datasets under both engine implementations and records the median
wall-clock seconds of each, plus the resulting speedups, to
``BENCH_sim.json`` in the repository root.

The two engines are cycle- and stats-exact by contract (see
``tests/sim/test_engine_equivalence.py``), so the only thing this
measures is simulator throughput: how fast the host executes the same
simulated machine.

Usage::

    PYTHONPATH=src python scripts/bench_sim_speed.py [--datasets cora amazon-photo]
        [--repeats 3] [--output BENCH_sim.json]

Everything is seeded; dataset synthesis and model weights are identical
across engines and repeats, so run-to-run variance is host noise only
(hence the median).
"""

from __future__ import annotations

import argparse
import json
import statistics
import time
from pathlib import Path

from repro.bench.workloads import bench_scale, make_model
from repro.runtime.execute import make_accelerator

DEFAULT_DATASETS = ("cora", "amazon-photo")
KINDS = ("op", "rwp", "hymm")
ENGINES = ("scalar", "batched")
SEED = 0
N_LAYERS = 2


def time_run(kind: str, engine: str, model) -> float:
    acc = make_accelerator(kind)
    acc.config = acc.config.with_overrides(engine=engine)
    start = time.perf_counter()
    acc.run_inference(model)
    return time.perf_counter() - start


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--datasets", nargs="+", default=list(DEFAULT_DATASETS))
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
    )
    args = parser.parse_args()

    report = {
        "workload": {
            "datasets": args.datasets,
            "kinds": list(KINDS),
            "n_layers": N_LAYERS,
            "seed": SEED,
            "repeats": args.repeats,
            "statistic": "median",
        },
        "results": {},
    }
    grand = {engine: 0.0 for engine in ENGINES}
    for name in args.datasets:
        model = make_model(name, bench_scale(name), N_LAYERS, SEED)
        for kind in KINDS:
            medians = {}
            for engine in ENGINES:
                samples = [
                    time_run(kind, engine, model) for _ in range(args.repeats)
                ]
                medians[engine] = statistics.median(samples)
                grand[engine] += medians[engine]
            entry = {
                "scalar_seconds": round(medians["scalar"], 4),
                "batched_seconds": round(medians["batched"], 4),
                "speedup": round(medians["scalar"] / medians["batched"], 3),
            }
            report["results"][f"{name}/{kind}"] = entry
            print(
                f"{name:20s} {kind:5s} scalar={entry['scalar_seconds']:8.3f}s "
                f"batched={entry['batched_seconds']:8.3f}s "
                f"speedup={entry['speedup']:.2f}x",
                flush=True,
            )
    report["aggregate"] = {
        "scalar_seconds": round(grand["scalar"], 4),
        "batched_seconds": round(grand["batched"], 4),
        "speedup": round(grand["scalar"] / grand["batched"], 3),
    }
    print(
        f"aggregate: scalar={report['aggregate']['scalar_seconds']:.2f}s "
        f"batched={report['aggregate']['batched_seconds']:.2f}s "
        f"speedup={report['aggregate']['speedup']:.2f}x"
    )
    args.output.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
