"""Roofline bounds and bottleneck classification for simulated runs.

An accelerator run can never be faster than either of:

* the **compute bound** -- its useful vector operations issued at one
  per cycle through the PE array;
* the **bandwidth bound** -- its total off-chip traffic moved at the
  DRAM's peak bytes-per-cycle.

``analyze_run`` reports both bounds, the attained cycles, the
efficiency against the binding roof, and the arithmetic intensity
(useful FLOPs per DRAM byte) that decides which roof binds -- the
quantity HyMM's locality optimisations raise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hymm.base import RunResult


def compute_bound_cycles(result: RunResult) -> float:
    """Minimum cycles if memory were free: one vector op per cycle."""
    return float(result.stats.busy_cycles)


def bandwidth_bound_cycles(result: RunResult) -> float:
    """Minimum cycles if compute were free: traffic at peak bandwidth."""
    return result.stats.dram_total_bytes() / result.config.dram.bytes_per_cycle


@dataclass(frozen=True)
class RooflineReport:
    """Bounds and attained performance of one run."""

    attained_cycles: int
    compute_bound: float
    bandwidth_bound: float
    arithmetic_intensity: float  # FLOPs per DRAM byte

    @property
    def roofline_cycles(self) -> float:
        """The binding lower bound."""
        return max(self.compute_bound, self.bandwidth_bound)

    @property
    def bottleneck(self) -> str:
        """``"compute"`` or ``"memory"`` -- which roof binds."""
        return "compute" if self.compute_bound >= self.bandwidth_bound else "memory"

    @property
    def efficiency(self) -> float:
        """Roofline cycles / attained cycles, in (0, 1]."""
        if self.attained_cycles <= 0:
            return 0.0
        return min(1.0, self.roofline_cycles / self.attained_cycles)

    @property
    def slack_cycles(self) -> float:
        """Cycles lost to latency/occupancy effects beyond the roofs."""
        return self.attained_cycles - self.roofline_cycles


def analyze_run(result: RunResult, lane_width: int = None) -> RooflineReport:
    """Build the roofline report for one simulated inference."""
    lanes = lane_width if lane_width is not None else result.config.n_pes
    flops = 2.0 * result.stats.busy_cycles * lanes
    dram_bytes = result.stats.dram_total_bytes()
    intensity = flops / dram_bytes if dram_bytes else float("inf")
    return RooflineReport(
        attained_cycles=result.stats.cycles,
        compute_bound=compute_bound_cycles(result),
        bandwidth_bound=bandwidth_bound_cycles(result),
        arithmetic_intensity=intensity,
    )
