"""Property-based stress tests of the simulation substrate.

Random operation sequences must never violate the structural invariants
of the buffer (capacity, class accounting) or the engine (monotone
clocks, conservation of counters).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    CLASS_OUT,
    CLASS_PARTIAL,
    CLASS_W,
    CLASS_XW,
    CacheBuffer,
    DRAM,
    DRAMConfig,
    SimStats,
)
from repro.sim.buffer import ALL_CLASSES
from repro.sim.engine import AccessExecuteEngine


# One operation: (kind, address, class-index)
_op = st.tuples(
    st.sampled_from(["read", "write", "write_through", "accumulate"]),
    st.integers(0, 40),
    st.integers(0, len(ALL_CLASSES) - 1),
)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(_op, max_size=120),
    capacity=st.integers(1, 12),
    mshr=st.integers(1, 8),
)
def test_buffer_invariants_under_random_ops(ops, capacity, mshr):
    stats = SimStats()
    dram = DRAM(DRAMConfig(), stats)
    buf = CacheBuffer(capacity, 64, dram, stats, mshr_entries=mshr)
    cycle = 0.0
    for kind, addr, cls_idx in ops:
        cls = ALL_CLASSES[cls_idx]
        cycle += 1.0
        if kind == "read":
            ready, issue = buf.read(cycle, addr, cls, cls)
            assert ready >= cycle
            assert issue >= cycle
            cycle = issue
        elif kind == "write":
            buf.write(cycle, addr, cls, cls)
        elif kind == "write_through":
            buf.write(cycle, addr, cls, cls, allocate=False)
        else:
            buf.accumulate(cycle, addr)
        # Capacity is never exceeded; per-class sets sum to the total.
        assert buf.size_lines <= capacity
        assert sum(buf.resident_lines(c) for c in ALL_CLASSES) == buf.size_lines
    # Flushing empties the buffer completely.
    buf.flush(cycle)
    assert buf.size_lines == 0
    # Hit/miss totals equal the cached-op count (write-through included).
    cached_ops = len(ops)
    assert sum(stats.buffer_hits.values()) + sum(stats.buffer_misses.values()) == cached_ops


_engine_op = st.tuples(
    st.sampled_from(["mac_load", "load", "mac_local", "store", "accumulate",
                     "stream", "mac_stream_load", "rmw"]),
    st.integers(0, 30),
)


@settings(max_examples=40, deadline=None)
@given(ops=st.lists(_engine_op, max_size=100), lsq=st.integers(1, 32))
def test_engine_clocks_monotone(ops, lsq):
    stats = SimStats()
    dram = DRAM(DRAMConfig(), stats)
    buf = CacheBuffer(16, 64, dram, stats)
    eng = AccessExecuteEngine(buf, dram, stats, lsq_depth=lsq)
    prev_issue, prev_write, prev_exec = eng.issue_t, eng.write_t, eng.exec_t
    busy_expected = 0
    for kind, addr in ops:
        if kind == "mac_load":
            eng.mac_load(addr, CLASS_XW, "XW")
            busy_expected += 1
        elif kind == "load":
            eng.load(addr, CLASS_XW, "XW")
        elif kind == "mac_local":
            eng.mac_local(1)
            busy_expected += 1
        elif kind == "store":
            eng.store(addr, CLASS_OUT, "AXW")
        elif kind == "accumulate":
            eng.accumulate_store(addr)
        elif kind == "stream":
            eng.stream(64, "A")
        elif kind == "mac_stream_load":
            eng.mac_stream_load(addr, CLASS_XW, "XW")
            busy_expected += 1
        else:
            eng.rmw(addr, CLASS_PARTIAL, "partial")
            busy_expected += 1  # the merge add
        # Clocks only move forward.
        assert eng.issue_t >= prev_issue
        assert eng.write_t >= prev_write
        assert eng.exec_t >= prev_exec
        prev_issue, prev_write, prev_exec = eng.issue_t, eng.write_t, eng.exec_t
    assert stats.busy_cycles == busy_expected
    assert eng.drain() >= max(prev_issue, prev_write, prev_exec) - 1e-9
    # The DRAM channel's clock can never be behind its own traffic.
    total_bytes = stats.dram_total_bytes()
    assert dram.busy_until >= total_bytes / dram.config.bytes_per_cycle - 1e-6


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_engine_op, max_size=60), seed=st.integers(0, 5))
def test_engine_deterministic_replay(ops, seed):
    """Replaying the same op sequence yields identical clocks/counters."""
    def run():
        stats = SimStats()
        dram = DRAM(DRAMConfig(), stats)
        buf = CacheBuffer(8, 64, dram, stats)
        eng = AccessExecuteEngine(buf, dram, stats)
        for kind, addr in ops:
            getattr_map = {
                "mac_load": lambda: eng.mac_load(addr, CLASS_XW, "XW"),
                "load": lambda: eng.load(addr, CLASS_XW, "XW"),
                "mac_local": lambda: eng.mac_local(1),
                "store": lambda: eng.store(addr, CLASS_W, "W"),
                "accumulate": lambda: eng.accumulate_store(addr),
                "stream": lambda: eng.stream(64, "A"),
                "mac_stream_load": lambda: eng.mac_stream_load(addr, CLASS_XW, "XW"),
                "rmw": lambda: eng.rmw(addr, CLASS_PARTIAL, "partial"),
            }
            getattr_map[kind]()
        return eng.drain(), stats.dram_total_bytes(), stats.busy_cycles

    assert run() == run()
