"""Seeded synthetic graph and feature generators.

The generators reproduce the *statistics* the paper's evaluation
depends on rather than any specific dataset instance:

* ``power_law_graph`` builds a Chung-Lu random graph whose expected
  degrees follow ``w_i proportional to (i + 1) ** -alpha``.  With the
  default ``alpha`` around 0.8 the top 20% of nodes hold roughly 70-80%
  of the edges, matching the paper's Figure 2 observation.
* ``sparse_feature_matrix`` builds a node-feature matrix with a target
  density, matching Table II's feature sparsity column.

Both are deterministic given a seed.
"""

from __future__ import annotations

import numpy as np

from repro.sparse import COOMatrix, CSRMatrix, coo_to_csr
from repro.sparse.coo import INDEX_DTYPE, VALUE_DTYPE

#: Power-law exponent giving a top-20% edge share of roughly 0.7 (see
#: module docstring); individual datasets may override.
DEFAULT_ALPHA = 0.8


def chung_lu_weights(n_nodes: int, alpha: float = DEFAULT_ALPHA) -> np.ndarray:
    """Normalised expected-degree weights ``w_i ~ (i + 1) ** -alpha``.

    Node 0 gets the largest weight; the returned vector sums to 1 and is
    the endpoint-sampling distribution of :func:`power_law_graph`.
    """
    if n_nodes <= 0:
        raise ValueError("n_nodes must be positive")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    weights = (np.arange(1, n_nodes + 1, dtype=np.float64)) ** (-alpha)
    return weights / weights.sum()


def power_law_graph(
    n_nodes: int,
    n_edges: int,
    alpha: float = DEFAULT_ALPHA,
    seed: int = 0,
    symmetric: bool = True,
    max_rounds: int = 64,
) -> COOMatrix:
    """Sample a Chung-Lu power-law graph as a 0/1 COO adjacency matrix.

    Endpoints are drawn independently from the power-law weight vector;
    self-loops and duplicate edges are discarded and sampling repeats
    until ``n_edges`` *directed* non-zeros exist (for ``symmetric=True``
    each undirected edge contributes two non-zeros, so ``n_edges`` should
    be even -- Table II edge counts already are, being undirected-doubled
    PyG counts).

    Parameters
    ----------
    n_nodes / n_edges:
        Matrix dimension and target stored non-zero count.
    alpha:
        Power-law exponent of the expected-degree sequence.
    seed:
        RNG seed; identical arguments always produce identical graphs.
    symmetric:
        Mirror every sampled edge (undirected graph).
    max_rounds:
        Safety bound on resampling rounds.
    """
    if n_edges < 0:
        raise ValueError("n_edges must be non-negative")
    max_simple = n_nodes * (n_nodes - 1)
    if n_edges > max_simple:
        raise ValueError(
            f"cannot place {n_edges} simple directed edges in a {n_nodes}-node graph"
        )
    rng = np.random.default_rng(seed)
    probs = chung_lu_weights(n_nodes, alpha)

    target_pairs = n_edges // 2 if symmetric else n_edges
    chosen = np.zeros(0, dtype=np.int64)  # encoded canonical pairs
    for _ in range(max_rounds):
        if chosen.size >= target_pairs:
            break
        need = target_pairs - chosen.size
        # Oversample to compensate for duplicates / self-loops.
        batch = max(1024, int(need * 1.6))
        src = rng.choice(n_nodes, size=batch, p=probs)
        dst = rng.choice(n_nodes, size=batch, p=probs)
        keep = src != dst
        src, dst = src[keep], dst[keep]
        if symmetric:
            lo = np.minimum(src, dst)
            hi = np.maximum(src, dst)
            encoded = lo * n_nodes + hi
        else:
            encoded = src * n_nodes + dst
        chosen = np.unique(np.concatenate([chosen, encoded]))
    chosen = chosen[:target_pairs]

    src = (chosen // n_nodes).astype(INDEX_DTYPE)
    dst = (chosen % n_nodes).astype(INDEX_DTYPE)
    if symmetric:
        rows = np.concatenate([src, dst])
        cols = np.concatenate([dst, src])
    else:
        rows, cols = src, dst
    # Shuffle node labels: the sampling order makes node 0 the highest-
    # expected-degree node, but real datasets are not label-ordered by
    # degree -- without this, every "natural order" baseline would be
    # silently running on a degree-sorted graph.
    relabel = rng.permutation(n_nodes).astype(INDEX_DTYPE)
    rows = relabel[rows]
    cols = relabel[cols]
    values = np.ones(rows.size, dtype=VALUE_DTYPE)
    return COOMatrix((n_nodes, n_nodes), rows, cols, values)


def sparse_feature_matrix(
    n_nodes: int,
    feature_length: int,
    density: float,
    seed: int = 0,
) -> CSRMatrix:
    """Sample a sparse node-feature matrix with the given density.

    Non-zero positions are uniform over the matrix; values are uniform
    in ``[0.1, 1.0)`` (bounded away from zero so no sampled non-zero
    collapses to an actual zero).  Density 1.0 produces a fully dense
    CSR matrix -- Table II datasets range from 0.01% (Yelp) to ~35%
    (Amazon) dense.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    cells = n_nodes * feature_length
    target = int(round(cells * density))
    if target == cells:
        flat = np.arange(cells, dtype=np.int64)
    else:
        flat = np.zeros(0, dtype=np.int64)
        while flat.size < target:
            need = target - flat.size
            batch = rng.integers(0, cells, size=max(1024, int(need * 1.4)))
            flat = np.unique(np.concatenate([flat, batch]))
        # Deterministically thin the oversampled set back to the target.
        flat = flat[:target]
    rows = (flat // feature_length).astype(INDEX_DTYPE)
    cols = (flat % feature_length).astype(INDEX_DTYPE)
    values = rng.uniform(0.1, 1.0, size=target).astype(VALUE_DTYPE)
    coo = COOMatrix((n_nodes, feature_length), rows, cols, values)
    return coo_to_csr(coo)
