"""Analytical area model (paper Table III).

The paper estimates component areas with Synopsys Design Compiler on
the ASAP 7 nm PDK plus CACTI 7.0 for memories, then scales to TSMC
40 nm to compare against prior accelerators.  Neither tool can run
here, so this package provides a CACTI-style analytical substitute:
linear SRAM area curves plus per-MAC logic area, with coefficients
calibrated so the default :class:`repro.hymm.config.HyMMConfig`
reproduces Table III, and classical node-length-squared scaling between
technology nodes.  The model extrapolates sensibly when the design
space benches sweep buffer sizes or PE counts.
"""

from repro.area.sram import sram_area_mm2, cam_area_mm2
from repro.area.logic import mac_area_mm2, control_area_mm2
from repro.area.model import AreaModel, AreaReport, node_scale_factor
from repro.area.energy import (
    EnergyReport,
    energy_of_run,
    energy_efficiency_gflops_per_watt,
)

__all__ = [
    "sram_area_mm2",
    "cam_area_mm2",
    "mac_area_mm2",
    "control_area_mm2",
    "AreaModel",
    "AreaReport",
    "node_scale_factor",
    "EnergyReport",
    "energy_of_run",
    "energy_efficiency_gflops_per_watt",
]
