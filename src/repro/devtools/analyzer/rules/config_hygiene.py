"""Rule ``config-hygiene``: no dead knobs on the hardware config.

Every field of :class:`repro.hymm.config.HyMMConfig` is a claim: "this
design parameter is modelled".  A field that nothing ever *reads* --
outside serialisation (``to_dict``/``from_dict``) and validation
(``__post_init__``) -- is a dead knob: ablation sweeps can flip it,
job fingerprints change with it, but the simulated machine ignores it,
which is precisely the silently-wrong-Fig.-7 failure mode this checker
exists to prevent.

A read is any ``<expr>.<field>`` attribute access in load context,
anywhere in the project (the config's own derived properties count:
``value_bytes`` is consumed through ``lines_per_row``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from repro.devtools.analyzer import astutil
from repro.devtools.analyzer.core import Finding, Project, Rule, SourceModule, register

#: Methods of the config class whose reads do not count as consumption.
EXEMPT_METHODS = {"to_dict", "from_dict", "__post_init__"}


@register
class ConfigHygieneRule(Rule):
    name = "config-hygiene"
    description = (
        "every HyMMConfig field is consumed by model/simulator code, "
        "not just validated and serialised"
    )
    default_severity = "error"
    default_options = {"config_class": "HyMMConfig"}

    def run(self, project: Project) -> Iterator[Finding]:
        located = self._locate(project)
        if located is None:
            return
        cfg_mod, cfg_cls = located
        fields = astutil.dataclass_fields(cfg_cls)
        field_names = {name for name, _ in fields}

        reads: Set[str] = set()
        for mod in project.modules:
            exempt = self._exempt_subtrees(mod, cfg_cls.name)
            for node in astutil.walk_excluding(mod.tree, exempt):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                    and node.attr in field_names
                ):
                    reads.add(node.attr)

        for name, ann in fields:
            if name not in reads:
                yield self.finding(
                    project, cfg_mod, ann,
                    f"{cfg_cls.name}.{name} is a dead knob: validated and "
                    f"serialised but never read by model/simulator code; "
                    f"consume it or delete it",
                    symbol=f"{cfg_cls.name}.{name}:dead-knob",
                )

    # ------------------------------------------------------------------
    def _locate(
        self, project: Project
    ) -> Optional[Tuple[SourceModule, ast.ClassDef]]:
        target = self.options["config_class"]
        for mod in project.modules:
            for cls in astutil.iter_classes(mod.tree):
                if cls.name == target and astutil.is_dataclass_def(cls):
                    return mod, cls
        return None

    def _exempt_subtrees(self, mod: SourceModule, cls_name: str) -> Set[ast.AST]:
        exempt: Set[ast.AST] = set()
        for cls in astutil.iter_classes(mod.tree):
            if cls.name != cls_name:
                continue
            for name, fn in astutil.methods_of(cls).items():
                if name in EXEMPT_METHODS:
                    exempt.add(fn)
        return exempt
