"""GCN model substrate.

A minimal-but-complete GCN inference stack (Kipf & Welling, the model
all compared accelerators execute): seeded Glorot weight initialisation,
the combination-first layer schedule the paper adopts from AWB-GCN
(compute ``XW`` first, then aggregate ``A_hat (XW)``), and a pure-NumPy
reference inference used as the functional oracle for every simulated
dataflow.
"""

from repro.gcn.weights import glorot_weights, layer_dims
from repro.gcn.layer import GCNLayer, combination, aggregation
from repro.gcn.model import GCNModel
from repro.gcn.reference import reference_inference, relu

__all__ = [
    "glorot_weights",
    "layer_dims",
    "GCNLayer",
    "combination",
    "aggregation",
    "GCNModel",
    "reference_inference",
    "relu",
]
