"""Fixture for the ``transitive-blocking`` rule (and the before/after
demonstration that intraprocedural ``serve-hygiene`` misses blocking
calls hidden one ``def`` deep).

Loaded as ``repro.serve.transitive_fixture``.  No async body here
contains a *direct* blocking call -- serve-hygiene reports zero
findings on this module -- yet two handlers freeze the event loop
through sync helpers.  The offloaded and pure variants are clean.
"""

import asyncio
import json
import time


def nap_helper():
    time.sleep(0.01)


def deep_helper():
    nap_helper()


def read_config(path):
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def pure_helper(value):
    return value * 2


class TransitiveServer:
    async def handle_sleep(self, request):
        deep_helper()  # VIOLATION: sleeps, two calls deep
        return request

    async def handle_config(self, path):
        return read_config(path)  # VIOLATION: blocks-io

    async def handle_offloaded(self, path):
        # Clean: the same helper, discharged onto a worker thread.
        return await asyncio.to_thread(read_config, path)

    async def handle_pure(self, value):
        return pure_helper(value)  # clean: no blocking effects
