"""Post-run analysis tools.

:mod:`repro.analysis.roofline` bounds every simulated run by its two
hard limits -- PE-array throughput and DRAM bandwidth -- and classifies
the bottleneck.  The bounds double as an internal consistency check:
no simulation may ever finish faster than its roofline.
"""

from repro.analysis.roofline import (
    RooflineReport,
    analyze_run,
    bandwidth_bound_cycles,
    compute_bound_cycles,
)
from repro.analysis.pareto import pareto_front, dominated

__all__ = [
    "RooflineReport",
    "analyze_run",
    "bandwidth_bound_cycles",
    "compute_bound_cycles",
    "pareto_front",
    "dominated",
]
