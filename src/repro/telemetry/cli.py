"""``python -m repro.telemetry`` -- exposition tooling for CI.

``validate FILE|-``
    Parse a Prometheus text exposition (file or stdin) through the
    in-repo format validator; prints ``families=N samples=M`` and
    exits 0, or prints the violation and exits 1.  The serve-smoke CI
    job pipes the live ``/metrics/prometheus`` scrape through this.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .prometheus import ExpositionError, validate_exposition


def cmd_validate(args: argparse.Namespace) -> int:
    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            text = fh.read()
    try:
        stats = validate_exposition(text)
    except ExpositionError as exc:
        print(f"INVALID: {exc}", file=sys.stderr)
        return 1
    if args.min_samples and stats["samples"] < args.min_samples:
        print(
            f"INVALID: only {stats['samples']} samples "
            f"(--min-samples {args.min_samples})",
            file=sys.stderr,
        )
        return 1
    print(f"ok: families={stats['families']} samples={stats['samples']}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.telemetry",
        description="Wall-clock telemetry tooling (exposition validator).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    p_val = sub.add_parser(
        "validate", help="validate a Prometheus text exposition"
    )
    p_val.add_argument("file", help="exposition file, or '-' for stdin")
    p_val.add_argument(
        "--min-samples",
        type=int,
        default=0,
        help="fail unless at least this many samples parsed",
    )
    p_val.set_defaults(func=cmd_validate)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":
    raise SystemExit(main())
