"""G-CoD proxy: cluster-partitioned outer-product aggregation.

G-CoD (Table I) aggregates with an outer product over CSC, combines
with a row-wise product over CSR, and preprocesses the graph into dense
and sparse clusters ("Partitioning & tuning") so the dense part enjoys
partial-output locality.  Its real partitioner is an
algorithm/accelerator co-design; per DESIGN.md's substitution rule we
stand in the same degree-based split HyMM's planner produces (dense
cluster = high-degree rows, sparse cluster = the rest), which preserves
the behaviour that matters -- partials of the dense cluster stay
resident, the sparse remainder pays the scattered read-modify-write
cost.

The contrast with HyMM is exactly the paper's Table I row: G-CoD stays
outer-product *everywhere* in aggregation, so the sparse cluster
thrashes where HyMM's row-wise engine would exploit the hot columns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gcn.model import GCNModel
from repro.graphs.partition import plan_regions
from repro.graphs.preprocess import degree_sort
from repro.hymm.base import AcceleratorBase
from repro.hymm.config import HyMMConfig
from repro.hymm.kernels import KernelContext, aggregation_op
from repro.sparse import coo_to_csc
from repro.sparse.coo import VALUE_DTYPE


class GCoDAccelerator(AcceleratorBase):
    """Outer-product aggregation over dense/sparse clusters (G-CoD proxy)."""

    name = "gcod"

    def __init__(self, config: Optional[HyMMConfig] = None) -> None:
        if config is None:
            # Prior-accelerator organisation: split input/output buffers.
            config = HyMMConfig(unified_buffer=False)
        super().__init__(config)

    def prepare(self, model: GCNModel) -> dict:
        cfg = self.config
        dataset = model.dataset
        sort = degree_sort(dataset.adjacency)
        perm = sort.permutation
        sorted_norm = model.norm_adj.permute(row_perm=perm, col_perm=perm)
        plan = plan_regions(
            sorted_norm,
            hidden_dim=dataset.hidden_dim,
            dmb_bytes=cfg.dmb_bytes,
            threshold_fraction=cfg.threshold_fraction,
            resident_fraction=cfg.resident_fraction,
        )
        n = sorted_norm.shape[0]
        sparse_cluster = sorted_norm.submatrix(plan.threshold, n, 0, n)
        features_sorted = model.dataset.features.to_coo().permute(row_perm=perm)

        from repro.sparse import coo_to_csr

        def unpermute(matrix: np.ndarray) -> np.ndarray:
            return matrix[perm]

        return {
            "features": coo_to_csr(features_sorted),
            "sort_ms": sort.elapsed_ms,  # partitioning cost proxy
            "unpermute": unpermute,
            "plan": plan,
            "sparse_cluster_csc": coo_to_csc(sparse_cluster),
        }

    def run_aggregation(self, ctx: KernelContext, prep: dict, xw: np.ndarray) -> np.ndarray:
        plan = prep["plan"]
        n = xw.shape[0]
        h = xw.shape[1]
        out = np.zeros((n, h), dtype=VALUE_DTYPE)
        # Dense clusters: OP with the output band resident -> merges are
        # cheap read-modify-writes that hit on-chip.
        for tile in plan.tiled.tiles_in_region(1):
            aggregation_op(
                ctx,
                tile.matrix,
                xw,
                out=out,
                row_offset=tile.row_lo,
                merge_mode="pe",
                finalize=True,
            )
        # Sparse cluster: still outer product (Table I), scattered over
        # the remaining rows -- the part HyMM replaces with RWP.
        sparse_csc = prep["sparse_cluster_csc"]
        if sparse_csc.nnz:
            aggregation_op(
                ctx,
                sparse_csc,
                xw,
                out=out,
                row_offset=plan.threshold,
                merge_mode="pe",
                finalize=True,
            )
        return out
