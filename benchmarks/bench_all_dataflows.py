"""Grand comparison: every implemented dataflow on one dense graph.

All seven engines -- the paper's three (OP, RWP, HyMM), the Table I
proxies (CWP for AWB-GCN, G-CoD), and the extension OP variants
(deferred, tiled) -- on Amazon-Photo.  This is the capstone artifact: a
single table placing each design point by cycles, traffic, utilisation
and hit rate.
"""

from repro.bench import format_table
from repro.bench.runner import ALL_ACCELERATORS, aggregation_cycles, run_suite


def test_all_dataflows(benchmark, emit):
    def run_all():
        runs = run_suite("amazon-photo", kinds=ALL_ACCELERATORS)
        headers = ["dataflow", "total cycles", "agg cycles", "DRAM MB",
                   "ALU util", "hit rate", "preproc ms"]
        rows = []
        for kind in ALL_ACCELERATORS:
            r = runs[kind]
            rows.append([
                kind, r.stats.cycles, int(aggregation_cycles(r)),
                r.stats.dram_total_bytes() / (1024 * 1024),
                r.stats.alu_utilization(), r.stats.hit_rate(), r.sort_ms,
            ])
        return runs, format_table(headers, rows)

    runs, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("all_dataflows", text)

    # Sanity ordering of the main trio.
    assert runs["hymm"].stats.cycles < runs["op"].stats.cycles
    assert runs["rwp"].stats.cycles < runs["op"].stats.cycles
    # HyMM moves the least DRAM of all seven design points.
    assert runs["hymm"].stats.dram_total_bytes() == min(
        r.stats.dram_total_bytes() for r in runs.values()
    )
    # Every engine computed the same matrix (spot check vs RWP).
    import numpy as np

    base = runs["rwp"].outputs[-1]
    for kind, r in runs.items():
        np.testing.assert_allclose(r.outputs[-1], base, rtol=1e-2, atol=1e-3)