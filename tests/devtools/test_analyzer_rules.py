"""Per-rule tests: each fixture module carries known violations and the
rule must report them at exactly the right locations -- and nothing
else."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.analyzer.core import Project, run_rules
from repro.devtools.analyzer.rules.batch_api import BatchApiRule
from repro.devtools.analyzer.rules.buffer_internals import (
    ARENA_FIELDS,
    ARENA_METHODS,
    BufferInternalsRule,
)
from repro.devtools.analyzer.rules.config_hygiene import ConfigHygieneRule
from repro.devtools.analyzer.rules.determinism import DeterminismRule
from repro.devtools.analyzer.rules.mutable_state import MutableStateRule
from repro.devtools.analyzer.rules.obs_hygiene import ObsHygieneRule
from repro.devtools.analyzer.rules.serve_hygiene import ServeHygieneRule
from repro.devtools.analyzer.rules.stats_conservation import StatsConservationRule
from repro.devtools.analyzer.rules.telemetry_hygiene import TelemetryHygieneRule
from repro.devtools.analyzer.rules.wire_schema import (
    WireSchemaRule,
    reachable_wire_classes,
)

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixture(filename: str, module: str) -> Project:
    path = FIXTURES / filename
    return Project.load([path], root=FIXTURES, module_names={path: module})


def line_of(filename: str, snippet: str, occurrence: int = 1) -> int:
    """1-based line of the nth occurrence of ``snippet`` in a fixture."""
    text = (FIXTURES / filename).read_text(encoding="utf-8")
    seen = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if snippet in line:
            seen += 1
            if seen == occurrence:
                return lineno
    raise AssertionError(f"{snippet!r} (occurrence {occurrence}) not in {filename}")


def by_line(findings):
    return {f.line for f in findings}


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminismRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("det_violations.py", "repro.sim.det_fixture")
        return run_rules(project, [DeterminismRule()])

    def test_every_finding_location(self, findings):
        expected = {
            line_of("det_violations.py", "started = time.time()"),
            line_of("det_violations.py", "stamp = datetime.now()"),
            line_of("det_violations.py", "a = random.random()"),
            line_of("det_violations.py", "b = np.random.rand(4)"),
            line_of("det_violations.py", "np.random.seed(7)"),
            line_of("det_violations.py", "g1 = np.random.default_rng()"),
            line_of("det_violations.py", "g2 = np.random.default_rng(0xBEEF)"),
            line_of("det_violations.py", "g3 = random.Random()"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "determinism" for f in findings)
        assert all(f.severity == "error" for f in findings)

    def test_perf_counter_and_seeded_rng_allowed(self, findings):
        allowed = {
            line_of("det_violations.py", "time.perf_counter()"),
            line_of("det_violations.py", "np.random.default_rng(seed)"),
        }
        assert not (by_line(findings) & allowed)

    def test_inline_suppression_honoured(self, findings):
        suppressed = line_of("det_violations.py", "analyzer: allow[determinism]")
        assert suppressed not in by_line(findings)

    def test_out_of_scope_module_is_clean(self):
        project = load_fixture("det_violations.py", "repro.runtime.det_fixture")
        assert run_rules(project, [DeterminismRule()]) == []

    def test_messages_name_the_hazard(self, findings):
        messages = " | ".join(f.message for f in findings)
        assert "wall-clock" in messages
        assert "hard-coded RNG seed" in messages
        assert "unseeded RNG" in messages
        assert "legacy global RNG" in messages


# ----------------------------------------------------------------------
# wire-schema
# ----------------------------------------------------------------------
class TestWireSchemaRule:
    @pytest.fixture()
    def project(self):
        return load_fixture("wire_violations.py", "repro.fake.wire_fixture")

    @pytest.fixture()
    def findings(self, project):
        return run_rules(project, [WireSchemaRule()])

    def test_reachability(self, project):
        reachable = reachable_wire_classes(project, ["JobSpec", "RunResult"])
        assert set(reachable) == {"JobSpec", "RunResult", "BadConfig"}

    def test_missing_pair_on_reachable_dataclass(self, findings):
        cls_line = line_of("wire_violations.py", "class BadConfig:")
        bad = [f for f in findings if f.line == cls_line]
        assert {f.symbol for f in bad} == {
            "BadConfig.to_dict:missing",
            "BadConfig.from_dict:missing",
        }

    def test_to_dict_field_parity(self, findings):
        fn_line = line_of("wire_violations.py", "def to_dict", occurrence=2)
        [finding] = [f for f in findings if f.line == fn_line]
        assert "notes" in finding.message
        assert finding.symbol == "RunResult.to_dict:notes"

    def test_from_dict_field_parity(self, findings):
        fn_line = line_of("wire_violations.py", "def from_dict", occurrence=2)
        [finding] = [f for f in findings if f.line == fn_line]
        assert "cycles" in finding.message

    def test_unreachable_dataclass_not_checked(self, findings):
        assert not any("Unreachable" in f.message for f in findings)

    def test_finding_count_is_exact(self, findings):
        assert len(findings) == 4


# ----------------------------------------------------------------------
# stats-conservation
# ----------------------------------------------------------------------
class TestStatsConservationRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("stats_violations.py", "repro.sim.stats_fixture")
        return run_rules(project, [StatsConservationRule()])

    def test_unwritten_counter_flagged_at_declaration(self, findings):
        ghost_line = line_of("stats_violations.py", "ghost_counter: int = 0")
        ghost = [f for f in findings if f.line == ghost_line]
        assert len(ghost) == 1
        assert "ghost_counter" in ghost[0].message
        assert "ever writes it" in ghost[0].message

    def test_merge_writes_do_not_count(self, findings):
        # merge() writes every field; only ghost_counter must be flagged.
        unwritten = [f for f in findings if "unwritten" in f.symbol]
        assert len(unwritten) == 1

    def test_undeclared_tags_flagged(self, findings):
        expected = {
            line_of("stats_violations.py", '"bogus"'),
            line_of("stats_violations.py", '"phantom"'),
        }
        tag_findings = {f.line for f in findings if f.symbol.startswith("tag:")}
        assert tag_findings == expected

    def test_declared_tags_pass(self, findings):
        assert not any(f.symbol in ("tag:A", "tag:W") for f in findings)

    def test_exact_finding_count(self, findings):
        assert len(findings) == 3


# ----------------------------------------------------------------------
# config-hygiene
# ----------------------------------------------------------------------
class TestConfigHygieneRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("config_violations.py", "repro.hymm.cfg_fixture")
        return run_rules(project, [ConfigHygieneRule()])

    def test_dead_knob_flagged(self, findings):
        knob_line = line_of("config_violations.py", "shiny_new_knob: float")
        [finding] = findings
        assert finding.line == knob_line
        assert "dead knob" in finding.message
        assert finding.symbol == "HyMMConfig.shiny_new_knob:dead-knob"

    def test_consumed_field_not_flagged(self, findings):
        assert not any("n_pes" in f.message for f in findings)


# ----------------------------------------------------------------------
# mutable-state
# ----------------------------------------------------------------------
class TestMutableStateRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("mutable_violations.py", "repro.fake.mut_fixture")
        return run_rules(project, [MutableStateRule()])

    def test_every_hazard_flagged(self, findings):
        expected = {
            line_of("mutable_violations.py", "def bad_default(jobs=[])"),
            line_of("mutable_violations.py", "def bad_kwonly(*, memo={})"),
            line_of("mutable_violations.py", "SHARED = {}"),
            line_of("mutable_violations.py", "field(default=[])"),
            line_of("mutable_violations.py", "counts: Counter = Counter()"),
        }
        assert by_line(findings) == expected
        assert len(findings) == 5

    def test_clean_patterns_pass(self, findings):
        clean_lines = {
            line_of("mutable_violations.py", "field(default_factory=list)"),
            line_of("mutable_violations.py", "field(default_factory=dict)"),
            line_of("mutable_violations.py", "def clean(jobs=None"),
        }
        assert not (by_line(findings) & clean_lines)


# ----------------------------------------------------------------------
# batch-api
# ----------------------------------------------------------------------
class TestBatchApiRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("batch_violations.py", "repro.baselines.batch_fixture")
        return run_rules(project, [BatchApiRule()])

    def test_every_scalar_call_in_loop_flagged(self, findings):
        expected = {
            line_of("batch_violations.py", "engine.mac_load(row,"),
            line_of("batch_violations.py", "ctx.engine.store(row + 1,"),
            line_of("batch_violations.py", "engine.accumulate_store(rows[i],"),
            line_of("batch_violations.py", "engine.rmw(row,"),
            line_of("batch_violations.py", "engine.mac_stream_load(row,"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "batch-api" for f in findings)
        assert all(f.severity == "error" for f in findings)

    def test_clean_patterns_pass(self, findings):
        clean = {
            line_of("batch_violations.py", 'engine.load(rows[0], "a", "A")'),
            line_of("batch_violations.py", 'engine.mac_load_batch(np.asarray(rows)'),
            line_of("batch_violations.py", "engine.mac_local(1)"),
            line_of("batch_violations.py", "engine.mac_load_batch(np.asarray([row])"),
            line_of("batch_violations.py", "rows.store(row)"),
            line_of("batch_violations.py", 'engine.stream(64, "A")'),
        }
        assert not (by_line(findings) & clean)

    def test_inline_suppression_honoured(self, findings):
        suppressed = line_of("batch_violations.py", "analyzer: allow[batch-api]")
        assert suppressed not in by_line(findings)

    def test_out_of_scope_module_is_clean(self):
        project = load_fixture("batch_violations.py", "repro.sim.engine_fixture")
        assert run_rules(project, [BatchApiRule()]) == []

    def test_messages_point_at_batch_variant(self, findings):
        messages = " | ".join(f.message for f in findings)
        assert "mac_load_batch()" in messages
        assert "store_batch()" in messages


# ----------------------------------------------------------------------
# buffer-internals
# ----------------------------------------------------------------------
class TestBufferInternalsRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture(
            "buffer_violations.py", "repro.baselines.buffer_fixture"
        )
        return run_rules(project, [BufferInternalsRule()])

    def test_every_arena_access_flagged(self, findings):
        expected = {
            line_of("buffer_violations.py", "buf._slot_of.get(0x40)"),
            line_of("buffer_violations.py", "buf._slot_ready[slot]"),
            line_of("buffer_violations.py", "engine.buffer._max_ready = 0.0"),
            line_of("buffer_violations.py", "buf._insert(0.0,"),
            line_of("buffer_violations.py", "engine.buffer._read_miss(0.0,"),
            line_of("buffer_violations.py", "buf._lru_ods[0].popitem"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "buffer-internals" for f in findings)
        assert all(f.severity == "error" for f in findings)

    def test_public_api_not_flagged(self, findings):
        clean = {
            line_of("buffer_violations.py", "buf.read(0.0,"),
            line_of("buffer_violations.py", "buf.write(issue,"),
            line_of("buffer_violations.py", "buf.classify_batch(addrs, 0)"),
            line_of("buffer_violations.py", "buf.contains(0xC0)"),
            line_of("buffer_violations.py", 'buf.reclassify("partial", "out")'),
            line_of("buffer_violations.py", 'buf.flush(ready, "drain")'),
            line_of("buffer_violations.py", 'getattr(tracker, "_size", None)'),
        }
        assert not (by_line(findings) & clean)

    def test_inline_suppression_honoured(self, findings):
        suppressed = line_of(
            "buffer_violations.py", "analyzer: allow[buffer-internals]"
        )
        assert suppressed not in by_line(findings)

    def test_out_of_scope_module_is_clean(self):
        project = load_fixture(
            "buffer_violations.py", "repro.sim.engine_fixture"
        )
        assert run_rules(project, [BufferInternalsRule()]) == []

    def test_field_set_matches_live_buffer(self):
        """The rule's field list must track the real class: every listed
        field/method exists on a constructed CacheBuffer, so a rename in
        the buffer forces this list (and the rule) to follow."""
        from repro.sim.buffer import CacheBuffer
        from repro.sim.memory import DRAM, DRAMConfig
        from repro.sim.stats import SimStats

        stats = SimStats()
        buf = CacheBuffer(
            capacity_lines=16,
            line_bytes=64,
            dram=DRAM(DRAMConfig(), stats),
            stats=stats,
        )
        for name in ARENA_FIELDS | ARENA_METHODS:
            assert hasattr(buf, name), name

    def test_replay_scope_flags_reads_too(self):
        """In replay-mode modules even reading the arena is a
        violation: replay is read-only by construction, state flows
        through snapshot_state/restore_state only."""
        project = load_fixture("replay_violations.py", "repro.sim.replay")
        findings = run_rules(project, [BufferInternalsRule()])
        expected = {
            line_of("replay_violations.py", "buffer._max_ready"),
            line_of("replay_violations.py", "buffer._slot_ready[0] = 0.0"),
            line_of("replay_violations.py", "buffer._commit_epoch"),
        }
        assert by_line(findings) == expected
        assert all("read-only" in f.message for f in findings)

    def test_replay_scope_public_snapshot_api_clean(self):
        project = load_fixture("replay_violations.py", "repro.sim.replay")
        findings = run_rules(project, [BufferInternalsRule()])
        clean = {
            line_of("replay_violations.py", "buffer.restore_state"),
            line_of("replay_violations.py", "engine.restore_state"),
            line_of("replay_violations.py", "buf.snapshot_state()"),
            line_of("replay_violations.py", "buffer.occupancy_by_class()"),
        }
        assert not (by_line(findings) & clean)

    def test_epoch_fields_in_rule_list(self):
        """The epoch-vectorization additions are covered."""
        assert "_mask_scratch" in ARENA_FIELDS
        assert {"_plan_victims", "_commit_epoch"} <= ARENA_METHODS


# ----------------------------------------------------------------------
# obs-hygiene
# ----------------------------------------------------------------------
class TestObsHygieneRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("obs_violations.py", "repro.hymm.obs_fixture")
        return run_rules(project, [ObsHygieneRule()])

    def test_every_finding_location(self, findings):
        expected = {
            line_of("obs_violations.py", 'tracer.span("tile", 0.0'),
            line_of("obs_violations.py", 'ctx.engine.tracer.instant("plan", 0.0'),
            line_of("obs_violations.py", 'tracer.counter("occupancy", 0.0'),
            line_of("obs_violations.py", "tracer._events.append"),
            line_of("obs_violations.py", "len(tracer.events)"),
            line_of("obs_violations.py", 'tracer.span("late"'),
        }
        assert by_line(findings) == expected

    def test_guarded_sites_not_flagged(self, findings):
        fine = {
            line_of("obs_violations.py", 'tracer.span("tile", t0'),
            line_of("obs_violations.py", 'ctx.engine.tracer.instant("plan", t0'),
            line_of("obs_violations.py", 'tracer.counter("occ", t0'),
        }
        assert fine.isdisjoint(by_line(findings))

    def test_non_tracer_receivers_not_flagged(self, findings):
        unrelated = {
            line_of("obs_violations.py", 'metrics.counter("jobs")'),
            line_of("obs_violations.py", 'metrics.span("outer"'),
        }
        assert unrelated.isdisjoint(by_line(findings))

    def test_guard_does_not_cross_function_boundary(self, findings):
        assert line_of("obs_violations.py", 'tracer.span("late"') in by_line(
            findings
        )

    def test_inline_suppression_honoured(self, findings):
        suppressed = line_of("obs_violations.py", "analyzer: allow[obs-hygiene]")
        assert suppressed not in by_line(findings)

    def test_out_of_scope_module_is_clean(self):
        project = load_fixture("obs_violations.py", "repro.sim.obs_fixture")
        assert run_rules(project, [ObsHygieneRule()]) == []

    def test_messages_name_the_fix(self, findings):
        messages = " | ".join(f.message for f in findings)
        assert "enabled" in messages
        assert "Tracer API" in messages

    def test_severity_is_error(self, findings):
        assert {f.severity for f in findings} == {"error"}


# ----------------------------------------------------------------------
# serve-hygiene
# ----------------------------------------------------------------------
class TestServeHygieneRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture("serve_violations.py", "repro.serve.fixture")
        return run_rules(project, [ServeHygieneRule()])

    def test_every_finding_location(self, findings):
        expected = {
            line_of("serve_violations.py", "time.sleep(0.1)  # VIOLATION"),
            line_of("serve_violations.py", "nap(0.1)"),
            line_of("serve_violations.py", "with open(path) as fh:  # VIOLATION"),
            line_of("serve_violations.py", "doc = json.load(fh)"),
            line_of("serve_violations.py", 'subprocess.run(["true"])'),
            line_of("serve_violations.py", "os.replace(path, path)"),
            line_of("serve_violations.py", "Path(path).read_text()"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "serve-hygiene" for f in findings)

    def test_async_safe_and_nested_sync_allowed(self, findings):
        allowed = {
            line_of("serve_violations.py", "await asyncio.sleep(0.1)"),
            line_of("serve_violations.py", 'json.dumps({"ok": True})'),
            line_of("serve_violations.py", "time.sleep(0.1)", occurrence=2),
            line_of("serve_violations.py", "with open(path) as fh:", occurrence=2),
        }
        assert not (by_line(findings) & allowed)

    def test_module_level_sync_function_exempt(self, findings):
        exempt = {
            line_of("serve_violations.py", "time.sleep(0.0)"),
            line_of("serve_violations.py", "with open(path) as fh:", occurrence=3),
        }
        assert not (by_line(findings) & exempt)

    def test_out_of_scope_module_is_clean(self):
        project = load_fixture("serve_violations.py", "repro.runtime.fixture")
        assert run_rules(project, [ServeHygieneRule()]) == []

    def test_messages_name_the_fix(self, findings):
        messages = " | ".join(f.message for f in findings)
        assert "asyncio.sleep" in messages
        assert "asyncio.to_thread" in messages
        assert "worker thread" in messages

    def test_severity_is_error(self, findings):
        assert {f.severity for f in findings} == {"error"}


# ----------------------------------------------------------------------
# telemetry-hygiene
# ----------------------------------------------------------------------
class TestTelemetryHygieneRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixture(
            "telemetry_violations.py", "repro.fake.telem_fixture"
        )
        return run_rules(project, [TelemetryHygieneRule()])

    def test_every_finding_location(self, findings):
        expected = {
            line_of("telemetry_violations.py", 'registry.counter(f"repro_'),
            line_of("telemetry_violations.py", 'registry.gauge("repro_" + computed'),
            line_of("telemetry_violations.py", "registry.histogram(name"),
            line_of("telemetry_violations.py", "registry.counter()"),
            line_of("telemetry_violations.py", "repro_bad-name_total"),
            line_of("telemetry_violations.py", '"queue_depth"'),
            line_of("telemetry_violations.py", "duplicate registration site"),
            line_of("telemetry_violations.py", '"repro_l1_total"'),
            line_of("telemetry_violations.py", '"repro_l2_total"'),
            line_of("telemetry_violations.py", '"repro_l3_total"'),
            line_of("telemetry_violations.py", 'counter.labels(f"job-'),
            line_of("telemetry_violations.py", 'counter.labels("job-" +'),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "telemetry-hygiene" for f in findings)

    def test_clean_patterns_pass(self, findings):
        fine = {
            line_of("telemetry_violations.py", "first registration site"),
            line_of("telemetry_violations.py", '"repro_ok_total"'),
            line_of("telemetry_violations.py", "good.labels(status)"),
            line_of("telemetry_violations.py", 'good.labels("hit")'),
            line_of("telemetry_violations.py", 'tracer.counter("occupancy"'),
        }
        assert fine.isdisjoint(by_line(findings))

    def test_duplicate_names_first_site(self, findings):
        dup = [f for f in findings if "also registered at" in f.message]
        assert len(dup) == 1
        first_line = line_of("telemetry_violations.py", "first registration site")
        assert f":{first_line}" in dup[0].message

    def test_inline_suppression_honoured(self, findings):
        suppressed = line_of(
            "telemetry_violations.py", "analyzer: allow[telemetry-hygiene]"
        )
        assert suppressed not in by_line(findings)

    def test_messages_name_the_fix(self, findings):
        messages = " | ".join(f.message for f in findings)
        assert "string literals" in messages
        assert "cardinality" in messages
        assert "bounded categorical set" in messages
        assert "prefix" in messages

    def test_severity_is_error(self, findings):
        assert {f.severity for f in findings} == {"error"}
