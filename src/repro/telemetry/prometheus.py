"""Prometheus text exposition (format 0.0.4) -- render and validate.

No client library: the serve server speaks NDJSON-over-TCP, so the
exposition is just a string payload on ``/metrics/prometheus``, and a
hand-rolled validator keeps CI honest about the format without adding
a dependency.  The validator checks the contract a real scraper relies
on:

* ``# HELP`` / ``# TYPE`` precede a family's samples, once each;
* metric and label names match the Prometheus grammar;
* label values are correctly quoted/escaped; sample values parse as
  floats (``+Inf``/``-Inf``/``NaN`` included);
* histograms expose cumulative, non-decreasing ``_bucket`` series
  ending in ``le="+Inf"``, and ``_count`` equals the +Inf bucket;
* no family's samples are interleaved with another family's.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<timestamp>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


class ExpositionError(ValueError):
    """The text payload violates the exposition format."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(pairs: Sequence[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in pairs
    )
    return "{" + inner + "}"


def render_exposition(*registries: MetricsRegistry) -> str:
    """The text exposition for one or more registries.

    Families render in name order per registry, registries in argument
    order; a family name seen in an earlier registry is skipped in
    later ones (first registration wins) so composing the serve
    registry with the process-global one can't emit duplicates.
    """
    lines: List[str] = []
    seen: set = set()
    for registry in registries:
        for metric in registry.collect():
            if metric.name in seen:
                continue
            seen.add(metric.name)
            lines.append(f"# HELP {metric.name} {_escape_help(metric.help)}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for labelvalues, leaf in metric.samples():
                base = list(zip(metric.labelnames, labelvalues))
                if isinstance(leaf, Histogram):
                    counts, total, total_sum, _ = leaf.snapshot()
                    cumulative = 0
                    for bound, count in zip(leaf.bounds, counts):
                        cumulative += count
                        lines.append(
                            f"{metric.name}_bucket"
                            f"{_format_labels(base + [('le', _format_value(bound))])}"
                            f" {cumulative}"
                        )
                    cumulative += counts[-1]
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_format_labels(base + [('le', '+Inf')])}"
                        f" {cumulative}"
                    )
                    lines.append(
                        f"{metric.name}_sum{_format_labels(base)}"
                        f" {_format_value(total_sum)}"
                    )
                    lines.append(
                        f"{metric.name}_count{_format_labels(base)} {total}"
                    )
                elif isinstance(leaf, (Counter, Gauge)):
                    lines.append(
                        f"{metric.name}{_format_labels(base)}"
                        f" {_format_value(leaf.value)}"
                    )
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Validator


def _parse_value(raw: str, lineno: int) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(lineno, f"unparsable sample value {raw!r}") from None


def _base_family(sample_name: str, families: Dict[str, str]) -> Optional[str]:
    """The declared family a sample name belongs to, if any."""
    if sample_name in families:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if sample_name.endswith(suffix):
            stem = sample_name[: -len(suffix)]
            if stem in families:
                return stem
    return None


def validate_exposition(text: str) -> Dict[str, int]:
    """Raise :class:`ExpositionError` on format violations.

    Returns ``{"families": n, "samples": m}`` on success so callers
    (the CI smoke) can assert the scrape was non-trivial.
    """
    families: Dict[str, str] = {}  # name -> type
    helped: set = set()
    # family -> list of (lineno, labels dict, value) for histogram checks
    buckets: Dict[str, List[Tuple[int, Dict[str, str], float]]] = {}
    counts: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    current_family: Optional[str] = None
    closed: set = set()
    samples = 0

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # arbitrary comments are legal
            if len(parts) < 3 or _NAME_RE.fullmatch(parts[2]) is None:
                raise ExpositionError(lineno, f"bad {parts[1]} line: {line!r}")
            name = parts[2]
            if parts[1] == "HELP":
                if name in helped:
                    raise ExpositionError(lineno, f"duplicate HELP for {name}")
                helped.add(name)
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise ExpositionError(lineno, f"unknown TYPE {kind!r} for {name}")
                if name in families:
                    raise ExpositionError(lineno, f"duplicate TYPE for {name}")
                if name in closed:
                    raise ExpositionError(
                        lineno, f"family {name} re-opened after other samples"
                    )
                families[name] = kind
                if current_family is not None and current_family != name:
                    closed.add(current_family)
                current_family = name
            continue

        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ExpositionError(lineno, f"unparsable sample line: {line!r}")
        sample_name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for pair in _LABEL_RE.finditer(raw_labels):
                labels[pair.group("name")] = pair.group("value")
                consumed = pair.end()
                if consumed < len(raw_labels):
                    if raw_labels[consumed] != ",":
                        raise ExpositionError(
                            lineno, f"malformed labels: {raw_labels!r}"
                        )
                    consumed += 1
            if consumed < len(raw_labels):
                raise ExpositionError(lineno, f"malformed labels: {raw_labels!r}")
        value = _parse_value(match.group("value"), lineno)
        samples += 1

        family = _base_family(sample_name, families)
        if family is None:
            raise ExpositionError(
                lineno, f"sample {sample_name!r} has no preceding TYPE line"
            )
        if family != current_family:
            # Samples must be grouped by family.
            if family in closed:
                raise ExpositionError(
                    lineno,
                    f"samples for {family} interleaved with another family",
                )
            if current_family is not None:
                closed.add(current_family)
            current_family = family
        kind = families[family]
        if kind == "histogram":
            if sample_name == f"{family}_bucket":
                if "le" not in labels:
                    raise ExpositionError(
                        lineno, f"{sample_name} missing 'le' label"
                    )
                buckets.setdefault(family, []).append((lineno, labels, value))
            elif sample_name == f"{family}_count":
                key = tuple(
                    sorted((k, v) for k, v in labels.items() if k != "le")
                )
                counts[(family, key)] = value
            elif sample_name != f"{family}_sum":
                raise ExpositionError(
                    lineno,
                    f"unexpected histogram sample {sample_name!r}",
                )
        elif kind == "counter":
            if value < 0 and not math.isnan(value):
                raise ExpositionError(
                    lineno, f"counter {sample_name} has negative value {value}"
                )

    # Histogram cross-sample checks: per label-set, buckets must be
    # cumulative/non-decreasing, end at +Inf, and match _count.
    for family, rows in buckets.items():
        series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[int, str, float]]] = {}
        for lineno, labels, value in rows:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            series.setdefault(key, []).append((lineno, labels["le"], value))
        for key, entries in series.items():
            prev = -math.inf
            saw_inf = False
            last_lineno = entries[-1][0]
            for lineno, le, value in entries:
                if le == "+Inf":
                    saw_inf = True
                    inf_value = value
                if value < prev:
                    raise ExpositionError(
                        lineno,
                        f"{family}_bucket not cumulative (le={le!r}: "
                        f"{value} < {prev})",
                    )
                prev = value
            if not saw_inf:
                raise ExpositionError(
                    last_lineno, f"{family}_bucket series missing le=\"+Inf\""
                )
            declared = counts.get((family, key))
            if declared is not None and declared != inf_value:
                raise ExpositionError(
                    last_lineno,
                    f"{family}_count={declared} != +Inf bucket {inf_value}",
                )

    return {"families": len(families), "samples": samples}
