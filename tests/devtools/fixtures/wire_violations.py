"""Fixture: wire-schema violations on a miniature JobSpec/RunResult tree.

``JobSpec`` (root) -> ``BadConfig`` (reachable, no serialisation at
all); ``RunResult`` omits a field in ``to_dict`` and another in
``from_dict``.  Never imported, only parsed.
"""
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class BadConfig:                       # line 12: no to_dict / no from_dict
    knob: int = 3


@dataclass
class JobSpec:
    dataset: str
    config: Optional[BadConfig] = None

    def to_dict(self) -> Dict[str, object]:
        return {"dataset": self.dataset, "config": None}

    @classmethod
    def from_dict(cls, data):
        return cls(dataset=data["dataset"], config=None)


@dataclass
class RunResult:
    accelerator: str
    cycles: int = 0
    notes: str = ""

    def to_dict(self) -> Dict[str, object]:  # line 34: omits "notes"
        return {"accelerator": self.accelerator, "cycles": self.cycles}

    @classmethod
    def from_dict(cls, data):                # line 38: never passes "cycles"
        return cls(accelerator=data["accelerator"], notes=data.get("notes", ""))


@dataclass
class Unreachable:                     # not in the wire set: no findings
    anything: list = field(default_factory=list)
