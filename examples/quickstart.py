#!/usr/bin/env python3
"""Quickstart: simulate HyMM and the baseline dataflows on Cora.

Loads a synthetic Cora instance (statistics matched to Table II of the
paper), runs one GCN layer on the HyMM accelerator and the two
homogeneous baselines, checks every result against the NumPy oracle,
and prints the comparison the paper's evaluation revolves around.

Run:  python examples/quickstart.py [scale]
"""

import sys

import numpy as np

from repro import (
    GCNModel,
    HyMMAccelerator,
    OPAccelerator,
    RWPAccelerator,
    load_dataset,
    reference_inference,
)
from repro.bench import format_table


def main(scale: float = 0.25) -> None:
    dataset = load_dataset("cora", scale=scale, seed=0)
    print(f"Dataset: {dataset}")
    print(f"  adjacency sparsity: {dataset.adjacency_sparsity:.4f}")
    print(f"  feature sparsity:   {dataset.feature_sparsity:.4f}")

    model = GCNModel(dataset, n_layers=1, seed=1)
    oracle = reference_inference(dataset, model.weight_list)[-1]

    rows = []
    results = {}
    for accelerator in (OPAccelerator(), RWPAccelerator(), HyMMAccelerator()):
        result = accelerator.run_inference(model)
        results[result.accelerator] = result
        correct = np.allclose(result.outputs[-1], oracle, rtol=1e-2, atol=1e-3)
        rows.append([
            result.accelerator,
            result.stats.cycles,
            result.stats.alu_utilization(),
            result.stats.hit_rate(),
            result.stats.dram_total_bytes() / 1024,
            "yes" if correct else "NO",
        ])

    print()
    print(format_table(
        ["dataflow", "cycles", "ALU util", "hit rate", "DRAM KB", "matches oracle"],
        rows,
    ))

    op = results["op"]
    hymm = results["hymm"]
    print(f"\nHyMM speedup over the outer product: "
          f"{hymm.speedup_over(op):.2f}x")
    print(f"HyMM DRAM reduction vs outer product: "
          f"{100 * (1 - hymm.stats.dram_total_bytes() / op.stats.dram_total_bytes()):.1f}%")
    print(f"Degree-sorting preprocessing cost: {hymm.sort_ms:.2f} ms")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
