"""Line-delimited JSON wire protocol of the sweep service.

One request per line, one (or, for followed status, several) response
lines back -- newline-delimited JSON objects over a plain TCP stream,
so any language (or ``nc``) can talk to the server without an HTTP
stack.  Requests name an endpoint either directly (``{"op": "submit",
...}``) or in path form (``{"path": "/status/<job_id>"}``); the
endpoints are:

``/submit``
    Body: ``{"spec": {...JobSpec dict...}, "wait": bool,
    "include_result": bool}``.  Deduplicates against in-flight
    identical specs (single-flight) and the result cache; the response
    carries the job id (the spec's content-hash fingerprint), the
    terminal-or-current status, and where the answer came from
    (``source``: executed / cache-disk / registry / inflight).
``/status/<job_id>``
    One status snapshot, or -- with ``"follow": true`` -- a stream of
    NDJSON events (status transitions and per-phase progress) ending in
    a ``"final": true`` line when the job reaches a terminal state.
``/healthz``
    Liveness: ``{"ok": true, "status": "ok", ...}``.
``/metrics``
    Queue depth, in-flight count, cache hit counters and hit rate,
    phase-replay counters (phases replayed from the trace store vs
    simulated live and recorded), hit-path latency percentiles, and
    worker telemetry aggregated from run manifests (timeouts / retries
    / peak RSS).  The path form ``/metrics/prometheus`` (or
    ``"format": "prometheus"``) returns the same registry as Prometheus
    text exposition in the reply's ``"exposition"`` field.
``/shutdown``
    Ask the server to stop accepting work and exit (local dev/CI
    convenience).

Every response object has ``"ok"`` (bool); failures carry ``"error"``
(message string).  The protocol is versioned via
:data:`PROTOCOL_VERSION`, echoed by ``/healthz``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

#: Bumped when request/response shapes change incompatibly.
PROTOCOL_VERSION = 1

#: StreamReader line limit -- full RunResult payloads (feature-matrix
#: outputs included) ride on one line.
MAX_LINE_BYTES = 32 * 1024 * 1024

# Endpoint names (the ``op`` field, or ``/op`` in path form).
OP_SUBMIT = "submit"
OP_STATUS = "status"
OP_HEALTHZ = "healthz"
OP_METRICS = "metrics"
OP_SHUTDOWN = "shutdown"
OPS = (OP_SUBMIT, OP_STATUS, OP_HEALTHZ, OP_METRICS, OP_SHUTDOWN)

# Job lifecycle states surfaced by /submit and /status.
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
TERMINAL_STATES = (JOB_DONE, JOB_FAILED)

# Where a terminal answer came from.
SOURCE_EXECUTED = "executed"
SOURCE_CACHE_DISK = "cache-disk"
SOURCE_REGISTRY = "registry"


class ProtocolError(ValueError):
    """A request line the server cannot parse or route."""


@dataclass(frozen=True)
class Request:
    """One parsed request line."""

    op: str
    spec: Optional[Dict[str, Any]] = None
    job_id: Optional[str] = None
    wait: bool = True
    include_result: bool = False
    follow: bool = False
    #: Response format selector; only ``/metrics`` honours it
    #: (``"prometheus"`` -> text exposition wrapped in the JSON reply,
    #: also reachable as the path form ``/metrics/prometheus``).
    format: Optional[str] = None


def encode(payload: Dict[str, Any]) -> bytes:
    """One wire line: compact, key-sorted JSON plus the newline.

    Sorted keys make responses byte-deterministic for a given payload
    -- the property the warm-vs-cold byte-identity test leans on.
    """
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into an object; raises ProtocolError."""
    try:
        doc = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad request line: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("request must be a JSON object")
    return doc


def _op_from_path(path: str) -> Dict[str, Any]:
    """``/status/<job_id>`` style path -> op fields."""
    parts = [p for p in path.split("/") if p]
    if not parts:
        raise ProtocolError(f"empty path {path!r}")
    fields: Dict[str, Any] = {"op": parts[0]}
    if parts[0] == OP_STATUS and len(parts) == 2:
        fields["job_id"] = parts[1]
    elif parts[0] == OP_METRICS and len(parts) == 2 and parts[1] == "prometheus":
        fields["format"] = "prometheus"
    elif len(parts) > 1:
        raise ProtocolError(f"unroutable path {path!r}")
    return fields


def parse_request(doc: Dict[str, Any]) -> Request:
    """Validate and normalise one decoded request object."""
    merged = dict(doc)
    path = merged.pop("path", None)
    if path is not None:
        if not isinstance(path, str):
            raise ProtocolError("path must be a string")
        merged.update(_op_from_path(path))
    op = merged.get("op")
    if not isinstance(op, str):
        raise ProtocolError("request needs an 'op' (or 'path') field")
    op = op.lstrip("/")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {', '.join(OPS)})")
    spec = merged.get("spec")
    if op == OP_SUBMIT and not isinstance(spec, dict):
        raise ProtocolError("submit needs a 'spec' object")
    job_id = merged.get("job_id")
    if op == OP_STATUS and not isinstance(job_id, str):
        raise ProtocolError("status needs a 'job_id'")
    fmt = merged.get("format")
    return Request(
        op=op,
        spec=spec if isinstance(spec, dict) else None,
        job_id=job_id if isinstance(job_id, str) else None,
        wait=bool(merged.get("wait", True)),
        include_result=bool(merged.get("include_result", False)),
        follow=bool(merged.get("follow", False)),
        format=fmt if isinstance(fmt, str) else None,
    )


def error_payload(message: str, **extra: Any) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"ok": False, "error": message}
    payload.update(extra)
    return payload
