"""ResultCache: hit/miss, corruption recovery, schema invalidation."""

import json

import numpy as np
import pytest

from repro.bench.workloads import make_model
from repro.hymm.base import RunResult
from repro.runtime import (
    JobSpec,
    ResultCache,
    ShardedResultCache,
    default_cache_dir,
    execute_spec,
)


@pytest.fixture(scope="module")
def spec():
    return JobSpec(dataset="cora", kind="rwp", scale=0.05)


@pytest.fixture(scope="module")
def result(spec):
    return execute_spec(spec)


class TestDefaultLocation:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "hymm-repro"


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        assert cache.load(spec) is None
        cache.store(spec, result)
        assert cache.contains(spec)
        loaded = cache.load(spec)
        assert loaded is not None
        assert loaded.stats.cycles == result.stats.cycles
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_round_trip_bit_identical(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        loaded = cache.load(spec)
        for ours, theirs in zip(result.outputs, loaded.outputs):
            assert ours.dtype == theirs.dtype
            assert np.array_equal(ours, theirs)
        assert loaded.stats.to_dict() == result.stats.to_dict()
        assert loaded.config == result.config

    def test_distinct_specs_do_not_collide(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        other = JobSpec(dataset="cora", kind="rwp", scale=0.05, seed=1)
        assert cache.load(other) is None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        ResultCache(target)
        assert target.is_dir()


class TestCorruptionRecovery:
    def test_truncated_record_is_evicted_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        path = cache.store(spec, result)
        path.write_text(path.read_text()[: 40])  # simulate a torn write
        assert cache.load(spec) is None
        assert not path.exists()
        assert cache.corrupt == 1
        # The next store repairs the entry.
        cache.store(spec, result)
        assert cache.load(spec) is not None

    def test_garbage_json_is_evicted(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        path = cache.store(spec, result)
        path.write_text('{"fingerprint": "x"}')  # wrong shape
        assert cache.load(spec) is None
        assert cache.corrupt == 1

    def test_result_schema_mismatch_is_a_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        path = cache.store(spec, result)
        record = json.loads(path.read_text())
        record["result"]["schema_version"] = RunResult.SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert cache.load(spec) is None
        assert not path.exists()


class TestMaintenance:
    def test_clear_and_size(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        assert cache.size() == 1
        assert cache.clear() == 1
        assert cache.size() == 0
        assert cache.load(spec) is None


class TestRunResultSchema:
    def test_from_dict_rejects_other_versions(self, result):
        data = result.to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError):
            RunResult.from_dict(data)

    def test_extra_sanitised_idempotently(self, result):
        first = result.to_dict()
        assert RunResult.from_dict(first).to_dict() == first

    def test_hymm_extra_records_dropped_objects(self):
        spec = JobSpec(dataset="cora", kind="hymm", scale=0.05)
        data = execute_spec(spec).to_dict()
        assert "plan" in data["extra"]["_dropped"]


class TestShardedLayout:
    def test_store_lands_in_hash_prefix_shard(self, tmp_path, spec, result):
        cache = ShardedResultCache(tmp_path)
        path = cache.store(spec, result)
        fp = spec.fingerprint()
        assert path == tmp_path / fp[:2] / fp[2:4] / f"{fp}.json"
        assert cache.load(spec) is not None

    def test_flat_record_adopted_transparently(self, tmp_path, spec, result):
        flat = ResultCache(tmp_path)
        flat_path = flat.store(spec, result)
        sharded = ShardedResultCache(tmp_path)
        assert sharded.contains(spec)
        loaded = sharded.load(spec)
        assert loaded is not None
        assert loaded.stats.cycles == result.stats.cycles
        # The record physically moved into its shard.
        assert not flat_path.exists()
        fp = spec.fingerprint()
        assert (tmp_path / fp[:2] / fp[2:4] / f"{fp}.json").exists()
        assert sharded.migrated == 1

    def test_adopt_is_idempotent_and_race_tolerant(self, tmp_path, spec, result):
        sharded = ShardedResultCache(tmp_path)
        sharded.store(spec, result)
        # No flat file: adoption is a silent no-op (the losing side of
        # a migration race sees exactly this).
        sharded._adopt_flat(spec.fingerprint())
        assert sharded.migrated == 0
        assert sharded.load(spec) is not None

    def test_size_and_clear_span_both_layouts(self, tmp_path, spec, result):
        flat = ResultCache(tmp_path)
        flat.store(spec, result)
        other = JobSpec(dataset="cora", kind="rwp", scale=0.05, seed=1)
        sharded = ShardedResultCache(tmp_path)
        sharded.store(other, result)
        assert sharded.size() == 2
        assert sharded.clear() == 2
        assert sharded.size() == 0

    def test_corruption_recovery_in_shard(self, tmp_path, spec, result):
        cache = ShardedResultCache(tmp_path)
        path = cache.store(spec, result)
        path.write_text(path.read_text()[:40])
        assert cache.load(spec) is None
        assert not path.exists()
        cache.store(spec, result)
        assert cache.load(spec) is not None

    def test_hit_rate_property(self, tmp_path, spec, result):
        cache = ShardedResultCache(tmp_path)
        assert cache.hit_rate == 0.0
        cache.load(spec)
        cache.store(spec, result)
        cache.load(spec)
        assert cache.hit_rate == 0.5


class TestConcurrentWriters:
    def test_racing_writers_same_key_never_tear(self, tmp_path, spec, result):
        """Many writers storing the same record concurrently: every
        interleaving must leave one valid JSON record (last writer
        wins; os.replace is atomic) and no temp-file litter."""
        import threading

        caches = [ShardedResultCache(tmp_path) for _ in range(4)]
        errors = []
        start = threading.Barrier(len(caches))

        def hammer(cache):
            try:
                start.wait(timeout=10)
                for _ in range(25):
                    cache.store(spec, result)
                    loaded = cache.load(spec)
                    assert loaded is not None, "reader saw a torn record"
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(c,)) for c in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        final = ShardedResultCache(tmp_path)
        assert final.load(spec) is not None
        assert final.size() == 1
        leftovers = [
            p for p in tmp_path.rglob("*") if p.is_file()
            and not p.name.endswith(".json")
        ]
        assert leftovers == []

    def test_racing_flat_migration(self, tmp_path, spec, result):
        """Multiple sharded caches adopting the same flat record: one
        wins the os.replace, the rest treat losing as a no-op."""
        import threading

        flat = ResultCache(tmp_path)
        flat.store(spec, result)
        caches = [ShardedResultCache(tmp_path) for _ in range(6)]
        results = []
        start = threading.Barrier(len(caches))

        def adopt(cache):
            start.wait(timeout=10)
            results.append(cache.load(spec))

        threads = [
            threading.Thread(target=adopt, args=(c,)) for c in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert all(r is not None for r in results)
        assert sum(c.migrated for c in caches) == 1
