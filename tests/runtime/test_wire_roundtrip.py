"""Round-trip property tests for every wire dataclass.

The set of classes under test is *locked to the analyzer*: the
``wire-schema`` rule computes which dataclasses are reachable from
JobSpec/RunResult, and ``test_every_wire_class_is_covered`` fails if a
class joins the wire set without gaining a round-trip test here.  Rule
and suite cannot drift apart.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.analyzer.core import Project
from repro.devtools.analyzer.rules.wire_schema import reachable_wire_classes
from repro.hymm.base import RunResult
from repro.hymm.config import HyMMConfig
from repro.runtime.job import JobSpec
from repro.sim.memory import DRAMConfig
from repro.sim.stats import TRAFFIC_TAGS, SimStats

REPO_ROOT = Path(__file__).resolve().parents[2]


def through_json(obj):
    """to_dict -> JSON text -> from_dict, as the disk cache does."""
    payload = json.loads(json.dumps(obj.to_dict()))
    return type(obj).from_dict(payload)


def make_stats() -> SimStats:
    stats = SimStats(
        cycles=1234,
        busy_cycles=789,
        dram_read_bytes=Counter({"A": 640, "X": 128}),
        dram_write_bytes=Counter({"AXW": 256}),
        buffer_hits=Counter({"X": 9, "partial": 2}),
        buffer_misses=Counter({"X": 3}),
        lsq_forwards=5,
        partial_peak_bytes=4096,
        partial_spill_bytes=512,
        partials_produced=130,
        requests_issued=40,
    )
    stats.sample_partial_footprint(64)
    return stats


def make_result() -> RunResult:
    return RunResult(
        accelerator="hymm",
        dataset="cora",
        config=HyMMConfig(n_pes=8),
        stats=make_stats(),
        outputs=[np.arange(6, dtype=np.float64).reshape(2, 3)],
        phase_cycles={"combination": 10.0, "aggregation": 20.0},
        phase_stats={"aggregation": {"cycles": 20, "hits": 4}},
        phase_snapshots={
            "layer0.aggregation": SimStats(
                cycles=20, busy_cycles=9, buffer_hits=Counter({"X": 4})
            ),
            "drain": SimStats(cycles=3),
        },
        sort_ms=1.5,
        wall_seconds=0.25,
        extra={"note": "fixture"},
    )


# One constructor per wire class.  test_every_wire_class_is_covered
# forces this map to match the analyzer's reachability computation.
WIRE_CASES = {
    "JobSpec": lambda: JobSpec(
        dataset="cora",
        kind="hymm",
        scale=0.25,
        n_layers=2,
        seed=7,
        config=HyMMConfig(n_pes=4, unified_buffer=False),
        sort_mode="random",
        feature_length=32,
    ),
    "RunResult": make_result,
    "HyMMConfig": lambda: HyMMConfig(n_pes=32, threshold_fraction=0.3, lru=False),
    "SimStats": make_stats,
    "DRAMConfig": lambda: DRAMConfig(bytes_per_cycle=32, latency_cycles=80),
}


def test_every_wire_class_is_covered():
    project = Project.load([REPO_ROOT / "src"], root=REPO_ROOT)
    reachable = set(reachable_wire_classes(project, ["JobSpec", "RunResult"]))
    assert reachable == set(WIRE_CASES), (
        "wire set changed: add/remove a WIRE_CASES entry (and a round-trip "
        "test) for the difference"
    )


@pytest.mark.parametrize("name", sorted(WIRE_CASES))
def test_round_trip_through_json(name):
    original = WIRE_CASES[name]()
    restored = through_json(original)
    # Compare serialised forms: ndarray fields make dataclass == unusable
    # for RunResult, and to_dict parity is the property the cache needs.
    assert restored.to_dict() == original.to_dict()


@pytest.mark.parametrize("name", sorted(WIRE_CASES))
def test_defaults_round_trip(name):
    if name == "JobSpec":
        original = JobSpec(dataset="d", kind="k", scale=1.0)
    elif name == "RunResult":
        original = RunResult(
            accelerator="a", dataset="d", config=HyMMConfig(),
            stats=SimStats(), outputs=[],
        )
    else:
        original = WIRE_CASES[name]().__class__()
    assert through_json(original).to_dict() == original.to_dict()


def test_jobspec_fingerprint_stable_across_round_trip():
    spec = WIRE_CASES["JobSpec"]()
    assert through_json(spec).fingerprint() == spec.fingerprint()


def test_runresult_outputs_bit_identical():
    result = make_result()
    restored = through_json(result)
    for a, b in zip(result.outputs, restored.outputs):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)


def test_dramconfig_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown DRAMConfig"):
        DRAMConfig.from_dict({"bytes_per_cycle": 64, "typo_field": 1})


# ----------------------------------------------------------------------
# Property tests: arbitrary counter contents survive the wire.
# ----------------------------------------------------------------------
tag_counters = st.dictionaries(
    st.sampled_from(TRAFFIC_TAGS), st.integers(min_value=0, max_value=2**40)
)


@settings(max_examples=50, deadline=None)
@given(
    cycles=st.integers(min_value=0, max_value=2**50),
    busy=st.integers(min_value=0, max_value=2**50),
    reads=tag_counters,
    writes=tag_counters,
    hits=tag_counters,
    misses=tag_counters,
    timeline=st.lists(
        st.tuples(st.integers(0, 2**30), st.integers(0, 2**40)), max_size=8
    ),
)
def test_simstats_round_trip_property(cycles, busy, reads, writes, hits, misses, timeline):
    original = SimStats(
        cycles=cycles,
        busy_cycles=busy,
        dram_read_bytes=Counter(reads),
        dram_write_bytes=Counter(writes),
        buffer_hits=Counter(hits),
        buffer_misses=Counter(misses),
        partial_timeline=list(timeline),
    )
    restored = through_json(original)
    assert restored == original


@settings(max_examples=50, deadline=None)
@given(
    dataset=st.text(min_size=1, max_size=12).filter(str.strip),
    kind=st.sampled_from(["hymm", "rwp", "op"]),
    scale=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    n_layers=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    sort_mode=st.sampled_from([None, "degree", "random", "none"]),
)
def test_jobspec_round_trip_property(dataset, kind, scale, n_layers, seed, sort_mode):
    original = JobSpec(
        dataset=dataset, kind=kind, scale=scale,
        n_layers=n_layers, seed=seed, sort_mode=sort_mode,
    )
    restored = through_json(original)
    assert restored == original
    assert restored.fingerprint() == original.fingerprint()
