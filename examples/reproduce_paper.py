#!/usr/bin/env python3
"""Regenerate every table and figure of the paper in one run.

This is the driver behind EXPERIMENTS.md: it renders Tables I-III and
Figures 2 and 6-11 using the same generators the benchmark suite
asserts against.  Simulations are memoised, so the whole script costs
one pass over the dataset suite.

Run:  python examples/reproduce_paper.py            (reduced scales, ~2-3 min)
      REPRO_FULL_SCALE=1 python examples/reproduce_paper.py   (paper scale)
"""

from repro.bench import figures, full_scale_requested, tables


def banner(title: str) -> None:
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}")


def main() -> None:
    mode = "paper scale" if full_scale_requested() else "reduced scales"
    print(f"Reproducing HyMM (DATE 2025) evaluation at {mode}.")

    banner("Table I   Dataflow comparison")
    print(tables.table1())

    banner("Table II  Graph datasets")
    print(tables.table2()["text"])

    banner("Table III Hardware parameters and estimated area")
    print(tables.table3()["text"])

    banner("Figure 2  Graph degree distribution")
    print(figures.fig2_degree_distribution()["text"])

    banner("Figure 6  Storage overhead of region tiling")
    print(figures.fig6_storage_overhead()["text"])

    banner("Figure 7  Speedup")
    print(figures.fig7_speedup()["text"])

    banner("Figure 8  ALU utilization")
    print(figures.fig8_alu_utilization()["text"])

    banner("Figure 9  DMB hit rate")
    print(figures.fig9_hit_rate()["text"])

    banner("Figure 10 Partial-output memory usage")
    print(figures.fig10_partial_outputs()["text"])

    banner("Figure 11 DRAM access breakdown")
    print(figures.fig11_dram_breakdown()["text"])


if __name__ == "__main__":
    main()
