#!/usr/bin/env bash
# One-stop local gate: runs exactly what CI runs, skipping tools that
# are not installed (mypy/ruff are dev extras; the analyzer and pytest
# only need the package itself).
#
#   ./scripts/check.sh          # analyzer + mypy + ruff + tests
#   ./scripts/check.sh fast     # analyzer only (sub-second)
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"
export PYTHONPATH="$repo_root/src${PYTHONPATH:+:$PYTHONPATH}"

failed=0
run() {
    echo "==> $*"
    "$@" || failed=1
}

# One analyzer invocation covers every rule: the CLI parses src/ into
# a single Project, and the interprocedural layer (call graph + effect
# table) is memoised on it, so intraprocedural and call-graph rules
# share one parse pass.  The time budget keeps that property honest --
# if analysis regresses past 3s the dev loop gate fails loudly instead
# of quietly slowing every commit.
run python -m repro.devtools.analyzer src/ --strict --time-budget 3

if [ "${1:-}" = "fast" ]; then
    exit "$failed"
fi

if command -v mypy >/dev/null 2>&1; then
    run mypy --strict src/
else
    echo "==> mypy not installed; skipping (pip install -e .[dev])"
fi

if command -v ruff >/dev/null 2>&1; then
    run ruff check src/
else
    echo "==> ruff not installed; skipping (pip install -e .[dev])"
fi

run python -m pytest -x -q

# Replay-by-default end to end: a repeated submit against a cache-less
# server must be served by replaying its recorded phase traces (the
# smoke asserts it via /metrics) while still streaming progress.
run python -m repro.serve smoke

# Perf gate over the committed BENCH_sim.json trajectory: the newest
# entry's replay headline and cold-run engine-only aggregate speedups
# must not have regressed >10% against the previous same-workload entry.
run python scripts/bench_sim_speed.py --check-regression

exit "$failed"
