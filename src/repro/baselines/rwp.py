"""Row-wise-product baseline (GROW-proxy).

Both phases use the row-wise product (Table I: GROW aggregates and
combines row-stationary over CSR).  No graph preprocessing: the
adjacency is consumed in natural node order, so the dataflow can only
exploit whatever column clustering the raw graph happens to have.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.gcn.model import GCNModel
from repro.hymm.base import AcceleratorBase
from repro.hymm.config import HyMMConfig
from repro.hymm.kernels import KernelContext, aggregation_rwp
from repro.sparse import coo_to_csr


class RWPAccelerator(AcceleratorBase):
    """Homogeneous row-wise-product accelerator.

    Like the other prior-art proxies, it defaults to the *split*
    input/output buffer organisation the paper ascribes to earlier
    accelerators ("Prior GCN accelerators equip separated buffers for
    different types of matrices", Section III); pass an explicit config
    to change that.
    """

    name = "rwp"

    def __init__(self, config: Optional[HyMMConfig] = None) -> None:
        if config is None:
            config = HyMMConfig(unified_buffer=False)
        super().__init__(config)

    def prepare(self, model: GCNModel) -> dict:
        prep = super().prepare(model)
        prep["adj_csr"] = coo_to_csr(model.norm_adj)
        return prep

    def phase_config_exempt(self) -> frozenset:
        """RWP never tiles, so the partition knobs are dead config here
        and sweeps over them share this accelerator's traces."""
        return super().phase_config_exempt() | {
            "threshold_fraction",
            "resident_fraction",
        }

    def run_aggregation(self, ctx: KernelContext, prep: dict, xw: np.ndarray) -> np.ndarray:
        return aggregation_rwp(ctx, prep["adj_csr"], xw)
