"""Small AST utilities shared by the rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


#: import_aliases memo: id(tree) -> (tree, aliases).  The tree is kept
#: in the value so a garbage-collected tree's id can never alias a new
#: one; trees live as long as their Project, which is the analyzer run.
_ALIAS_CACHE: Dict[int, Tuple[ast.Module, Dict[str, str]]] = {}


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """local name -> fully qualified name, from top-level imports.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    Only module-level imports are scanned -- function-local imports are
    resolved by a per-function pass in the rules that care.

    Memoised per tree: the interprocedural layer resolves names for
    every function in a module, and rewalking the whole module each
    time turned the analyzer quadratic.
    """
    cached = _ALIAS_CACHE.get(id(tree))
    if cached is not None and cached[0] is tree:
        return cached[1]
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    _ALIAS_CACHE[id(tree)] = (tree, aliases)
    return aliases


def resolve_call_target(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """Fully qualified dotted name of a Name/Attribute expression,
    resolving the leading segment through ``aliases``."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    head = aliases.get(head, head)
    return f"{head}.{rest}" if rest else head


def is_dataclass_def(node: ast.ClassDef) -> bool:
    """Whether the class is decorated with ``@dataclass`` /
    ``@dataclasses.dataclass(...)`` (by name; no import resolution --
    the repo has no other decorator of that name)."""
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        dotted = dotted_name(target)
        if dotted in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def dataclass_fields(node: ast.ClassDef) -> List[Tuple[str, ast.AnnAssign]]:
    """(name, AnnAssign) for every field, skipping ``ClassVar`` ones."""
    fields: List[Tuple[str, ast.AnnAssign]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        fields.append((stmt.target.id, stmt))
    return fields


def annotation_names(annotation: ast.AST) -> Set[str]:
    """Every identifier mentioned in a type annotation, including names
    inside string ("forward reference") annotations."""
    names: Set[str] = set()
    stack: List[ast.AST] = [annotation]
    while stack:
        node = stack.pop()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr)
            elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                try:
                    stack.append(ast.parse(sub.value, mode="eval").body)
                except SyntaxError:
                    pass
    return names


def methods_of(node: ast.ClassDef) -> Dict[str, ast.FunctionDef]:
    return {
        stmt.name: stmt
        for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def iter_classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def walk_excluding(
    tree: ast.AST, excluded: Set[ast.AST]
) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into ``excluded`` subtrees."""
    stack: List[ast.AST] = [tree]
    while stack:
        node = stack.pop()
        if node in excluded:
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))
