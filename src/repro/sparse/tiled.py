"""Region-tiled sparse storage (paper §III, §IV-E and Fig. 6).

After degree sorting, HyMM splits the adjacency matrix into three
regions and stores each in the format its dataflow consumes:

* **Region 1** -- the top ``threshold`` high-degree *rows* (full width),
  stored in CSC and processed by the outer-product engine.  When the
  threshold exceeds what the DMB can hold, region 1 is cut into
  multiple row bands, each a separate CSC tile.
* **Region 2** -- the remaining rows restricted to the top ``threshold``
  high-degree *columns*, stored in CSR and processed by the
  row-wise-product engine (the hot XW rows of these columns fit in the
  DMB).  Also cut into column bands when needed.
* **Region 3** -- the residual low-degree x low-degree block, stored in
  CSR and processed row-wise.

Tiling costs extra pointer arrays (each tile carries its own ``indptr``),
which is the storage overhead the paper reports in Figure 6 (10.2% for
Cora, shrinking as graphs grow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.convert import coo_to_csc, coo_to_csr
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix

REGION_OP = 1
REGION_RWP_DENSE_COLS = 2
REGION_RWP_SPARSE = 3


@dataclass(frozen=True)
class Tile:
    """One stored tile of the region decomposition.

    ``row_lo/row_hi/col_lo/col_hi`` locate the tile in the *sorted*
    matrix; ``matrix`` holds the tile's non-zeros rebased to the tile
    origin, in the format named by ``fmt`` (``"csc"`` for region 1,
    ``"csr"`` otherwise).
    """

    region: int
    row_lo: int
    row_hi: int
    col_lo: int
    col_hi: int
    fmt: str
    matrix: object  # CSRMatrix or CSCMatrix

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def storage_bytes(self) -> int:
        return self.matrix.storage_bytes()


@dataclass(frozen=True)
class StorageReport:
    """Byte accounting behind Figure 6."""

    baseline_bytes: int
    tiled_bytes: int

    @property
    def overhead_bytes(self) -> int:
        return self.tiled_bytes - self.baseline_bytes

    @property
    def overhead_pct(self) -> float:
        """Percentage overhead of tiled storage over a single CSR stream."""
        if self.baseline_bytes == 0:
            return 0.0
        return 100.0 * self.overhead_bytes / self.baseline_bytes


@dataclass
class RegionTiledMatrix:
    """The degree-sorted adjacency matrix cut into HyMM's three regions.

    Build with :meth:`build`; the input must already be degree-sorted
    (highest-degree node first) -- see
    :func:`repro.graphs.preprocess.degree_sort`.
    """

    shape: tuple
    threshold: int
    tiles: List[Tile] = field(default_factory=list)

    @classmethod
    def build(
        cls,
        sorted_adj: COOMatrix,
        threshold: int,
        row_band: Optional[int] = None,
        col_band: Optional[int] = None,
    ) -> "RegionTiledMatrix":
        """Partition a degree-sorted matrix into region tiles.

        Parameters
        ----------
        sorted_adj:
            Degree-sorted adjacency matrix (square).
        threshold:
            Number of top rows/columns forming the high-degree band
            (paper: min(20% of nodes, DMB capacity)).
        row_band:
            Max rows per region-1 tile; ``None`` keeps region 1 whole.
        col_band:
            Max columns per region-2 tile; ``None`` keeps region 2 whole.
        """
        n_rows, n_cols = sorted_adj.shape
        if n_rows != n_cols:
            raise ValueError("region tiling expects a square adjacency matrix")
        if not 0 <= threshold <= n_rows:
            raise ValueError(f"threshold {threshold} out of range [0, {n_rows}]")
        t = threshold
        tiles: List[Tile] = []

        # Region 1: top rows, full width, CSC (outer product).
        for lo, hi in _bands(0, t, row_band):
            block = sorted_adj.submatrix(lo, hi, 0, n_cols)
            tiles.append(Tile(REGION_OP, lo, hi, 0, n_cols, "csc", coo_to_csc(block)))

        # Region 2: remaining rows x top columns, CSR (row-wise product).
        if t < n_rows:
            for lo, hi in _bands(0, t, col_band):
                block = sorted_adj.submatrix(t, n_rows, lo, hi)
                tiles.append(
                    Tile(REGION_RWP_DENSE_COLS, t, n_rows, lo, hi, "csr", coo_to_csr(block))
                )

            # Region 3: the residual sparse block, CSR.
            block = sorted_adj.submatrix(t, n_rows, t, n_cols)
            tiles.append(
                Tile(REGION_RWP_SPARSE, t, n_rows, t, n_cols, "csr", coo_to_csr(block))
            )

        return cls((n_rows, n_cols), t, tiles)

    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Total non-zeros across all tiles (must equal the source nnz)."""
        return sum(tile.nnz for tile in self.tiles)

    def tiles_in_region(self, region: int) -> List[Tile]:
        """All tiles belonging to one of the three regions."""
        return [tile for tile in self.tiles if tile.region == region]

    def to_coo(self) -> COOMatrix:
        """Reassemble the full matrix from its tiles (losslessness check)."""
        rows, cols, vals = [], [], []
        for tile in self.tiles:
            coo = tile.matrix.to_coo()
            rows.append(coo.rows + tile.row_lo)
            cols.append(coo.cols + tile.col_lo)
            vals.append(coo.values)
        if not rows:
            return COOMatrix.empty(self.shape)
        return COOMatrix(
            self.shape,
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        )

    def storage_bytes(self) -> int:
        """Bytes of all tile pointer/index/value streams."""
        return sum(tile.storage_bytes() for tile in self.tiles)

    def storage_report(self, baseline: Optional[CSRMatrix] = None) -> StorageReport:
        """Compare tiled storage against a single CSR stream (Fig. 6).

        ``baseline`` defaults to re-compressing the reassembled matrix.
        """
        if baseline is None:
            baseline = coo_to_csr(self.to_coo())
        return StorageReport(
            baseline_bytes=baseline.storage_bytes(),
            tiled_bytes=self.storage_bytes(),
        )


def _bands(lo: int, hi: int, band: Optional[int]) -> "Iterator[Tuple[int, int]]":
    """Split ``[lo, hi)`` into consecutive chunks of at most ``band``."""
    if hi <= lo:
        return
    if band is None or band >= hi - lo:
        yield lo, hi
        return
    if band <= 0:
        raise ValueError("band size must be positive")
    start = lo
    while start < hi:
        yield start, min(start + band, hi)
        start += band
