"""Area model: Table III calibration and scaling behaviour."""

import pytest

from repro.area import (
    AreaModel,
    cam_area_mm2,
    control_area_mm2,
    mac_area_mm2,
    node_scale_factor,
    sram_area_mm2,
)
from repro.hymm import HyMMConfig


class TestCurves:
    def test_dmb_point(self):
        assert sram_area_mm2(256) == pytest.approx(0.077, abs=0.001)

    def test_smq_point(self):
        assert sram_area_mm2(16) == pytest.approx(0.008, abs=0.0005)

    def test_lsq_point(self):
        assert cam_area_mm2(128 * 68 / 1024) == pytest.approx(0.009, abs=0.0005)

    def test_zero_sram(self):
        assert sram_area_mm2(0) == 0.0

    def test_monotone(self):
        assert sram_area_mm2(512) > sram_area_mm2(256) > sram_area_mm2(64)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            sram_area_mm2(-1)

    def test_mac_point(self):
        assert mac_area_mm2(16) == pytest.approx(0.006)

    def test_control_point(self):
        assert control_area_mm2(16) == pytest.approx(0.004)

    def test_control_grows_sublinearly(self):
        assert control_area_mm2(64) == pytest.approx(0.008)

    def test_node_scale(self):
        assert node_scale_factor(7, 40) == pytest.approx((40 / 7) ** 2)

    def test_node_scale_validation(self):
        with pytest.raises(ValueError):
            node_scale_factor(0, 40)


class TestModel:
    @pytest.fixture
    def model(self):
        return AreaModel(HyMMConfig())

    def test_reproduces_table3_7nm(self, model):
        paper = {"PE Array": 0.006, "DMB": 0.077, "SMQ": 0.008,
                 "LSQ": 0.009, "Others": 0.004}
        ours = model.report("7nm").components
        for comp, value in paper.items():
            assert ours[comp] == pytest.approx(value, rel=0.05), comp

    def test_total_7nm_close_to_paper(self, model):
        # Paper total is 0.106 (component sum is 0.104 -- rounding).
        assert model.total_mm2("7nm") == pytest.approx(0.106, abs=0.005)

    def test_40nm_close_to_paper(self, model):
        # Paper: 3.215 mm^2 via per-component scaling; we use (40/7)^2.
        assert model.total_mm2("40nm") == pytest.approx(3.215, rel=0.10)

    def test_rows_ordered(self, model):
        rows = model.report("7nm").rows()
        assert [r[0] for r in rows] == ["PE Array", "DMB", "SMQ", "LSQ",
                                        "Others", "Total"]

    def test_invalid_node(self, model):
        with pytest.raises(ValueError):
            model.report("28nm")

    def test_bigger_dmb_bigger_area(self):
        base = AreaModel(HyMMConfig()).total_mm2()
        double = AreaModel(HyMMConfig(dmb_bytes=512 * 1024)).total_mm2()
        assert double > base

    def test_more_pes_bigger_area(self):
        base = AreaModel(HyMMConfig()).total_mm2()
        wide = AreaModel(HyMMConfig(n_pes=64)).total_mm2()
        assert wide > base

    def test_default_config_used_when_none(self):
        assert AreaModel().total_mm2() == AreaModel(HyMMConfig()).total_mm2()
