"""Differential fuzz: arena ``CacheBuffer`` vs the legacy dict buffer.

The slot-arena rewrite of :class:`repro.sim.buffer.CacheBuffer` is a
pure representation change -- every public-API return value and every
``SimStats`` counter must match the pre-arena implementation
bit-for-bit on *any* operation sequence, not just the ones the
equivalence suite happens to exercise.  This test drives both cores
through identical randomized streams of
``read``/``write``/``accumulate``/``flush``/``reclassify``/
``invalidate``/``evict_priority`` operations with adversarial class
pressure (address pool >> capacity, skewed class choice) and MSHR
saturation (few MSHR entries, bursts of distinct-miss reads), checking
return values after every operation and the full stats dict plus all
residency observables at the end.

The oracle is ``tests/sim/reference_buffer._ReferenceBuffer`` -- the
legacy per-line ``_Line``-object / ``heapq``-MSHR implementation,
preserved verbatim.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.sim.buffer import ALL_CLASSES, CLASS_PARTIAL, CacheBuffer
from repro.sim.memory import DRAM, DRAMConfig
from repro.sim.stats import SimStats

from tests.sim.reference_buffer import _ReferenceBuffer

#: Randomized operations per seed (the acceptance floor is 1000).
N_OPS = 1200
SEEDS = (0, 1, 2, 3, 4)

#: Small geometry so the stream constantly evicts and stalls:
#: pool of 96 addresses over 24 lines, 4 MSHRs.
CAPACITY_LINES = 24
LINE_BYTES = 64
MSHR_ENTRIES = 4
N_ADDRS = 96


def _make_pair():
    """One (reference, arena) pair over independent but identically
    configured memory systems."""
    pair = []
    for factory in (_ReferenceBuffer, CacheBuffer):
        stats = SimStats()
        dram = DRAM(DRAMConfig(), stats)
        buf = factory(
            capacity_lines=CAPACITY_LINES,
            line_bytes=LINE_BYTES,
            dram=dram,
            stats=stats,
            mshr_entries=MSHR_ENTRIES,
        )
        pair.append((buf, dram, stats))
    return pair


def _observables(buf) -> dict:
    return {
        "size": buf.size_lines,
        "occupancy": buf.occupancy_by_class(),
        "per_class": {c: buf.resident_lines(c) for c in ALL_CLASSES},
        "priority": buf.evict_priority,
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_fuzz(seed):
    rng = random.Random(seed)
    (ref, ref_dram, ref_stats), (arena, arena_dram, arena_stats) = _make_pair()
    addrs = [0x1000 + i * LINE_BYTES for i in range(N_ADDRS)]
    cycle = 0.0

    for step in range(N_OPS):
        # Nondecreasing cycle on the DRAM's 1/64 grid (the same grid
        # real engine timelines live on).
        cycle += rng.randrange(0, 256) / 64.0
        op = rng.randrange(100)
        # Skew toward reads/writes with occasional structural ops, plus
        # miss bursts that saturate the 4 MSHRs with distinct addresses.
        if op < 40:
            burst = rng.randrange(1, 8) if op < 8 else 1
            for _ in range(burst):
                addr = rng.choice(addrs)
                cls = rng.choice(ALL_CLASSES)
                tag = rng.choice(("adj", "feat", cls))
                assert ref.read(cycle, addr, cls, tag) == arena.read(
                    cycle, addr, cls, tag
                ), f"read mismatch at step {step}"
        elif op < 65:
            addr = rng.choice(addrs)
            cls = rng.choice(ALL_CLASSES)
            allocate = rng.random() < 0.8
            assert ref.write(cycle, addr, cls, cls, allocate=allocate) == arena.write(
                cycle, addr, cls, cls, allocate=allocate
            ), f"write mismatch at step {step}"
        elif op < 85:
            addr = rng.choice(addrs)
            assert ref.accumulate(cycle, addr) == arena.accumulate(
                cycle, addr
            ), f"accumulate mismatch at step {step}"
        elif op < 90:
            cls = rng.choice((None,) + ALL_CLASSES)
            assert ref.flush(cycle, cls) == arena.flush(
                cycle, cls
            ), f"flush mismatch at step {step}"
        elif op < 93:
            cls = rng.choice(ALL_CLASSES)
            assert ref.invalidate(cls) == arena.invalidate(
                cls
            ), f"invalidate mismatch at step {step}"
        elif op < 96:
            src, dst = rng.sample(ALL_CLASSES, 2)
            assert ref.reclassify(src, dst) == arena.reclassify(
                src, dst
            ), f"reclassify mismatch at step {step}"
        elif op < 98:
            order = list(ALL_CLASSES)
            rng.shuffle(order)
            ref.evict_priority = tuple(order)
            arena.evict_priority = tuple(order)
        else:
            assert ref.drop_spilled_partials() == arena.drop_spilled_partials()

        if step % 64 == 0:
            # Residency probes are side-effect-free and must agree.
            probe = np.asarray(rng.sample(addrs, 16), dtype=np.int64)
            assert (
                ref.classify_batch(probe).tolist()
                == arena.classify_batch(probe).tolist()
            )
            a = rng.choice(addrs)
            assert ref.contains(a) == arena.contains(a)
            assert _observables(ref) == _observables(arena), f"step {step}"

    # Full end-state equality: stats bit-for-bit, residency, DRAM clock.
    assert ref_stats.to_dict() == arena_stats.to_dict()
    assert _observables(ref) == _observables(arena)
    assert ref_dram.next_free == arena_dram.next_free
    assert [ref.contains(a) for a in addrs] == [arena.contains(a) for a in addrs]


def test_mshr_saturation_ordering():
    """A pure distinct-address miss storm: with 4 MSHRs every fifth
    miss stalls, and the stall/retire order the FIFO ring produces must
    match the reference heap exactly (monotone ready-times make them
    order-equivalent; this pins the proof down with returns)."""
    (ref, _, ref_stats), (arena, _, arena_stats) = _make_pair()
    for i in range(4 * MSHR_ENTRIES + 3):
        addr = 0x9000 + i * LINE_BYTES
        assert ref.read(0.0, addr, "W", "storm") == arena.read(
            0.0, addr, "W", "storm"
        ), f"miss {i}"
    assert ref_stats.to_dict() == arena_stats.to_dict()
