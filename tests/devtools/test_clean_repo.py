"""The real ``src/`` tree must be analyzer-clean.

This is the same gate CI runs; keeping it in the suite means a rule
regression (or a new violation in simulator code) fails fast locally.
"""

from __future__ import annotations

from pathlib import Path

from repro.devtools.analyzer.core import Project, make_rules, run_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_src_tree_has_no_findings():
    project = Project.load([SRC], root=REPO_ROOT)
    assert not project.parse_errors
    findings = run_rules(
        project, make_rules(), report_stale_suppressions=True
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_src_tree_loads_every_module():
    project = Project.load([SRC], root=REPO_ROOT)
    names = {m.module for m in project.modules}
    # Spot-check the packages every rule reasons about.
    for expected in (
        "repro.sim.stats",
        "repro.sim.engine",
        "repro.hymm.accelerator",
        "repro.hymm.config",
        "repro.runtime.job",
        "repro.devtools.analyzer.core",
    ):
        assert expected in names
