"""Rule ``transitive-blocking``: serve-hygiene through the call graph.

``serve-hygiene`` flags a blocking call written *directly* inside an
``async def``, and deliberately stops at the nearest ``def`` boundary
(a nested sync function is the shape of an ``asyncio.to_thread``
target).  That leaves one easy way to freeze the event loop without a
finding: move the ``time.sleep`` / ``open`` / ``subprocess.run`` into a
sync *helper* and call the helper from the handler.  The helper itself
is legal -- sync code may block -- so the bug only exists at the async
call site, and only an interprocedural view can see it.

This rule walks every resolved ``call`` edge out of an ``async def`` in
scope.  When the callee is a sync project function whose inferred
effect set (:mod:`repro.devtools.analyzer.effects`) contains a blocking
effect (``blocks-io``, ``sleeps``, ``spawns-subprocess``), the call
site is a finding, and the message carries the full witness chain down
to the operation that actually blocks::

    sync call to `_probe` blocks the event loop [blocks-io]:
    _handle_submit -> _probe -> ResultCache.load -> open

What does *not* fire, by construction:

* handing the same helper to ``asyncio.to_thread(helper, ...)`` -- a
  ``thread`` reference edge, not a ``call`` edge, and exactly the
  sanctioned discharge of the effect;
* a ``loop.call_soon_threadsafe(cb)`` hand-off (``loopsafe`` edge);
* calls to *async* callees: if the awaited coroutine blocks somewhere,
  the finding belongs at the frame that owns the blocking call, and
  this rule (or ``serve-hygiene``) reports it there -- flagging every
  ``await`` up the stack would bury the signal;
* direct blocking calls in the async body itself -- that is
  ``serve-hygiene``'s finding, not duplicated here.
"""

from __future__ import annotations

from typing import Iterator

from repro.devtools.analyzer.callgraph import KIND_CALL, get_callgraph
from repro.devtools.analyzer.core import Finding, Project, Rule, register
from repro.devtools.analyzer.effects import BLOCKING_EFFECTS, get_effects


@register
class TransitiveBlockingRule(Rule):
    name = "transitive-blocking"
    description = (
        "async serve handlers must not call sync helpers that "
        "(transitively) block; the finding message shows the call "
        "chain down to the blocking operation"
    )
    default_severity = "error"
    default_options = {
        "scope": ["repro.serve"],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        graph = get_callgraph(project)
        effects = get_effects(project)
        for info in graph.async_functions(*scope):
            for site in graph.sites(info.qname):
                if site.kind != KIND_CALL or site.callee is None:
                    continue
                callee = graph.functions.get(site.callee)
                if callee is None or callee.is_async:
                    continue
                fx = effects.of(site.callee)
                for effect in sorted(fx.all & BLOCKING_EFFECTS):
                    chain = effects.render_chain(site.callee, effect)
                    yield self.finding(
                        project, info.module, site.node,
                        f"sync call to `{callee.name}` blocks the event "
                        f"loop [{effect}]: {info.name} -> {chain}; run it "
                        "in a worker via `asyncio.to_thread`",
                        symbol=f"{info.name}->{callee.name}:{effect}",
                    )
