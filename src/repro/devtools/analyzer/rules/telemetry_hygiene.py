"""Rule ``telemetry-hygiene``: metrics stay cheap, named, and bounded.

The :mod:`repro.telemetry` registry protects scrape cost and export
sanity with runtime checks (name grammar, label-cardinality cap), but
the failure modes worth preventing are *static*: a metric name built
with an f-string explodes the registry one time series per request; a
name registered from two call sites either collides at import or --
worse -- silently splits its traffic between a per-server and the
process-global registry.  Three contracts, checked at registration
sites (calls to ``counter`` / ``gauge`` / ``histogram`` on a receiver
whose dotted name mentions ``registry``):

* **Literal names.**  The metric name argument must be a plain string
  literal -- never an f-string, concatenation, or variable -- matching
  the exposition grammar and carrying the repo prefix (``repro_`` by
  default), so ``grep`` finds every series and the registry's conflict
  detection actually fires on collisions.
* **One registration site per name.**  Each literal name may be
  registered from exactly one call site project-wide.  Get-or-create
  semantics make double registration *work* at runtime, which is
  exactly why it needs a static check: two sites drift apart (one
  edits the help text or buckets) and the second silently loses.
* **Bounded label cardinality.**  ``labelnames`` must be a literal
  tuple/list of at most ``max_label_names`` literal strings, and
  ``.labels(...)`` call sites anywhere in scope must not build label
  values inline from f-strings or string concatenation -- label values
  must come from bounded categorical sets (status names, phase modes),
  not identifiers.

Scope is the whole ``repro`` tree; the runtime cap
(:data:`repro.telemetry.metrics.MAX_LABEL_CARDINALITY`) remains the
backstop for dynamic values the static pass cannot see.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.devtools.analyzer.core import Finding, Project, Rule, register

#: Registry factory methods that create (or get) an instrument.
REGISTRATION_METHODS = {"counter", "gauge", "histogram"}

#: Prometheus metric-name grammar (mirrors the runtime check).
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


@register
class TelemetryHygieneRule(Rule):
    name = "telemetry-hygiene"
    description = (
        "metric names are literal, prefixed, registered from one site, "
        "with bounded literal label sets and no inline-built label values"
    )
    default_severity = "error"
    default_options = {
        "scope": ["repro"],
        #: Required metric-name prefix ("" disables the check).
        "prefix": "repro_",
        #: Maximum number of label names per instrument.
        "max_label_names": 4,
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        prefix = str(self.options["prefix"])
        max_labels = int(self.options["max_label_names"])
        #: literal name -> (display path, line) of its first registration.
        seen: Dict[str, Tuple[str, int]] = {}
        for mod in project.in_package(*scope):
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr == "labels":
                    yield from self._check_labels_call(project, mod, node)
                    continue
                if func.attr not in REGISTRATION_METHODS:
                    continue
                receiver = _receiver_chain(func.value)
                if receiver is None or "registry" not in receiver.lower():
                    continue
                yield from self._check_registration(
                    project, mod, node, prefix, max_labels, seen
                )

    # ------------------------------------------------------------------
    def _check_registration(
        self,
        project: Project,
        mod,
        node: ast.Call,
        prefix: str,
        max_labels: int,
        seen: Dict[str, Tuple[str, int]],
    ) -> Iterator[Finding]:
        method = node.func.attr  # type: ignore[union-attr]
        name_node = _argument(node, 0, "name")
        if name_node is None:
            yield self.finding(
                project, mod, node,
                f"registry.{method}(...) without a metric name",
                symbol=f"{method}:missing-name",
            )
            return
        literal = _literal_str(name_node)
        if literal is None:
            how = (
                "an f-string"
                if isinstance(name_node, ast.JoinedStr)
                else "a computed expression"
            )
            yield self.finding(
                project, mod, node,
                f"metric name passed to registry.{method}(...) is {how}; "
                f"names must be plain string literals so the series set "
                f"is static and greppable",
                symbol=f"{method}:dynamic-name",
            )
            return
        if not _NAME_RE.match(literal):
            yield self.finding(
                project, mod, node,
                f"metric name {literal!r} violates the exposition grammar "
                f"[a-zA-Z_:][a-zA-Z0-9_:]*",
                symbol=literal,
            )
        elif prefix and not literal.startswith(prefix):
            yield self.finding(
                project, mod, node,
                f"metric name {literal!r} lacks the {prefix!r} prefix "
                f"every exported series carries",
                symbol=literal,
            )
        first = seen.get(literal)
        if first is None:
            seen[literal] = (project.display_path(mod.path), node.lineno)
        else:
            yield self.finding(
                project, mod, node,
                f"metric {literal!r} is also registered at "
                f"{first[0]}:{first[1]}; get-or-create hides the "
                f"duplicate at runtime but the two sites will drift -- "
                f"register once and share the instrument",
                symbol=f"{literal}:duplicate",
            )
        yield from self._check_labelnames(project, mod, node, literal, max_labels)

    def _check_labelnames(
        self, project: Project, mod, node: ast.Call, name: str, max_labels: int
    ) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg != "labelnames":
                continue
            value = kw.value
            if not isinstance(value, (ast.Tuple, ast.List)):
                yield self.finding(
                    project, mod, node,
                    f"labelnames of {name!r} must be a literal tuple/list "
                    f"of strings (got a computed expression)",
                    symbol=f"{name}:labelnames",
                )
                return
            labels: List[str] = []
            for elt in value.elts:
                literal = _literal_str(elt)
                if literal is None:
                    yield self.finding(
                        project, mod, node,
                        f"labelnames of {name!r} contains a non-literal "
                        f"entry",
                        symbol=f"{name}:labelnames",
                    )
                    return
                labels.append(literal)
            if len(labels) > max_labels:
                yield self.finding(
                    project, mod, node,
                    f"{name!r} declares {len(labels)} label names "
                    f"(cap {max_labels}): cardinality multiplies per "
                    f"label -- drop dimensions or aggregate",
                    symbol=f"{name}:labelnames",
                )

    def _check_labels_call(
        self, project: Project, mod, node: ast.Call
    ) -> Iterator[Finding]:
        """``.labels(...)`` with an inline-built value: the static face
        of an unbounded-cardinality bug (one series per formatted
        string)."""
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.JoinedStr) or (
                isinstance(arg, ast.BinOp) and isinstance(arg.op, ast.Add)
            ):
                yield self.finding(
                    project, mod, node,
                    "label value built inline (f-string/concatenation): "
                    "label values must come from a bounded categorical "
                    "set, not per-item identifiers",
                    symbol="labels:inline-value",
                )
                return


def _argument(node: ast.Call, index: int, keyword: str) -> Optional[ast.AST]:
    """Positional-or-keyword argument of a call, or ``None``."""
    if len(node.args) > index:
        return node.args[index]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def _literal_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _receiver_chain(node: ast.AST) -> Optional[str]:
    """Dotted receiver of an attribute access; ``None`` if computed."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
