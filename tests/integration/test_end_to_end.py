"""Cross-accelerator integration tests on registry datasets.

These exercise the full pipeline (dataset synthesis -> preprocessing ->
simulation -> result mapping) and assert the *relative* behaviours the
paper reports, at scales small enough for CI.
"""

import numpy as np
import pytest

from repro import (
    GCNModel,
    HyMMAccelerator,
    HyMMConfig,
    OPAccelerator,
    RWPAccelerator,
    load_dataset,
    reference_inference,
)
from repro.baselines import CWPAccelerator


@pytest.fixture(scope="module")
def cora_model():
    return GCNModel(load_dataset("cora", scale=0.1, seed=1), n_layers=1, seed=2)


@pytest.fixture(scope="module")
def ap_model():
    # Amazon-Photo at 10% with shortened features: aggregation dominates
    # (as at paper scale, where N >> feature length effects).
    return GCNModel(
        load_dataset("amazon-photo", scale=0.1, seed=1, feature_length=128),
        n_layers=1,
        seed=2,
    )


@pytest.fixture(scope="module")
def ap_runs(ap_model):
    """AP runs under buffer pressure.

    At the reduced test scale the whole working set fits the paper's
    256 KB DMB and every dataflow is equally happy; shrinking the
    buffer to 16 KB recreates the paper's working-set-to-buffer ratio
    so the locality effects the shape tests assert become visible.
    """
    small = 32 * 1024
    return {
        "rwp": RWPAccelerator(
            HyMMConfig(dmb_bytes=small, unified_buffer=False)
        ).run_inference(ap_model),
        "op": OPAccelerator(
            HyMMConfig(dmb_bytes=small, unified_buffer=False)
        ).run_inference(ap_model),
        "hymm": HyMMAccelerator(HyMMConfig(dmb_bytes=small)).run_inference(ap_model),
    }


class TestFunctionalEquivalence:
    @pytest.mark.parametrize(
        "cls", [RWPAccelerator, OPAccelerator, CWPAccelerator, HyMMAccelerator]
    )
    def test_every_dataflow_matches_reference(self, cls, cora_model):
        ref = reference_inference(cora_model.dataset, cora_model.weight_list)
        result = cls().run_inference(cora_model)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_all_dataflows_agree_with_each_other(self, ap_runs):
        base = ap_runs["rwp"].outputs[-1]
        for kind in ("op", "hymm"):
            np.testing.assert_allclose(
                ap_runs[kind].outputs[-1], base, rtol=1e-2, atol=1e-3
            )

    def test_two_layer_inference_all_dataflows(self):
        ds = load_dataset("cora", scale=0.06, seed=3)
        model = GCNModel(ds, n_layers=2, seed=4)
        ref = reference_inference(ds, model.weight_list)
        for cls in (RWPAccelerator, OPAccelerator, HyMMAccelerator):
            result = cls().run_inference(model)
            np.testing.assert_allclose(
                result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3
            )


class TestPaperShapes:
    """The qualitative results the paper's evaluation section claims."""

    def test_hymm_fastest_aggregation(self, ap_runs):
        agg = {
            k: r.phase_cycles["layer0.aggregation"] for k, r in ap_runs.items()
        }
        assert agg["hymm"] < agg["rwp"]
        assert agg["hymm"] < agg["op"]

    def test_rwp_beats_op_overall(self, ap_runs):
        assert ap_runs["rwp"].stats.cycles < ap_runs["op"].stats.cycles

    def test_hymm_lowest_dram_traffic(self, ap_runs):
        dram = {k: r.stats.dram_total_bytes() for k, r in ap_runs.items()}
        assert dram["hymm"] == min(dram.values())

    def test_hymm_large_dram_reduction_vs_op(self, ap_runs):
        """Paper: 91% reduction for AP; at reduced scale we still expect
        the overwhelming majority of OP traffic to disappear."""
        reduction = 1 - ap_runs["hymm"].stats.dram_total_bytes() / ap_runs[
            "op"
        ].stats.dram_total_bytes()
        assert reduction > 0.5

    def test_hymm_highest_hit_rate(self, ap_runs):
        hits = {k: r.stats.hit_rate() for k, r in ap_runs.items()}
        assert hits["hymm"] == max(hits.values())

    def test_op_lowest_alu_utilization(self, ap_runs):
        utils = {k: r.stats.alu_utilization() for k, r in ap_runs.items()}
        assert utils["op"] == min(utils.values())

    def test_accumulator_shrinks_partial_footprint(self, ap_model):
        """Fig. 10: the near-DMB accumulator collapses the partial pool
        from one-entry-per-nonzero to one-line-per-output-row."""
        deferred = OPAccelerator(merge_mode="deferred").run_inference(ap_model)
        hymm = HyMMAccelerator().run_inference(ap_model)
        assert hymm.stats.partial_peak_bytes < 0.5 * deferred.stats.partial_peak_bytes


class TestAblations:
    def test_no_accumulator_hurts_hymm(self, ap_model):
        on = HyMMAccelerator(HyMMConfig()).run_inference(ap_model)
        off = HyMMAccelerator(
            HyMMConfig(near_memory_accumulator=False)
        ).run_inference(ap_model)
        assert off.stats.cycles >= on.stats.cycles

    def test_forwarding_never_hurts(self, cora_model):
        on = HyMMAccelerator(HyMMConfig()).run_inference(cora_model)
        off = HyMMAccelerator(HyMMConfig(forwarding=False)).run_inference(cora_model)
        assert on.stats.lsq_forwards > 0
        assert off.stats.lsq_forwards == 0

    def test_results_identical_across_ablations(self, cora_model):
        ref = HyMMAccelerator(HyMMConfig()).run_inference(cora_model).outputs[-1]
        for overrides in (
            {"near_memory_accumulator": False},
            {"unified_buffer": False},
            {"op_first": False},
            {"lru": False},
        ):
            out = (
                HyMMAccelerator(HyMMConfig(**overrides))
                .run_inference(cora_model)
                .outputs[-1]
            )
            np.testing.assert_allclose(out, ref, rtol=1e-2, atol=1e-3)
