"""Synthetic generators: determinism, structure, and Table II fidelity."""

import numpy as np
import pytest

from repro.graphs.synthetic import (
    DEFAULT_ALPHA,
    chung_lu_weights,
    power_law_graph,
    sparse_feature_matrix,
)
from repro.sparse.stats import edge_share_of_top_fraction


class TestWeights:
    def test_normalised(self):
        assert chung_lu_weights(100).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = chung_lu_weights(50)
        assert np.all(np.diff(w) < 0)

    def test_alpha_zero_uniform(self):
        w = chung_lu_weights(10, alpha=0.0)
        np.testing.assert_allclose(w, 0.1)

    def test_larger_alpha_more_skew(self):
        w_lo = chung_lu_weights(100, alpha=0.5)
        w_hi = chung_lu_weights(100, alpha=1.2)
        assert w_hi[0] > w_lo[0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            chung_lu_weights(0)
        with pytest.raises(ValueError):
            chung_lu_weights(10, alpha=-1)


class TestPowerLawGraph:
    def test_exact_edge_count(self):
        g = power_law_graph(100, 400, seed=0)
        assert g.nnz == 400

    def test_deterministic(self):
        a = power_law_graph(80, 320, seed=5)
        b = power_law_graph(80, 320, seed=5)
        assert a.allclose(b)

    def test_different_seeds_differ(self):
        a = power_law_graph(80, 320, seed=5)
        b = power_law_graph(80, 320, seed=6)
        assert not a.allclose(b)

    def test_symmetric(self):
        g = power_law_graph(60, 240, seed=1)
        assert g.allclose(g.transpose())

    def test_no_self_loops(self):
        g = power_law_graph(60, 240, seed=1)
        assert not np.any(g.rows == g.cols)

    def test_binary_values(self):
        g = power_law_graph(60, 240, seed=1)
        assert np.all(g.values == 1.0)

    def test_directed_variant(self):
        g = power_law_graph(60, 240, seed=1, symmetric=False)
        assert g.nnz == 240

    def test_power_law_concentration(self):
        """The Fig. 2 property: top 20% of nodes own well over half the
        edges at the default exponent."""
        g = power_law_graph(500, 5000, seed=2, alpha=DEFAULT_ALPHA)
        share = edge_share_of_top_fraction(g.row_degrees(), 0.2)
        assert share > 0.6

    def test_zero_edges(self):
        g = power_law_graph(10, 0, seed=0)
        assert g.nnz == 0

    def test_too_many_edges_rejected(self):
        with pytest.raises(ValueError, match="simple directed"):
            power_law_graph(4, 100, seed=0)

    def test_negative_edges_rejected(self):
        with pytest.raises(ValueError):
            power_law_graph(4, -2, seed=0)

    def test_dense_small_graph_achievable(self):
        # Nearly complete graph still terminates.
        g = power_law_graph(6, 6 * 5, seed=0)
        assert g.nnz == 30


class TestFeatureMatrix:
    def test_target_density(self):
        f = sparse_feature_matrix(200, 100, density=0.1, seed=0)
        assert f.nnz == 2000

    def test_deterministic(self):
        a = sparse_feature_matrix(50, 40, 0.2, seed=3)
        b = sparse_feature_matrix(50, 40, 0.2, seed=3)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.values, b.values)

    def test_fully_dense(self):
        f = sparse_feature_matrix(10, 8, density=1.0, seed=0)
        assert f.nnz == 80

    def test_empty(self):
        f = sparse_feature_matrix(10, 8, density=0.0, seed=0)
        assert f.nnz == 0

    def test_values_nonzero(self):
        f = sparse_feature_matrix(30, 30, density=0.3, seed=1)
        assert np.all(f.values >= 0.1)

    def test_shape(self):
        f = sparse_feature_matrix(12, 34, density=0.5, seed=0)
        assert f.shape == (12, 34)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            sparse_feature_matrix(10, 10, density=1.5, seed=0)
