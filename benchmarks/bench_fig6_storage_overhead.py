"""Fig. 6: storage overhead of the region-tiled adjacency matrix.

Paper: 10.2% for Cora; the overhead shrinks as graphs grow because the
extra per-tile pointer arrays amortise over more non-zeros.
"""

from repro.bench import figures
from repro.graphs.registry import get_spec


def test_fig6_storage_overhead(benchmark, emit):
    result = benchmark.pedantic(figures.fig6_storage_overhead, rounds=1, iterations=1)
    emit("fig6_storage_overhead", result["text"])
    overhead = result["overhead_pct"]
    # Tiling always costs something, but never an unreasonable amount.
    for abbr, pct in overhead.items():
        assert 0 < pct < 40, f"{abbr}: overhead {pct:.1f}%"
    # Cora (the smallest, sparsest graph) pays the largest overhead --
    # the paper's trend.
    assert overhead["CR"] == max(overhead.values())
    # Dense graphs amortise the pointers to a few percent.
    assert overhead["AP"] < 10
