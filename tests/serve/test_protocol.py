"""Wire protocol: encode/decode, request parsing, path routing."""

import json

import pytest

from repro.serve.protocol import (
    OPS,
    ProtocolError,
    Request,
    decode,
    encode,
    error_payload,
    parse_request,
)


class TestEncodeDecode:
    def test_round_trip(self):
        payload = {"op": "submit", "spec": {"dataset": "cora"}, "wait": True}
        assert decode(encode(payload)) == payload

    def test_encode_is_byte_deterministic(self):
        a = encode({"b": 1, "a": {"y": 2, "x": 3}})
        b = encode({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b
        assert a.endswith(b"\n")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode(b"not json\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode(b"[1, 2]\n")


class TestParseRequest:
    def test_submit_requires_spec(self):
        with pytest.raises(ProtocolError, match="spec"):
            parse_request({"op": "submit"})

    def test_status_requires_job_id(self):
        with pytest.raises(ProtocolError, match="job_id"):
            parse_request({"op": "status"})

    def test_unknown_op_lists_the_vocabulary(self):
        with pytest.raises(ProtocolError) as err:
            parse_request({"op": "frobnicate"})
        for op in OPS:
            assert op in str(err.value)

    def test_missing_op(self):
        with pytest.raises(ProtocolError, match="op"):
            parse_request({"spec": {}})

    def test_defaults(self):
        req = parse_request({"op": "submit", "spec": {"dataset": "cora"}})
        assert req == Request(
            op="submit", spec={"dataset": "cora"}, wait=True,
            include_result=False, follow=False,
        )

    def test_flags(self):
        req = parse_request(
            {
                "op": "submit", "spec": {}, "wait": False,
                "include_result": True,
            }
        )
        assert not req.wait
        assert req.include_result


class TestPathForm:
    def test_status_path_carries_job_id(self):
        req = parse_request({"path": "/status/abc123"})
        assert req.op == "status"
        assert req.job_id == "abc123"

    def test_healthz_path(self):
        assert parse_request({"path": "/healthz"}).op == "healthz"

    def test_metrics_path(self):
        assert parse_request({"path": "/metrics"}).op == "metrics"

    def test_slash_prefixed_op_accepted(self):
        assert parse_request({"op": "/healthz"}).op == "healthz"

    def test_unroutable_path(self):
        with pytest.raises(ProtocolError, match="unroutable"):
            parse_request({"path": "/submit/extra"})

    def test_empty_path(self):
        with pytest.raises(ProtocolError, match="empty"):
            parse_request({"path": "///"})

    def test_non_string_path(self):
        with pytest.raises(ProtocolError, match="string"):
            parse_request({"path": 7})


class TestErrorPayload:
    def test_shape(self):
        payload = error_payload("boom", job_id="j1")
        assert payload == {"ok": False, "error": "boom", "job_id": "j1"}
        assert json.loads(encode(payload))["ok"] is False
