"""Baseline accelerators: correctness, defaults, and relative behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    CWPAccelerator,
    GCoDAccelerator,
    OPAccelerator,
    RWPAccelerator,
    TiledOPAccelerator,
)
from repro.gcn import reference_inference
from repro.hymm import HyMMConfig


class TestCorrectness:
    @pytest.mark.parametrize(
        "cls", [RWPAccelerator, OPAccelerator, CWPAccelerator, GCoDAccelerator]
    )
    def test_matches_reference(self, cls, tiny_model, tiny_dataset):
        result = cls().run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    @pytest.mark.parametrize("mode", ["pe", "dmb", "deferred"])
    def test_op_all_merge_modes(self, mode, tiny_model, tiny_dataset):
        result = OPAccelerator(merge_mode=mode).run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_cwp_tiny_pool_still_correct(self, tiny_model, tiny_dataset):
        result = CWPAccelerator(local_accumulator_rows=2).run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)


class TestDefaults:
    @pytest.mark.parametrize("cls", [RWPAccelerator, OPAccelerator, CWPAccelerator])
    def test_split_buffer_by_default(self, cls):
        assert cls().config.unified_buffer is False

    def test_explicit_config_respected(self):
        acc = RWPAccelerator(HyMMConfig())
        assert acc.config.unified_buffer is True

    def test_names(self):
        assert RWPAccelerator().name == "rwp"
        assert OPAccelerator().name == "op"
        assert OPAccelerator(merge_mode="deferred").name == "op-deferred"
        assert CWPAccelerator().name == "cwp"

    def test_cwp_pool_size_validated(self):
        with pytest.raises(ValueError):
            CWPAccelerator(local_accumulator_rows=0)

    def test_baselines_report_no_sort_cost(self, tiny_model):
        result = RWPAccelerator().run_inference(tiny_model)
        assert result.sort_ms == 0.0


class TestGCoD:
    def test_two_layers(self, tiny_dataset):
        from repro.gcn import GCNModel

        model = GCNModel(tiny_dataset, n_layers=2, seed=23)
        result = GCoDAccelerator().run_inference(model)
        ref = reference_inference(tiny_dataset, model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_name_and_defaults(self):
        acc = GCoDAccelerator()
        assert acc.name == "gcod"
        assert acc.config.unified_buffer is False

    def test_partitioning_cost_reported(self, tiny_model):
        result = GCoDAccelerator().run_inference(tiny_model)
        assert result.sort_ms > 0

    def test_outputs_in_original_order(self, tiny_model, tiny_dataset):
        result = GCoDAccelerator().run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        row_errors = np.abs(result.outputs[-1] - ref[-1]).max(axis=1)
        assert (row_errors < 1e-2).all()

    def test_beats_naive_op_but_not_hymm_on_traffic(self, tiny_model):
        """Partitioning helps the dense cluster, but staying OP in the
        sparse cluster keeps G-CoD behind HyMM."""
        from repro.hymm import HyMMAccelerator

        gcod = GCoDAccelerator().run_inference(tiny_model)
        op = OPAccelerator().run_inference(tiny_model)
        hymm = HyMMAccelerator().run_inference(tiny_model)
        assert gcod.stats.cycles <= op.stats.cycles
        assert hymm.stats.dram_total_bytes() <= gcod.stats.dram_total_bytes() * 1.05


class TestTiledOP:
    def test_matches_reference(self, tiny_model, tiny_dataset):
        result = TiledOPAccelerator().run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_tiny_bands_still_correct(self, tiny_model, tiny_dataset):
        result = TiledOPAccelerator(band_rows=3).run_inference(tiny_model)
        ref = reference_inference(tiny_dataset, tiny_model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_two_layers(self, tiny_dataset):
        from repro.gcn import GCNModel

        model = GCNModel(tiny_dataset, n_layers=2, seed=13)
        result = TiledOPAccelerator().run_inference(model)
        ref = reference_inference(tiny_dataset, model.weight_list)
        np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)

    def test_band_rows_auto_sized_to_half_buffer(self):
        acc = TiledOPAccelerator(HyMMConfig(unified_buffer=False))
        # 4096 lines -> 2048 output half -> 90% usable.
        assert acc.band_rows(16) == 1843

    def test_band_rows_explicit(self):
        assert TiledOPAccelerator(band_rows=100).band_rows(16) == 100

    def test_band_rows_validated(self):
        with pytest.raises(ValueError):
            TiledOPAccelerator(band_rows=0)

    def test_name(self):
        assert TiledOPAccelerator().name == "op-tiled"

    def test_removes_partial_thrash(self, tiny_model):
        """Within-band accumulation means partial lines never spill."""
        tiled = TiledOPAccelerator().run_inference(tiny_model)
        assert tiled.stats.partial_spill_bytes == 0

    def test_more_bands_more_stream_traffic(self, tiny_model):
        few = TiledOPAccelerator(band_rows=48).run_inference(tiny_model)
        many = TiledOPAccelerator(band_rows=4).run_inference(tiny_model)
        assert many.stats.dram_total_bytes() > few.stats.dram_total_bytes()


class TestBehaviour:
    def test_op_produces_partials(self, tiny_model):
        result = OPAccelerator().run_inference(tiny_model)
        assert result.stats.partials_produced > 0

    def test_rwp_produces_no_partials(self, tiny_model):
        result = RWPAccelerator().run_inference(tiny_model)
        assert result.stats.partials_produced == 0

    def test_op_deferred_tracks_peak(self, tiny_model):
        result = OPAccelerator(merge_mode="deferred").run_inference(tiny_model)
        assert result.stats.partial_peak_bytes > 0

    def test_cwp_pool_size_changes_traffic(self, tiny_model):
        tiny = CWPAccelerator(local_accumulator_rows=1).run_inference(tiny_model)
        big = CWPAccelerator(local_accumulator_rows=4096).run_inference(tiny_model)
        assert big.stats.partials_produced <= tiny.stats.partials_produced

    def test_deterministic(self, tiny_model):
        a = OPAccelerator().run_inference(tiny_model)
        b = OPAccelerator().run_inference(tiny_model)
        assert a.stats.cycles == b.stats.cycles
