"""GCN substrate: weights, layers, model, and the NumPy reference."""

import numpy as np
import pytest

from repro.gcn import (
    GCNLayer,
    GCNModel,
    aggregation,
    combination,
    glorot_weights,
    layer_dims,
    reference_inference,
    relu,
)
from repro.graphs.preprocess import gcn_normalize


class TestWeights:
    def test_shape(self):
        assert glorot_weights(10, 4, seed=0).shape == (10, 4)

    def test_deterministic(self):
        np.testing.assert_array_equal(
            glorot_weights(8, 8, seed=1), glorot_weights(8, 8, seed=1)
        )

    def test_seed_changes_values(self):
        assert not np.array_equal(
            glorot_weights(8, 8, seed=1), glorot_weights(8, 8, seed=2)
        )

    def test_glorot_bound(self):
        w = glorot_weights(100, 50, seed=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)

    def test_dtype_float32(self):
        assert glorot_weights(4, 4).dtype == np.float32

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            glorot_weights(0, 4)


class TestLayerDims:
    def test_two_layer_default(self):
        assert layer_dims(1433, 16, 2) == [(1433, 16), (16, 16)]

    def test_custom_classes(self):
        assert layer_dims(100, 16, 2, n_classes=7) == [(100, 16), (16, 7)]

    def test_single_layer(self):
        assert layer_dims(100, 16, 1) == [(100, 16)]

    def test_three_layer(self):
        assert layer_dims(100, 32, 3, n_classes=5) == [
            (100, 32),
            (32, 32),
            (32, 5),
        ]

    def test_invalid_layers(self):
        with pytest.raises(ValueError):
            layer_dims(100, 16, 0)


class TestRelu:
    def test_clamps_negative(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )


class TestPhases:
    def test_combination_matches_dense(self, tiny_dataset, rng):
        w = glorot_weights(tiny_dataset.feature_length, 16, seed=0)
        expected = tiny_dataset.features.to_dense() @ w
        result = combination(tiny_dataset.features, w)
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-5)

    def test_combination_dim_check(self, tiny_dataset):
        with pytest.raises(ValueError):
            combination(tiny_dataset.features, np.ones((5, 16), dtype=np.float32))

    def test_aggregation_matches_dense(self, tiny_dataset, rng):
        norm = gcn_normalize(tiny_dataset.adjacency)
        xw = rng.random((tiny_dataset.n_nodes, 16), dtype=np.float32)
        expected = norm.to_dense().astype(np.float64) @ xw
        np.testing.assert_allclose(
            aggregation(norm, xw), expected, rtol=1e-4, atol=1e-5
        )

    def test_aggregation_dim_check(self, tiny_dataset, rng):
        norm = gcn_normalize(tiny_dataset.adjacency)
        with pytest.raises(ValueError):
            aggregation(norm, rng.random((5, 16), dtype=np.float32))


class TestLayer:
    def test_forward_sparse_input(self, tiny_dataset):
        norm = gcn_normalize(tiny_dataset.adjacency)
        w = glorot_weights(tiny_dataset.feature_length, 16, seed=0)
        layer = GCNLayer(w, activation=relu)
        out = layer.forward(norm, tiny_dataset.features)
        assert out.shape == (tiny_dataset.n_nodes, 16)
        assert np.all(out >= 0)  # post-ReLU

    def test_forward_dense_input(self, tiny_dataset, rng):
        norm = gcn_normalize(tiny_dataset.adjacency)
        h = rng.random((tiny_dataset.n_nodes, 16), dtype=np.float32)
        layer = GCNLayer(glorot_weights(16, 16, seed=1))
        out = layer.forward(norm, h)
        assert out.shape == (tiny_dataset.n_nodes, 16)

    def test_fan_properties(self):
        layer = GCNLayer(glorot_weights(12, 5))
        assert layer.fan_in == 12 and layer.fan_out == 5


class TestModel:
    def test_forward_matches_reference(self, tiny_dataset):
        model = GCNModel(tiny_dataset, n_layers=2, seed=3)
        outs = model.forward()
        ref = reference_inference(tiny_dataset, model.weight_list)
        for a, b in zip(outs, ref):
            np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-4)

    def test_layer_count(self, tiny_dataset):
        assert GCNModel(tiny_dataset, n_layers=3).n_layers == 3

    def test_relu_between_layers_only(self, tiny_dataset):
        model = GCNModel(tiny_dataset, n_layers=2, seed=0)
        assert model.layers[0].activation is relu
        assert model.layers[1].activation is None

    def test_invalid_layers(self, tiny_dataset):
        with pytest.raises(ValueError):
            GCNModel(tiny_dataset, n_layers=0)

    def test_repr(self, tiny_dataset):
        assert "tiny" in repr(GCNModel(tiny_dataset))

    def test_reference_final_layer_unclamped(self, tiny_dataset):
        model = GCNModel(tiny_dataset, n_layers=2, seed=3)
        ref = reference_inference(tiny_dataset, model.weight_list)
        # Logit layer may legitimately contain negatives.
        assert ref[-1].min() < 0 or ref[-1].max() > 0
