"""Command-line interface for the experiment harness.

Usage::

    python -m repro.bench all                 # every table and figure
    python -m repro.bench fig7 fig11          # specific experiments
    python -m repro.bench fig7 --datasets cora amazon-photo
    python -m repro.bench all --jobs 4        # parallel simulation
    python -m repro.bench all --cache-dir /tmp/hymm-cache
    python -m repro.bench table2 --full-scale
    python -m repro.bench list                # what's available

Each experiment prints its table and, with ``--output DIR``, also
writes ``<experiment>.txt`` and machine-readable ``<experiment>.json``
files.

Simulation execution goes through :mod:`repro.runtime`: the
simulations the requested experiments need are collected up front and
fanned out over ``--jobs`` worker processes, with results persisted in
an on-disk cache (``~/.cache/hymm-repro`` or ``--cache-dir``) so a
re-run completes without re-simulating.  ``--no-cache`` disables the
disk cache for the invocation.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.bench import figures, tables
from repro.bench.workloads import BENCH_DATASETS

_FIG_SUITE_KINDS = ("op", "rwp", "hymm")


def _table(fn: Callable) -> Callable[[Optional[List[str]]], Dict[str, object]]:
    def run(datasets: Optional[List[str]]) -> Dict[str, object]:
        out = fn()
        return {"text": out} if isinstance(out, str) else out

    return run


def _figure(fn: Callable) -> Callable[[Optional[List[str]]], Dict[str, object]]:
    def run(datasets: Optional[List[str]]) -> Dict[str, object]:
        kwargs = {"datasets": datasets} if datasets else {}
        return fn(**kwargs)

    return run


#: Experiment name -> callable(datasets) -> {"text": ..., **data}.
EXPERIMENTS: Dict[str, Callable] = {
    "table1": _table(tables.table1),
    "table2": _table(tables.table2),
    "table3": _table(tables.table3),
    "fig2": _figure(figures.fig2_degree_distribution),
    "fig6": _figure(figures.fig6_storage_overhead),
    "fig7": _figure(figures.fig7_speedup),
    "fig8": _figure(figures.fig8_alu_utilization),
    "fig9": _figure(figures.fig9_hit_rate),
    "fig10": _figure(figures.fig10_partial_outputs),
    "fig11": _figure(figures.fig11_dram_breakdown),
    "phases": _figure(figures.phases_breakdown),
}

#: Run order for "all" (cheap first; Figs. 7-11 share memoised runs).
ALL_ORDER = (
    "table1", "table3", "table2", "fig2", "fig6",
    "fig7", "fig8", "fig9", "fig10", "fig11", "phases",
)

#: Accelerator kinds each experiment simulates (None = no simulation).
#: Drives the parallel prewarm: the union over the requested
#: experiments x datasets is the job list handed to the runtime.
EXPERIMENT_KINDS: Dict[str, tuple] = {
    "table1": (),
    "table2": (),
    "table3": (),
    "fig2": (),
    "fig6": (),
    "fig7": _FIG_SUITE_KINDS,
    "fig8": _FIG_SUITE_KINDS,
    "fig9": _FIG_SUITE_KINDS,
    "fig10": ("op-deferred", "hymm"),
    "fig11": _FIG_SUITE_KINDS,
    "phases": _FIG_SUITE_KINDS,
}


def collect_specs(names: Iterable[str], datasets: Iterable[str]) -> list:
    """Every simulation job the named experiments will request."""
    from repro.bench.runner import job_spec

    specs = []
    seen = set()
    for name in names:
        for kind in EXPERIMENT_KINDS.get(name, ()):
            for dataset in datasets:
                key = (dataset, kind)
                if key not in seen:
                    seen.add(key)
                    specs.append(job_spec(dataset, kind))
    return specs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the HyMM paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (e.g. fig7 table2), 'all', or 'list'",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        metavar="NAME",
        help=f"restrict figure experiments to these datasets "
             f"(default: all of {', '.join(BENCH_DATASETS)})",
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="run at paper scale (sets REPRO_FULL_SCALE=1; slow)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write each experiment's text to DIR/<name>.txt and "
             "its data to DIR/<name>.json",
    )
    parser.add_argument(
        "--jobs", "-j",
        type=int,
        default=int(os.environ.get("REPRO_JOBS", "1")),
        metavar="N",
        help="simulate on N worker processes (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent result-cache directory "
             "(default: $REPRO_CACHE_DIR or ~/.cache/hymm-repro)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the persistent result cache",
    )
    return parser


def _configure_runtime(args) -> None:
    from repro.bench.runner import configure_runtime

    if args.no_cache:
        configure_runtime(n_jobs=args.jobs, disk_cache=False)
        return
    try:
        configure_runtime(
            n_jobs=args.jobs, cache_dir=args.cache_dir, disk_cache=True
        )
    except OSError as exc:  # unwritable cache location: degrade, don't die
        print(f"[runtime] disk cache disabled ({exc})", file=sys.stderr)
        configure_runtime(n_jobs=args.jobs, disk_cache=False)


def _prewarm(names: List[str], datasets: Iterable[str], args, out_dir) -> None:
    """Simulate everything the experiments need, in parallel, up front."""
    from repro.bench.runner import run_sweep
    from repro.runtime.manifest import JobRecord

    specs = collect_specs(names, datasets)
    if not specs:
        return

    def progress(record: "JobRecord", n_finished: int, n_total: int) -> None:
        status = record.status
        if record.error:
            status += f" ({record.error})"
        print(
            f"[runtime] {n_finished}/{n_total} {record.label}: {status} "
            f"[{record.wall_seconds:.1f}s]",
            file=sys.stderr,
        )

    sweep = run_sweep(specs, n_jobs=args.jobs, progress=progress)
    manifest = sweep.manifest
    if manifest.total:
        print(f"[runtime] {manifest.summary()}", file=sys.stderr)
        for record in manifest.failures():
            print(
                f"[runtime] FAILED {record.label}: {record.error} "
                f"(will retry serially)",
                file=sys.stderr,
            )
        _persist_manifest(manifest, out_dir)


def _persist_manifest(manifest, out_dir: Optional[pathlib.Path]) -> None:
    from repro.bench.runner import runtime_settings

    payload = manifest.to_dict()
    targets = []
    if out_dir is not None:
        targets.append(out_dir / "run_manifest.json")
    disk = runtime_settings()["disk_cache"]
    if disk is not None:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        manifest_dir = disk.cache_dir / "manifests"
        manifest_dir.mkdir(parents=True, exist_ok=True)
        targets.append(manifest_dir / f"sweep-{stamp}.json")
    for path in targets:
        try:
            path.write_text(json.dumps(payload, indent=2) + "\n")
        except OSError:
            pass


def _write_outputs(name: str, out: Dict[str, object], out_dir: pathlib.Path) -> None:
    from repro.runtime import to_jsonable

    (out_dir / f"{name}.txt").write_text(out["text"] + "\n")
    data = {k: v for k, v in out.items() if k != "text"}
    payload = {"experiment": name, "data": to_jsonable(data)}
    (out_dir / f"{name}.json").write_text(json.dumps(payload, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if "list" in args.experiments:
        print("Available experiments:")
        for name in ALL_ORDER:
            print(f"  {name}")
        return 0

    if args.full_scale:
        os.environ["REPRO_FULL_SCALE"] = "1"

    names = list(ALL_ORDER) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_ORDER)}", file=sys.stderr)
        return 2

    out_dir = pathlib.Path(args.output) if args.output else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    _configure_runtime(args)
    datasets = args.datasets if args.datasets else BENCH_DATASETS
    _prewarm(names, datasets, args, out_dir)

    for name in names:
        out = EXPERIMENTS[name](args.datasets)
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{out['text']}")
        if out_dir:
            _write_outputs(name, out, out_dir)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
