"""Dataflow kernels: functional equivalence with the oracles + policy wiring."""

import numpy as np
import pytest

from repro.gcn import glorot_weights
from repro.graphs.partition import plan_regions
from repro.graphs.preprocess import degree_sort, gcn_normalize
from repro.graphs.synthetic import power_law_graph, sparse_feature_matrix
from repro.hymm import AddressMap, HyMMConfig, PEArray, SparseMatrixQueue
from repro.hymm.dmb import make_buffer
from repro.hymm.kernels import (
    AGGREGATION_PRIORITY,
    COMBINATION_PRIORITY,
    KernelContext,
    aggregation_hybrid,
    aggregation_op,
    aggregation_rwp,
    combination_dense,
    combination_op,
    combination_rwp,
)
from repro.sim import DRAM, SimStats
from repro.sim.engine import AccessExecuteEngine
from repro.sparse import coo_to_csc, coo_to_csr, spmm_coo


def make_ctx(config=None, layer=0):
    cfg = config if config is not None else HyMMConfig()
    stats = SimStats()
    dram = DRAM(cfg.dram, stats)
    buf = make_buffer(cfg, dram, stats)
    engine = AccessExecuteEngine(
        buf, dram, stats, lsq_depth=cfg.lsq_entries,
        forwarding=cfg.forwarding, smq_buffer_bytes=cfg.smq_bytes,
    )
    return KernelContext(cfg, engine, buf, AddressMap(cfg), PEArray(cfg.n_pes),
                         SparseMatrixQueue(), layer=layer)


@pytest.fixture
def norm_adj(small_graph):
    return gcn_normalize(small_graph)


@pytest.fixture
def features():
    return sparse_feature_matrix(64, 40, density=0.3, seed=11)


@pytest.fixture
def weights():
    return glorot_weights(40, 16, seed=2)


@pytest.fixture
def xw(rng):
    return rng.random((64, 16), dtype=np.float32)


class TestCombination:
    def test_rwp_matches_oracle(self, features, weights):
        ctx = make_ctx()
        result = combination_rwp(ctx, features, weights)
        expected = features.to_dense() @ weights
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_rwp_sets_combination_priority(self, features, weights):
        ctx = make_ctx()
        combination_rwp(ctx, features, weights)
        assert ctx.buffer.evict_priority == COMBINATION_PRIORITY

    def test_rwp_advances_time(self, features, weights):
        ctx = make_ctx()
        combination_rwp(ctx, features, weights)
        assert ctx.engine.drain() >= features.nnz  # one MAC per non-zero

    def test_op_matches_oracle_all_merge_modes(self, features, weights):
        expected = features.to_dense() @ weights
        for mode in ("pe", "dmb", "deferred"):
            ctx = make_ctx()
            result = combination_op(ctx, coo_to_csc(features.to_coo()), weights,
                                    merge_mode=mode)
            np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_op_bad_merge_mode(self, features, weights):
        ctx = make_ctx()
        with pytest.raises(ValueError, match="merge_mode"):
            combination_op(ctx, coo_to_csc(features.to_coo()), weights,
                           merge_mode="bogus")

    def test_dense_matches_matmul(self, rng):
        ctx = make_ctx(layer=1)
        h = rng.random((30, 16), dtype=np.float32)
        w = glorot_weights(16, 16, seed=4)
        result = combination_dense(ctx, h, w)
        np.testing.assert_allclose(result, h @ w, rtol=1e-3, atol=1e-4)

    def test_dense_charges_h_reads(self, rng):
        ctx = make_ctx(layer=1)
        h = rng.random((30, 16), dtype=np.float32)
        combination_dense(ctx, h, glorot_weights(16, 16, seed=4))
        assert ctx.engine.stats.dram_read_bytes["H"] > 0


class TestAggregationRWP:
    def test_matches_oracle(self, norm_adj, xw):
        ctx = make_ctx()
        result = aggregation_rwp(ctx, coo_to_csr(norm_adj), xw)
        expected = spmm_coo(norm_adj, xw)
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_sets_aggregation_priority(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_rwp(ctx, coo_to_csr(norm_adj), xw)
        assert ctx.buffer.evict_priority == AGGREGATION_PRIORITY

    def test_outputs_written_through(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_rwp(ctx, coo_to_csr(norm_adj), xw)
        assert ctx.engine.stats.dram_write_bytes["AXW"] == 64 * 64

    def test_row_offset(self, norm_adj, xw):
        ctx = make_ctx()
        sub = coo_to_csr(norm_adj.submatrix(32, 64, 0, 64))
        out = np.zeros((64, 16), dtype=np.float32)
        aggregation_rwp(ctx, sub, xw, out=out, row_offset=32)
        expected = spmm_coo(norm_adj, xw)
        np.testing.assert_allclose(out[32:], expected[32:], rtol=1e-3, atol=1e-4)
        assert not out[:32].any()


class TestAggregationOP:
    @pytest.mark.parametrize("mode", ["dmb", "pe", "deferred"])
    def test_matches_oracle(self, norm_adj, xw, mode):
        ctx = make_ctx()
        result = aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode=mode)
        expected = spmm_coo(norm_adj, xw)
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_dmb_mode_produces_partials(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="dmb")
        assert ctx.engine.stats.partials_produced == norm_adj.nnz

    def test_dmb_mode_pe_never_stalls_on_outputs(self, norm_adj, xw):
        """With the near-memory accumulator the PE array does exactly
        one MAC per non-zero -- no merge ALU ops."""
        ctx = make_ctx()
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="dmb")
        assert ctx.engine.stats.busy_cycles == norm_adj.nnz

    def test_pe_mode_costs_merge_cycles(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="pe")
        assert ctx.engine.stats.busy_cycles > norm_adj.nnz

    def test_deferred_mode_tracks_footprint(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="deferred")
        stats = ctx.engine.stats
        assert stats.partials_produced == norm_adj.nnz
        assert stats.partial_peak_bytes == norm_adj.nnz * 64  # fits on-chip here

    def test_deferred_spills_when_over_capacity(self, norm_adj, xw):
        cfg = HyMMConfig(dmb_bytes=64 * 16)  # 16 lines only
        ctx = make_ctx(cfg)
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="deferred")
        assert ctx.engine.stats.partial_spill_bytes > 0

    def test_finalize_false_keeps_partials_resident(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="dmb",
                       finalize=False)
        from repro.sim.buffer import CLASS_PARTIAL
        assert ctx.buffer.resident_lines(CLASS_PARTIAL) > 0

    def test_finalize_writes_outputs(self, norm_adj, xw):
        ctx = make_ctx()
        aggregation_op(ctx, coo_to_csc(norm_adj), xw, merge_mode="dmb")
        assert ctx.engine.stats.dram_write_bytes["AXW"] > 0


class TestHybrid:
    def _plan(self, graph, cfg):
        sort = degree_sort(graph)
        sorted_norm = gcn_normalize(graph).permute(sort.permutation, sort.permutation)
        plan = plan_regions(sorted_norm, 16, cfg.dmb_bytes,
                            cfg.threshold_fraction, cfg.resident_fraction)
        n = sorted_norm.shape[0]
        low = coo_to_csr(sorted_norm.submatrix(plan.threshold, n, 0, n))
        return sorted_norm, plan, low

    def test_matches_oracle(self, small_graph, xw):
        cfg = HyMMConfig()
        sorted_norm, plan, low = self._plan(small_graph, cfg)
        ctx = make_ctx(cfg)
        result = aggregation_hybrid(ctx, plan, low, xw)
        expected = spmm_coo(sorted_norm, xw)
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_rwp_first_order_matches_too(self, small_graph, xw):
        cfg = HyMMConfig(op_first=False)
        sorted_norm, plan, low = self._plan(small_graph, cfg)
        ctx = make_ctx(cfg)
        result = aggregation_hybrid(ctx, plan, low, xw)
        expected = spmm_coo(sorted_norm, xw)
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_no_accumulator_matches(self, small_graph, xw):
        cfg = HyMMConfig(near_memory_accumulator=False)
        sorted_norm, plan, low = self._plan(small_graph, cfg)
        ctx = make_ctx(cfg)
        result = aggregation_hybrid(ctx, plan, low, xw)
        expected = spmm_coo(sorted_norm, xw)
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)

    def test_multi_tile_region1(self, xw):
        """A tiny DMB forces region-1 banding; output must still match."""
        graph = power_law_graph(64, 512, seed=21)
        cfg = HyMMConfig(dmb_bytes=64 * 8)  # 8 lines -> 6 resident rows
        sorted_norm, plan, low = self._plan(graph, cfg)
        assert plan.n_region1_tiles > 1
        ctx = make_ctx(cfg)
        result = aggregation_hybrid(ctx, plan, low, xw)
        expected = spmm_coo(sorted_norm, xw)
        np.testing.assert_allclose(result, expected, rtol=1e-3, atol=1e-4)
