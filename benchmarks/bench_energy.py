"""Energy comparison (extension beyond the paper's area-only costing).

The paper's headline mechanism -- cutting off-chip accesses by up to
91% -- is first and foremost an *energy* win (a DRAM byte costs two
orders of magnitude more than a MAC).  This bench composes the Fig. 7
runs with the Horowitz-style energy model and reports per-dataflow
energy and its breakdown.
"""

from repro.area.energy import energy_of_run
from repro.bench import format_table
from repro.bench.runner import run_suite
from repro.bench.workloads import BENCH_DATASETS
from repro.graphs.registry import get_spec


def test_energy_comparison(benchmark, emit):
    def run_all():
        headers = ["dataset", "dataflow", "total uJ", "compute %", "sram %", "dram %"]
        rows = []
        ratios = {}
        for name in BENCH_DATASETS:
            runs = run_suite(name)
            abbr = get_spec(name).abbrev
            totals = {}
            for kind in ("op", "rwp", "hymm"):
                report = energy_of_run(runs[kind])
                totals[kind] = report.total_pj
                bd = report.breakdown()
                rows.append([
                    abbr, kind, report.total_uj,
                    100 * bd["compute"], 100 * bd["sram"], 100 * bd["dram"],
                ])
            ratios[abbr] = totals["op"] / totals["hymm"]
        text = format_table(headers, rows) + "\n\nHyMM energy advantage vs OP: " + \
            ", ".join(f"{k}={v:.2f}x" for k, v in ratios.items())
        return ratios, text

    ratios, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("energy_comparison", text)
    # HyMM must be the most energy-efficient dataflow everywhere the
    # traffic reduction is large (the dense graphs).
    for abbr in ("AP", "AC", "FR"):
        assert ratios[abbr] > 2.0, abbr
    for abbr, ratio in ratios.items():
        assert ratio > 1.0, abbr
