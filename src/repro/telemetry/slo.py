"""SLO evaluation over rolling metric windows.

Objectives are declared against instruments in a
:class:`~repro.telemetry.metrics.MetricsRegistry` -- a latency
objective names a histogram and a percentile ("hit-path p99 < 5 ms"),
an error-rate objective names a numerator and denominator counter
("failed / submitted < 1%").  The tracker snapshots the underlying
counters/bucket counts and evaluates each objective over the *delta*
across a rolling window, so a burst of old failures ages out instead
of poisoning the verdict forever.

Each evaluation publishes a per-objective **burn rate** gauge
(observed / target; 1.0 = exactly at budget) into the same registry,
and the aggregate verdict -- ``ok`` or ``degraded`` -- is what the
serve ``/healthz`` endpoint reports so a load balancer can shed a
degraded instance.

The clock is injectable (monotonic seconds) so window behaviour is
testable without sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    quantile_from_counts,
)

KIND_LATENCY = "latency"
KIND_ERROR_RATE = "error_rate"

VERDICT_OK = "ok"
VERDICT_DEGRADED = "degraded"


@dataclass(frozen=True)
class Objective:
    """One declared objective.

    ``latency``: histogram ``metric`` percentile ``percentile`` must
    stay below ``target`` (same unit the histogram observes, ms here).
    ``error_rate``: counter ``numerator`` / counter ``denominator``
    must stay below ``target`` (a ratio).
    """

    name: str
    kind: str
    target: float
    metric: str = ""
    percentile: float = 99.0
    numerator: str = ""
    denominator: str = ""
    window_s: float = 300.0

    def __post_init__(self) -> None:
        if self.kind not in (KIND_LATENCY, KIND_ERROR_RATE):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if self.target <= 0:
            raise ValueError(f"objective {self.name}: target must be > 0")
        if self.kind == KIND_LATENCY and not self.metric:
            raise ValueError(f"objective {self.name}: latency needs a metric")
        if self.kind == KIND_ERROR_RATE and not (
            self.numerator and self.denominator
        ):
            raise ValueError(
                f"objective {self.name}: error_rate needs numerator and "
                "denominator"
            )


@dataclass
class _Snapshot:
    t: float
    #: histogram name -> (bucket counts incl. overflow, count, max)
    hists: Dict[str, Tuple[Tuple[int, ...], int, float]] = field(
        default_factory=dict
    )
    #: counter name -> value
    counters: Dict[str, float] = field(default_factory=dict)


class SloTracker:
    """Evaluates objectives against a registry over rolling windows."""

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: List[Objective],
        clock: Optional[Callable[[], float]] = None,
        max_snapshots: int = 256,
    ) -> None:
        self.registry = registry
        self.objectives = list(objectives)
        self._clock = clock or time.monotonic
        self._snapshots: Deque[_Snapshot] = deque(maxlen=max_snapshots)
        self._burn = registry.gauge(
            "repro_slo_burn_rate",
            "Observed/target ratio per objective (1.0 = at budget)",
            labelnames=("objective",),
        )
        self._window = max(
            (o.window_s for o in self.objectives), default=300.0
        )

    # ------------------------------------------------------------------
    def _take_snapshot(self) -> _Snapshot:
        snap = _Snapshot(t=self._clock())
        names = set()
        for obj in self.objectives:
            if obj.kind == KIND_LATENCY:
                names.add(obj.metric)
            else:
                names.add(obj.numerator)
                names.add(obj.denominator)
        for name in names:
            metric = self.registry.get(name)
            if isinstance(metric, Histogram):
                counts, total, _, observed_max = metric.snapshot()
                snap.hists[name] = (counts, total, observed_max)
            elif isinstance(metric, (Counter, Gauge)):
                snap.counters[name] = metric.value
        return snap

    def _baseline(self, now: float, window_s: float) -> Optional[_Snapshot]:
        """Newest snapshot at or beyond ``window_s`` ago (so the delta
        spans at least the window), else the oldest one we have."""
        cutoff = now - window_s
        chosen: Optional[_Snapshot] = None
        for snap in self._snapshots:
            if snap.t <= cutoff:
                chosen = snap
            else:
                break
        if chosen is None and self._snapshots:
            chosen = self._snapshots[0]
        return chosen

    def _prune(self, now: float) -> None:
        # Keep one snapshot older than the widest window as the
        # baseline; drop anything staler than that.
        cutoff = now - self._window
        while len(self._snapshots) >= 2 and self._snapshots[1].t <= cutoff:
            self._snapshots.popleft()

    # ------------------------------------------------------------------
    def evaluate(self) -> Dict[str, Any]:
        """Evaluate every objective; returns the verdict document.

        Also records the current snapshot (so repeated evaluations
        build the rolling window) and updates the burn-rate gauges.
        """
        current = self._take_snapshot()
        results: List[Dict[str, Any]] = []
        degraded = False
        for obj in self.objectives:
            baseline = self._baseline(current.t, obj.window_s)
            observed, events = self._observe(obj, baseline, current)
            burn = observed / obj.target if obj.target else 0.0
            ok = burn <= 1.0
            degraded = degraded or (not ok and events > 0)
            self._burn.labels(obj.name).set(round(burn, 6))
            results.append(
                {
                    "name": obj.name,
                    "kind": obj.kind,
                    "target": obj.target,
                    "observed": round(observed, 6),
                    "burn_rate": round(burn, 6),
                    "window_s": obj.window_s,
                    "events": events,
                    "ok": ok or events == 0,
                }
            )
        self._snapshots.append(current)
        self._prune(current.t)
        return {
            "verdict": VERDICT_DEGRADED if degraded else VERDICT_OK,
            "objectives": results,
        }

    def _observe(
        self,
        obj: Objective,
        baseline: Optional[_Snapshot],
        current: _Snapshot,
    ) -> Tuple[float, int]:
        """(observed value, number of events in the window)."""
        if obj.kind == KIND_LATENCY:
            cur = current.hists.get(obj.metric)
            if cur is None:
                return 0.0, 0
            counts, total, observed_max = cur
            base = baseline.hists.get(obj.metric) if baseline else None
            if base is not None:
                counts = tuple(
                    c - b for c, b in zip(counts, base[0])
                )
                total = total - base[1]
            if total <= 0:
                return 0.0, 0
            metric = self.registry.get(obj.metric)
            assert isinstance(metric, Histogram)
            value = quantile_from_counts(
                counts,
                metric.bounds,
                obj.percentile / 100.0,
                total=total,
                observed_max=observed_max,
            )
            return value, total
        num = current.counters.get(obj.numerator, 0.0)
        den = current.counters.get(obj.denominator, 0.0)
        if baseline is not None:
            num -= baseline.counters.get(obj.numerator, 0.0)
            den -= baseline.counters.get(obj.denominator, 0.0)
        if den <= 0:
            return 0.0, 0
        return num / den, int(den)
