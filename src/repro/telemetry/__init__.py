"""repro.telemetry -- the wall-clock observability spine.

Four pieces, one contract:

* :mod:`~repro.telemetry.metrics` -- typed registry (counters, gauges,
  exponential-bucket histograms, labels), exact under threads,
  O(buckets) scrapes;
* :mod:`~repro.telemetry.prometheus` -- text exposition render +
  in-repo format validator (no client-library dependency);
* :mod:`~repro.telemetry.logs` -- NDJSON structured logging with
  contextvars-propagated correlation IDs that survive ``await``,
  ``to_thread``, and (via ``JobSpec.corr_id``) process pools;
* :mod:`~repro.telemetry.spans` -- host-time spans in the same
  Chrome-trace schema ``repro.obs`` validates, correlation-joined to
  simulated-time traces;
* :mod:`~repro.telemetry.slo` -- declared objectives evaluated over
  rolling windows, burn-rate gauges, ok/degraded verdicts.

The contract: with telemetry off (no handler configured, no span
recorder installed) results are byte-identical and the hit path pays
nothing measurable.  Simulated-time observability stays in
:mod:`repro.obs`; this package only ever talks about the host clock.
"""

from .logs import (
    bind_correlation,
    configure_logging,
    correlation_scope,
    current_correlation_id,
    get_logger,
    new_correlation_id,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    exponential_buckets,
    get_registry,
)
from .prometheus import ExpositionError, render_exposition, validate_exposition
from .slo import Objective, SloTracker
from .spans import SpanRecorder, active_recorder, install_recorder, instant, span

__all__ = [
    "Counter",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Objective",
    "SloTracker",
    "SpanRecorder",
    "active_recorder",
    "bind_correlation",
    "configure_logging",
    "correlation_scope",
    "current_correlation_id",
    "exponential_buckets",
    "get_logger",
    "get_registry",
    "install_recorder",
    "instant",
    "new_correlation_id",
    "render_exposition",
    "span",
    "validate_exposition",
]
