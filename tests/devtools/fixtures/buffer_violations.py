"""Fixture for the ``buffer-internals`` rule: known violations plus
legitimate public-API uses that must not be flagged."""


def violating_kernel(engine, buf):
    # Direct arena-field reads.
    slot = buf._slot_of.get(0x40)
    ready = buf._slot_ready[slot]
    # Arena-field write through a dotted receiver.
    engine.buffer._max_ready = 0.0
    # Private method calls.
    buf._insert(0.0, 0x40, 0, False, 0.0, "x")
    engine.buffer._read_miss(0.0, 0x80, "adj", "x")
    # Mutating the LRU structure directly.
    buf._lru_ods[0].popitem(last=False)
    return ready


def fine_kernel(engine, buf, addrs):
    # Public API: never flagged.
    ready, issue = buf.read(0.0, 0x40, "adj", "x")
    buf.write(issue, 0x80, "out", dirty=True)
    hits, readies, misses = buf.classify_batch(addrs, 0)
    if buf.contains(0xC0):
        buf.reclassify("partial", "out")
    buf.flush(ready, "drain")
    # Unrelated objects sharing a field name: receiver is not a buffer.
    tracker = object()
    _ = getattr(tracker, "_size", None)
    return hits, readies, misses


def suppressed_kernel(buf):
    # Justified by design, silenced inline.
    return buf._max_ready  # analyzer: allow[buffer-internals]
