"""Plain-text table/series rendering for experiment reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(title: str, series: Dict[str, Dict[str, float]],
                  value_format: str = "{:.3f}") -> str:
    """Render one figure's data: ``series[line_name][x_label] = value``.

    Produces the table a bar-chart figure would be drawn from (rows =
    x labels, columns = lines).
    """
    lines = sorted(series)
    xs: List[str] = []
    for line in lines:
        for x in series[line]:
            if x not in xs:
                xs.append(x)
    headers = ["x"] + lines
    rows = []
    for x in xs:
        rows.append(
            [x]
            + [
                value_format.format(series[line][x]) if x in series[line] else "-"
                for line in lines
            ]
        )
    return f"{title}\n{format_table(headers, rows)}"


#: Columns of a per-phase breakdown table, in print order (matches
#: ``repro.obs.report.PHASE_FIELDS`` so bench tables and trace reports
#: line up).
PHASE_BREAKDOWN_FIELDS = (
    "cycles",
    "busy_cycles",
    "dram_read_bytes",
    "dram_write_bytes",
    "buffer_hits",
    "buffer_misses",
)


def render_phase_breakdown(
    title: str,
    rows_by_label: Dict[str, List[Tuple[str, Dict[str, int]]]],
) -> str:
    """Render per-phase SimStats snapshots as one table.

    ``rows_by_label[run_label]`` is the output of
    :func:`repro.bench.runner.phase_snapshot_rows` for that run; each
    run contributes one row per phase plus a TOTAL row, and by the
    conservation invariant the TOTAL cycles equal the run's whole-run
    cycle count.
    """
    headers = ["run", "phase"] + list(PHASE_BREAKDOWN_FIELDS)
    table: List[List[object]] = []
    for label, rows in rows_by_label.items():
        totals = {f: 0 for f in PHASE_BREAKDOWN_FIELDS}
        for phase, fields in rows:
            table.append(
                [label, phase]
                + [fields.get(f, 0) for f in PHASE_BREAKDOWN_FIELDS]
            )
            for f in PHASE_BREAKDOWN_FIELDS:
                totals[f] += fields.get(f, 0)
        table.append(
            [label, "TOTAL"] + [totals[f] for f in PHASE_BREAKDOWN_FIELDS]
        )
    return f"{title}\n{format_table(headers, table)}"
