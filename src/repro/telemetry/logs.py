"""Structured NDJSON logging with contextvars correlation IDs.

One correlation ID is minted when a request enters the system (the
serve ``/submit`` handler) and rides everywhere that request's work
goes: a :mod:`contextvars` variable carries it across ``await`` points
and into ``asyncio.to_thread`` workers (both copy the context), and a
``corr_id`` field on :class:`repro.runtime.job.JobSpec` carries it
across the process boundary into pool workers, where
:func:`bind_correlation` re-establishes the context.  Every record the
:class:`NDJSONFormatter` emits is one JSON object per line with the
correlation ID stamped on it, so ``grep <id> log`` reconstructs a
request's whole life -- submit, cache probe, batch, phase replay,
span close.

Everything here is plain stdlib ``logging``: handlers attach only when
:func:`configure_logging` is called (or ``REPRO_TELEMETRY_LOG`` is set
at first use), and a ``NullHandler`` on the ``repro`` root keeps the
no-telemetry path silent -- no lastResort stderr spray, no measurable
cost beyond an isEnabledFor check.
"""

from __future__ import annotations

import contextvars
import io
import json
import logging
import os
import sys
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

#: Environment switch: a path ("-" for stderr) enables NDJSON logging
#: process-wide at first logger use; unset/empty/"off" keeps it silent.
LOG_ENV = "REPRO_TELEMETRY_LOG"

#: Root logger namespace for everything repro emits.
ROOT_LOGGER = "repro"

_correlation: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_correlation_id", default=None
)

#: Standard LogRecord attributes -- anything else passed via ``extra``
#: is treated as a structured context field.
_RESERVED = frozenset(
    vars(
        logging.LogRecord("", 0, "", 0, "", (), None)
    ).keys()
) | {"message", "asctime", "taskName"}


def new_correlation_id() -> str:
    """A fresh 16-hex-char correlation ID (uuid4-derived)."""
    return uuid.uuid4().hex[:16]


def current_correlation_id() -> Optional[str]:
    """The correlation ID bound to the current context, if any."""
    return _correlation.get()


def bind_correlation(corr_id: Optional[str]) -> None:
    """Bind (or clear) the correlation ID for the current context.

    Worker-process entry points call this with ``spec.corr_id`` so
    records emitted inside the pool inherit the submitting request's
    ID.
    """
    _correlation.set(corr_id)


@contextmanager
def correlation_scope(corr_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``corr_id`` for the duration of the block, then restore."""
    token = _correlation.set(corr_id)
    try:
        yield corr_id
    finally:
        _correlation.reset(token)


class NDJSONFormatter(logging.Formatter):
    """One key-sorted JSON object per record.

    Fields: ``ts`` (epoch seconds, from the record -- handlers stamp
    time, call sites never read the wall clock), ``level``, ``logger``,
    ``event`` (the message), ``corr_id`` when bound, plus any
    non-reserved ``extra`` fields, JSON-coerced via ``repr`` fallback.
    """

    def format(self, record: logging.LogRecord) -> str:
        doc: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        corr_id = getattr(record, "corr_id", None) or current_correlation_id()
        if corr_id:
            doc["corr_id"] = corr_id
        for key, value in vars(record).items():
            if key in _RESERVED or key == "corr_id" or key.startswith("_"):
                continue
            doc[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            doc["exc"] = record.exc_info[0].__name__
        try:
            return json.dumps(doc, sort_keys=True, default=repr)
        except (TypeError, ValueError):
            return json.dumps(
                {k: repr(v) for k, v in doc.items()}, sort_keys=True
            )


_configured = False
_env_checked = False


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.<name>``).

    First use lazily honours :data:`LOG_ENV` so CLI entry points need
    no explicit wiring; without it, records stop at a NullHandler.
    """
    global _env_checked
    if not _env_checked:
        _env_checked = True
        target = os.environ.get(LOG_ENV, "").strip()
        if target and target.lower() != "off":
            configure_logging(target)
    full = name if name == ROOT_LOGGER or name.startswith(
        ROOT_LOGGER + "."
    ) else f"{ROOT_LOGGER}.{name}"
    return logging.getLogger(full)


def configure_logging(
    target: str = "-",
    level: int = logging.INFO,
    stream: Optional[io.TextIOBase] = None,
) -> logging.Handler:
    """Attach one NDJSON handler to the ``repro`` root logger.

    ``target`` is a file path, or ``"-"`` for stderr; an explicit
    ``stream`` (tests) wins over both.  Idempotent-ish: calling again
    replaces the previously attached telemetry handler rather than
    stacking duplicates.
    """
    global _configured
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_telemetry", False):
            root.removeHandler(handler)
            handler.close()
    handler: logging.Handler
    if stream is not None:
        handler = logging.StreamHandler(stream)
    elif target == "-":
        handler = logging.StreamHandler(sys.stderr)
    else:
        handler = logging.FileHandler(target, encoding="utf-8")
    handler.setFormatter(NDJSONFormatter())
    handler._repro_telemetry = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    _configured = True
    return handler


def logging_enabled() -> bool:
    return _configured


# Silence is the default: without configuration, records reaching the
# "repro" root must not fall through to logging.lastResort (stderr).
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())
