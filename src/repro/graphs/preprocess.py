"""Graph preprocessing: degree sorting and GCN normalisation.

HyMM's only preprocessing is *degree sorting* (paper Table I), far
cheaper than the clustering/partitioning of G-CoD or GROW.  Table II
reports its cost in milliseconds per dataset; :func:`degree_sort`
measures the same wall-clock cost here.

The GCN layer operates on the normalised adjacency
``A_hat = D^-1/2 (A + I) D^-1/2`` (paper Eq. 1); :func:`gcn_normalize`
builds it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.sparse import COOMatrix
from repro.sparse.coo import INDEX_DTYPE, VALUE_DTYPE


@dataclass(frozen=True)
class SortResult:
    """Outcome of degree sorting.

    Attributes
    ----------
    matrix:
        The adjacency matrix with rows *and* columns relabelled so node
        0 has the highest degree (symmetric permutation, preserving the
        graph).
    permutation:
        ``permutation[old] = new`` -- the relabelling applied.
    inverse:
        ``inverse[new] = old`` -- to map results back to original ids.
    elapsed_ms:
        Wall-clock sorting cost in milliseconds (Table II column).
    """

    matrix: COOMatrix
    permutation: np.ndarray
    inverse: np.ndarray
    elapsed_ms: float


def degree_sort(adjacency: COOMatrix, by: str = "row") -> SortResult:
    """Symmetrically permute an adjacency matrix by descending degree.

    ``by='row'`` sorts on out-degree, ``by='col'`` on in-degree; for the
    symmetric graphs of Table II they are identical.  Ties break on node
    id so the result is deterministic.
    """
    start = time.perf_counter()
    if by == "row":
        degrees = adjacency.row_degrees()
    elif by == "col":
        degrees = adjacency.col_degrees()
    else:
        raise ValueError("by must be 'row' or 'col'")
    # argsort of (-degree, id): stable sort on negated degrees.
    order = np.argsort(-degrees, kind="stable")
    permutation = np.empty_like(order)
    permutation[order] = np.arange(order.size, dtype=INDEX_DTYPE)
    sorted_matrix = adjacency.permute(row_perm=permutation, col_perm=permutation)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    return SortResult(
        matrix=sorted_matrix,
        permutation=permutation.astype(INDEX_DTYPE),
        inverse=order.astype(INDEX_DTYPE),
        elapsed_ms=elapsed_ms,
    )


def add_self_loops(adjacency: COOMatrix, weight: float = 1.0) -> COOMatrix:
    """Return ``A + weight * I`` (duplicates merge by summation)."""
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency matrix must be square")
    eye = np.arange(n, dtype=INDEX_DTYPE)
    return COOMatrix(
        adjacency.shape,
        np.concatenate([adjacency.rows, eye]),
        np.concatenate([adjacency.cols, eye]),
        np.concatenate(
            [adjacency.values, np.full(n, weight, dtype=VALUE_DTYPE)]
        ),
    )


def gcn_normalize(adjacency: COOMatrix, self_loops: bool = True) -> COOMatrix:
    """Build the normalised adjacency ``A_hat = D^-1/2 (A + I) D^-1/2``.

    ``self_loops=False`` normalises the bare adjacency (used when a
    caller has already added loops).  Isolated nodes keep zero rows.
    """
    a = add_self_loops(adjacency) if self_loops else adjacency
    # Degree here is the weighted degree (row sum), matching Kipf-Welling.
    deg = np.zeros(a.shape[0], dtype=np.float64)
    np.add.at(deg, a.rows, a.values.astype(np.float64))
    inv_sqrt = np.zeros_like(deg)
    nonzero = deg > 0
    inv_sqrt[nonzero] = 1.0 / np.sqrt(deg[nonzero])
    values = (
        a.values.astype(np.float64) * inv_sqrt[a.rows] * inv_sqrt[a.cols]
    ).astype(VALUE_DTYPE)
    return COOMatrix(a.shape, a.rows.copy(), a.cols.copy(), values)
