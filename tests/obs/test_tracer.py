"""Tracer event construction, export determinism, schema validation."""

import json

from repro.obs import NULL_TRACER, ChromeTracer, NullTracer, Tracer
from repro.obs.schema import validate_event, validate_trace


class TestNullTracer:
    def test_disabled_by_default(self):
        assert NullTracer.enabled is False
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is False

    def test_methods_are_noops(self):
        NULL_TRACER.span("x", 0.0, 1.0, "engine")
        NULL_TRACER.instant("x", 0.0, "phase")
        NULL_TRACER.counter("x", 0.0, {"a": 1})

    def test_no_event_storage(self):
        assert not hasattr(NULL_TRACER, "_events")


class TestChromeTracer:
    def test_enabled(self):
        assert ChromeTracer.enabled is True

    def test_span_event_shape(self):
        tr = ChromeTracer()
        tr.span("tile", 10.0, 25.0, "region", {"rows": 4})
        [event] = tr.trace_dict()["traceEvents"]
        assert event["ph"] == "X"
        assert event["ts"] == 10.0
        assert event["dur"] == 15.0
        assert event["cat"] == "region"
        assert event["args"] == {"rows": 4}
        assert event["pid"] == 0 and event["tid"] == 0

    def test_instant_and_counter_shapes(self):
        tr = ChromeTracer()
        tr.instant("plan", 5.0, "phase")
        tr.counter("occupancy", 6.0, {"adj": 3, "out": 1})
        instant, counter = tr.trace_dict()["traceEvents"]
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert counter["ph"] == "C"
        assert counter["args"] == {"adj": 3.0, "out": 1.0}

    def test_n_events(self):
        tr = ChromeTracer()
        assert tr.n_events == 0
        tr.instant("a", 0.0, "run")
        tr.span("b", 0.0, 1.0, "engine")
        assert tr.n_events == 2

    def test_to_json_deterministic(self):
        def build():
            tr = ChromeTracer()
            tr.span("tile", 0.0, 2.0, "region", {"rows": 4})
            tr.instant("plan", 1.0, "phase")
            return tr.to_json({"spec": {"dataset": "cora"}})

        assert build() == build()

    def test_write_appends_newline(self, tmp_path):
        tr = ChromeTracer()
        tr.instant("a", 0.0, "run")
        path = tmp_path / "t.json"
        tr.write(str(path), {"totals": {"cycles": 1}})
        text = path.read_text()
        assert text.endswith("\n")
        doc = json.loads(text)
        assert doc["otherData"]["totals"] == {"cycles": 1}
        assert validate_trace(doc) == []


class TestSchema:
    def _event(self, **over):
        base = {"name": "x", "cat": "engine", "ph": "i", "ts": 0.0,
                "pid": 0, "tid": 0, "s": "t"}
        base.update(over)
        return base

    def test_valid_event(self):
        assert validate_event(self._event(), "e0") == []

    def test_missing_field(self):
        event = self._event()
        del event["cat"]
        assert any("cat" in p for p in validate_event(event, "e0"))

    def test_bad_phase(self):
        assert validate_event(self._event(ph="Z"), "e0")

    def test_negative_ts(self):
        assert validate_event(self._event(ts=-1.0), "e0")

    def test_span_needs_duration(self):
        event = self._event(ph="X")
        assert validate_event(event, "e0")
        event["dur"] = 5.0
        assert validate_event(event, "e0") == []

    def test_counter_needs_numeric_args(self):
        event = self._event(ph="C", args={"a": "nope"})
        assert validate_event(event, "e0")
        event["args"] = {"a": 1.0}
        assert validate_event(event, "e0") == []

    def test_trace_root_shape(self):
        assert validate_trace({"traceEvents": []}) == []
        assert validate_trace({"traceEvents": {}})
        assert validate_trace([])
