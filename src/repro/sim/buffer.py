"""On-chip buffer model (the DMB's buffer memory, Section IV-D).

A set of 64-byte lines managed with:

* **class-aware priority eviction** -- every resident line belongs to a
  traffic class (``W`` weights, ``XW`` combination results, ``AXW``
  final outputs, ``partial`` partial outputs).  On capacity pressure the
  victim comes from the lowest-priority non-empty class, LRU within the
  class: the paper's "evicted to the off-chip memory in the order of W
  and then XW, ensuring that partial outputs are retained ... the buffer
  employs a least recently used (LRU) eviction policy";
* **MSHRs** -- duplicate outstanding misses merge; when all MSHRs are
  busy the requesting frontend stalls until the earliest miss returns;
* a **near-memory accumulator** (:meth:`CacheBuffer.accumulate`) --
  partial outputs of the same index merge in place without occupying the
  PE array; partial lines evicted to DRAM are re-fetched and re-merged
  if touched again, and the partial-output footprint (resident +
  spilled) is tracked for the paper's Figure 10.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.sim.memory import DRAM
from repro.sim.stats import SimStats

CLASS_W = "W"
CLASS_XW = "XW"
CLASS_OUT = "AXW"
CLASS_PARTIAL = "partial"

#: Every line class the buffer knows about.
ALL_CLASSES = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)

#: Paper eviction order: weights first, then combination results; final
#: outputs and partial outputs are retained as long as possible.
DEFAULT_EVICT_PRIORITY = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)


@dataclass
class _Line:
    cls: str
    dirty: bool
    ready: float  # cycle at which the line's data is valid on-chip


class CacheBuffer:
    """Unified on-chip buffer with priority-LRU eviction and MSHRs."""

    def __init__(
        self,
        capacity_lines: int,
        line_bytes: int,
        dram: DRAM,
        stats: SimStats,
        hit_latency: int = 1,
        mshr_entries: int = 16,
        evict_priority: Tuple[str, ...] = DEFAULT_EVICT_PRIORITY,
        lru: bool = True,
    ) -> None:
        if capacity_lines <= 0:
            raise ValueError("capacity_lines must be positive")
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        if mshr_entries <= 0:
            raise ValueError("mshr_entries must be positive")
        self.capacity_lines = capacity_lines
        self.line_bytes = line_bytes
        self.dram = dram
        self.stats = stats
        self.hit_latency = hit_latency
        self.mshr_entries = mshr_entries
        self.lru = lru
        # Per-class LRU maps: addr -> _Line, insertion/MRU order at the end.
        self._sets: Dict[str, "OrderedDict[int, _Line]"] = {
            cls: OrderedDict() for cls in ALL_CLASSES
        }
        self._evict_priority: Tuple[str, ...] = ()
        self.evict_priority = evict_priority
        self._size = 0
        # MSHRs: addr -> ready cycle, plus a heap for capacity stalls.
        self._outstanding: Dict[int, float] = {}
        self._mshr_heap: List[Tuple[float, int]] = []
        # Partial lines evicted to DRAM whose value is a partial sum.
        self._spilled_partials: Set[int] = set()

    # ------------------------------------------------------------------
    # Introspection / configuration
    # ------------------------------------------------------------------
    @property
    def evict_priority(self) -> Tuple[str, ...]:
        """Current victim-class order (first = evicted first).

        Settable between phases: the unified DMB "can manage the space
        for input and output data dynamically" (Section III), so the
        hybrid scheduler biases eviction toward the class the current
        dataflow will not reuse.
        """
        return self._evict_priority

    @evict_priority.setter
    def evict_priority(self, order: Iterable[str]) -> None:
        order = tuple(order)
        if sorted(order) != sorted(ALL_CLASSES):
            raise ValueError(
                f"evict_priority must be a permutation of {ALL_CLASSES}, got {order}"
            )
        self._evict_priority = order

    @property
    def size_lines(self) -> int:
        """Lines currently resident."""
        return self._size

    def contains(self, addr: int) -> bool:
        """Whether the address is resident (no LRU side effects)."""
        return self._find(addr) is not None

    def resident_lines(self, cls: str) -> int:
        """Resident line count of one class."""
        return len(self._sets[cls])

    def occupancy_by_class(self) -> Dict[str, int]:
        """Lines held per class -- the Section III "dynamic space
        management" observable: during RWP phases the buffer fills with
        XW, during OP phases with partial outputs."""
        return {cls: len(lines) for cls, lines in self._sets.items()}

    # ------------------------------------------------------------------
    # Accesses
    # ------------------------------------------------------------------
    def read(self, cycle: float, addr: int, cls: str, tag: str) -> Tuple[float, float]:
        """Demand read of one line.

        Returns ``(ready_cycle, issue_cycle)``; ``issue_cycle >= cycle``
        when the request had to stall for a free MSHR.
        """
        line = self._find(addr)
        if line is not None:
            self._touch(addr, line.cls)
            self.stats.buffer_hits[tag] += 1
            return max(cycle + self.hit_latency, line.ready), cycle
        if addr in self._outstanding:
            # Secondary miss: merged into the pending MSHR, no new DRAM
            # traffic, but the data was not on-chip -> counts as a miss.
            self.stats.buffer_misses[tag] += 1
            return max(cycle + self.hit_latency, self._outstanding[addr]), cycle
        self.stats.buffer_misses[tag] += 1
        issue = self._acquire_mshr(cycle)
        ready = self.dram.read(issue, self.line_bytes, tag)
        self._outstanding[addr] = ready
        heapq.heappush(self._mshr_heap, (ready, addr))
        self._insert(issue, addr, cls, dirty=False, ready=ready)
        return ready, issue

    def write(
        self, cycle: float, addr: int, cls: str, tag: str, allocate: bool = True
    ) -> float:
        """Full-line write (no fetch needed).

        ``allocate=False`` is write-through/no-allocate: the line goes
        straight to DRAM, which is how streaming outputs (RWP final
        results) avoid polluting the buffer.
        """
        line = self._find(addr)
        if line is not None:
            self.stats.buffer_hits[tag] += 1
            line.dirty = True
            line.ready = max(line.ready, cycle + self.hit_latency)
            self._touch(addr, line.cls)
            return cycle + self.hit_latency
        self.stats.buffer_misses[tag] += 1
        if allocate:
            self._insert(cycle, addr, cls, dirty=True, ready=cycle + self.hit_latency)
            return cycle + self.hit_latency
        self.dram.write(cycle, self.line_bytes, tag)
        return cycle + self.hit_latency

    def accumulate(self, cycle: float, addr: int, tag: str = CLASS_PARTIAL) -> float:
        """Merge one partial output into the buffer (near-memory adder).

        If the line was previously spilled, its DRAM copy is fetched and
        re-merged (demand read).  Footprint tracking feeds Fig. 10.
        """
        self.stats.partials_produced += 1
        line = self._find(addr)
        if line is not None:
            self.stats.buffer_hits[tag] += 1
            line.dirty = True
            line.ready = max(line.ready, cycle + self.hit_latency)
            self._touch(addr, line.cls)
            self._update_partial_peak()
            return cycle + self.hit_latency
        self.stats.buffer_misses[tag] += 1
        if addr in self._spilled_partials:
            issue = self._acquire_mshr(cycle)
            ready = self.dram.read(issue, self.line_bytes, tag)
            self._spilled_partials.discard(addr)
            self._insert(issue, addr, CLASS_PARTIAL, dirty=True, ready=ready)
            self._update_partial_peak()
            return ready
        self._insert(cycle, addr, CLASS_PARTIAL, dirty=True, ready=cycle + self.hit_latency)
        self._update_partial_peak()
        return cycle + self.hit_latency

    def flush(self, cycle: float, cls: Optional[str] = None, tag: Optional[str] = None) -> float:
        """Write back and drop lines (all classes, or one).

        Returns the cycle the last writeback finishes transferring.
        Clean lines are dropped silently.
        """
        end = float(cycle)
        classes = [cls] if cls is not None else list(self.evict_priority)
        for c in classes:
            lines = self._sets[c]
            for addr, line in list(lines.items()):
                if line.dirty:
                    end = self.dram.write(end, self.line_bytes, tag or c)
                    if c == CLASS_PARTIAL:
                        self._spilled_partials.add(addr)
                del lines[addr]
                self._size -= 1
        return end

    def invalidate(self, cls: str) -> int:
        """Drop all lines of a class *without* writeback.

        Used between phases/layers for data that is dead (e.g. XW after
        the aggregation that consumed it).  Returns lines dropped.
        """
        lines = self._sets[cls]
        n = len(lines)
        lines.clear()
        self._size -= n
        return n

    def reclassify(self, from_cls: str, to_cls: str, cycle: float = 0.0) -> int:
        """Relabel all lines of one class as another, preserving LRU order.

        Used when partial outputs become final values (e.g. XW built by
        an outer-product combination): the data stays resident but now
        follows the destination class's eviction priority.  ``cycle`` is
        unused here but kept for interface parity with the split-buffer
        organisation, where reclassification costs writebacks.
        """
        src = self._sets[from_cls]
        dst = self._sets[to_cls]
        n = len(src)
        for addr, line in src.items():
            line.cls = to_cls
            dst[addr] = line
        src.clear()
        return n

    def drop_spilled_partials(self) -> int:
        """Forget spill bookkeeping between phases; returns count dropped."""
        n = len(self._spilled_partials)
        self._spilled_partials.clear()
        return n

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _find(self, addr: int) -> Optional[_Line]:
        for lines in self._sets.values():
            line = lines.get(addr)
            if line is not None:
                return line
        return None

    def _touch(self, addr: int, cls: str) -> None:
        if self.lru:
            self._sets[cls].move_to_end(addr)

    def _acquire_mshr(self, cycle: float) -> float:
        """Wait for a free MSHR; returns the (possibly delayed) issue cycle."""
        issue = float(cycle)
        # Retire completed misses.
        while self._mshr_heap and self._mshr_heap[0][0] <= issue:
            ready, addr = heapq.heappop(self._mshr_heap)
            if self._outstanding.get(addr) == ready:
                del self._outstanding[addr]
        while len(self._outstanding) >= self.mshr_entries:
            ready, addr = heapq.heappop(self._mshr_heap)
            if self._outstanding.get(addr) == ready:
                del self._outstanding[addr]
            issue = max(issue, ready)
        return issue

    def _insert(self, cycle: float, addr: int, cls: str, dirty: bool, ready: float) -> None:
        if cls not in self._sets:
            raise ValueError(f"unknown line class {cls!r}")
        while self._size >= self.capacity_lines:
            self._evict(cycle)
        self._sets[cls][addr] = _Line(cls, dirty, ready)
        self._size += 1

    def _evict(self, cycle: float) -> None:
        """Evict one line: lowest-priority non-empty class, LRU within."""
        for cls in self.evict_priority:
            lines = self._sets[cls]
            if lines:
                # Front of the ordered dict is LRU when hits re-append
                # (self.lru) and plain FIFO when they do not.
                addr, line = lines.popitem(last=False)
                self._size -= 1
                if line.dirty:
                    self.dram.write(cycle, self.line_bytes, cls)
                    if cls == CLASS_PARTIAL:
                        self._spilled_partials.add(addr)
                        self.stats.partial_spill_bytes += self.line_bytes
                return
        raise RuntimeError("evict called on an empty buffer")

    def _update_partial_peak(self) -> None:
        footprint = (
            len(self._sets[CLASS_PARTIAL]) + len(self._spilled_partials)
        ) * self.line_bytes
        if footprint > self.stats.partial_peak_bytes:
            self.stats.partial_peak_bytes = footprint
        self.stats.sample_partial_footprint(footprint)
