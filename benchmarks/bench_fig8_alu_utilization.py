"""Fig. 8: ALU utilisation of each dataflow.

Paper shape: the outer product has the lowest utilisation (merge
disruption + memory waits); HyMM improves on the row-wise product (up
to +27% at Amazon-Computers); CR/CS/PH run lower than the rest for
everyone because of feature sparsity and very long feature vectors.
"""

from repro.bench import figures


def test_fig8_alu_utilization(benchmark, emit):
    result = benchmark.pedantic(figures.fig8_alu_utilization, rounds=1, iterations=1)
    emit("fig8_alu_utilization", result["text"])
    util = result["utilization"]
    datasets = list(util["hymm"])

    for abbr in datasets:
        for kind in ("op", "rwp", "hymm"):
            assert 0.0 < util[kind][abbr] <= 1.0

    # HyMM >= RWP on every dataset (paper: up to +27% at AC).
    for abbr in datasets:
        assert util["hymm"][abbr] >= util["rwp"][abbr] - 0.02, abbr

    # On the dense graphs the paper highlights, HyMM is the clear best.
    # (On tiny fully-cached graphs OP's merge adds inflate its "busy"
    # count -- the paper's metric also counts the adder -- so OP can
    # look artificially busy there; the dense graphs are the signal.)
    for abbr in ("AP", "AC", "FR", "YP"):
        assert util["hymm"][abbr] > util["op"][abbr], abbr
        assert util["hymm"][abbr] > util["rwp"][abbr], abbr

    # The long-feature/feature-sparse datasets (CR, CS, PH) drag
    # whole-inference utilisation down -- the paper's Fig. 8 note.
    whole = result["whole_run"]["hymm"]
    assert whole["CS"] < whole["AP"]
    assert whole["PH"] < whole["AC"]
