"""Pareto utilities and their use over a real design sweep."""

import pytest

from repro import AreaModel, GCNModel, HyMMAccelerator, HyMMConfig, load_dataset
from repro.analysis import dominated, pareto_front


class TestParetoFront:
    def test_single_point(self):
        assert pareto_front([(1.0, 2.0)]) == [(1.0, 2.0)]

    def test_dominated_point_removed(self):
        front = pareto_front([(1.0, 1.0), (2.0, 2.0)])
        assert front == [(1.0, 1.0)]

    def test_tradeoff_points_kept(self):
        pts = [(1.0, 10.0), (2.0, 5.0), (3.0, 1.0)]
        assert pareto_front(pts) == pts

    def test_sorted_by_cost(self):
        front = pareto_front([(3.0, 1.0), (1.0, 10.0)])
        assert [p[0] for p in front] == [1.0, 3.0]

    def test_payload_carried(self):
        front = pareto_front([(1.0, 1.0, "config-a")])
        assert front[0][2] == "config-a"

    def test_duplicate_points(self):
        front = pareto_front([(1.0, 1.0), (1.0, 1.0)])
        assert len(front) == 1

    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            pareto_front([(1.0,)])

    def test_dominated_predicate(self):
        others = [(1.0, 1.0), (5.0, 5.0)]
        assert dominated((2.0, 2.0), others)
        assert not dominated((0.5, 3.0), others)
        assert not dominated((1.0, 1.0), others)  # equal, not dominated


class TestDesignSweep:
    def test_area_cycles_front_from_dmb_sweep(self):
        model = GCNModel(load_dataset("cora", scale=0.05, seed=0), n_layers=1, seed=1)
        points = []
        for kb in (8, 32, 128):
            cfg = HyMMConfig(dmb_bytes=kb * 1024)
            result = HyMMAccelerator(cfg).run_inference(model)
            points.append((AreaModel(cfg).total_mm2(), result.stats.cycles, kb))
        front = pareto_front(points)
        assert front  # never empty
        # The cheapest configuration is always on the front.
        assert front[0][2] == 8
        # Costs ascend and cycles descend along the front.
        costs = [p[0] for p in front]
        cycles = [p[1] for p in front]
        assert costs == sorted(costs)
        assert cycles == sorted(cycles, reverse=True)
