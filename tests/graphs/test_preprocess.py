"""Degree sorting and GCN normalisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.preprocess import add_self_loops, degree_sort, gcn_normalize
from repro.graphs.synthetic import power_law_graph
from repro.sparse import COOMatrix


class TestDegreeSort:
    def test_degrees_descending(self, small_graph):
        result = degree_sort(small_graph)
        degrees = result.matrix.row_degrees()
        assert np.all(np.diff(degrees) <= 0)

    def test_permutation_is_bijection(self, small_graph):
        result = degree_sort(small_graph)
        assert sorted(result.permutation.tolist()) == list(range(64))

    def test_inverse_composes_to_identity(self, small_graph):
        result = degree_sort(small_graph)
        composed = result.permutation[result.inverse]
        np.testing.assert_array_equal(composed, np.arange(64))

    def test_graph_isomorphic(self, small_graph):
        """The sorted matrix is the same graph relabelled."""
        result = degree_sort(small_graph)
        back = result.matrix.permute(
            row_perm=result.inverse, col_perm=result.inverse
        )
        assert back.allclose(small_graph)

    def test_symmetry_preserved(self, small_graph):
        sorted_m = degree_sort(small_graph).matrix
        assert sorted_m.allclose(sorted_m.transpose())

    def test_elapsed_recorded(self, small_graph):
        assert degree_sort(small_graph).elapsed_ms > 0

    def test_column_sort(self, small_graph):
        result = degree_sort(small_graph, by="col")
        degrees = result.matrix.col_degrees()
        assert np.all(np.diff(degrees) <= 0)

    def test_bad_axis(self, small_graph):
        with pytest.raises(ValueError):
            degree_sort(small_graph, by="x")

    def test_deterministic_tie_break(self):
        g = power_law_graph(32, 64, seed=9)
        a = degree_sort(g).permutation
        b = degree_sort(g).permutation
        np.testing.assert_array_equal(a, b)

    def test_sorting_cost_grows_with_size(self):
        """Table II trend: bigger graphs cost more to sort."""
        small = power_law_graph(200, 1000, seed=0)
        big = power_law_graph(20_000, 100_000, seed=0)
        t_small = min(degree_sort(small).elapsed_ms for _ in range(3))
        t_big = min(degree_sort(big).elapsed_ms for _ in range(3))
        assert t_big > t_small


class TestSelfLoops:
    def test_adds_diagonal(self, small_graph):
        with_loops = add_self_loops(small_graph)
        dense = with_loops.to_dense()
        assert np.all(np.diag(dense) == 1.0)

    def test_nnz_increases_by_n(self, small_graph):
        with_loops = add_self_loops(small_graph)
        assert with_loops.nnz == small_graph.nnz + 64

    def test_custom_weight(self, small_graph):
        with_loops = add_self_loops(small_graph, weight=2.5)
        assert np.all(np.diag(with_loops.to_dense()) == 2.5)

    def test_existing_diagonal_merges(self):
        m = COOMatrix.from_dense(np.eye(3, dtype=np.float32))
        merged = add_self_loops(m)
        assert merged.nnz == 3
        assert np.all(np.diag(merged.to_dense()) == 2.0)

    def test_rectangular_rejected(self):
        with pytest.raises(ValueError):
            add_self_loops(COOMatrix.empty((2, 3)))


class TestNormalize:
    def test_matches_kipf_welling_formula(self, small_graph):
        a = small_graph.to_dense().astype(np.float64) + np.eye(64)
        deg = a.sum(axis=1)
        d_inv_sqrt = np.diag(1.0 / np.sqrt(deg))
        expected = d_inv_sqrt @ a @ d_inv_sqrt
        result = gcn_normalize(small_graph).to_dense()
        np.testing.assert_allclose(result, expected, rtol=1e-4, atol=1e-6)

    def test_symmetric_result(self, small_graph):
        norm = gcn_normalize(small_graph)
        assert norm.allclose(norm.transpose(), rtol=1e-4)

    def test_values_in_unit_interval(self, small_graph):
        values = gcn_normalize(small_graph).values
        assert np.all(values > 0)
        assert np.all(values <= 1.0 + 1e-6)

    def test_without_self_loops(self, small_graph):
        norm = gcn_normalize(small_graph, self_loops=False)
        assert norm.nnz == small_graph.nnz

    def test_isolated_node_stays_zero(self):
        dense = np.zeros((3, 3), dtype=np.float32)
        dense[0, 1] = dense[1, 0] = 1.0
        norm = gcn_normalize(COOMatrix.from_dense(dense), self_loops=False)
        assert not norm.to_dense()[2].any()

    def test_spectral_radius_at_most_one(self, small_graph):
        norm = gcn_normalize(small_graph).to_dense().astype(np.float64)
        eigvals = np.linalg.eigvalsh(norm)
        assert np.max(np.abs(eigvals)) <= 1.0 + 1e-6


@settings(max_examples=20, deadline=None)
@given(n=st.integers(4, 30), e=st.integers(0, 60), seed=st.integers(0, 50))
def test_property_sort_preserves_graph(n, e, seed):
    e = min(e - e % 2, n * (n - 1) - 1)
    g = power_law_graph(n, e, seed=seed)
    result = degree_sort(g)
    restored = result.matrix.permute(result.inverse, result.inverse)
    assert restored.allclose(g)
