"""Hardware configuration (paper Table III plus ablation knobs).

Every design decision the paper calls out has a switch here so the
ablation benches can flip it:

=========================  =====================================
Knob                       Paper section
=========================  =====================================
``near_memory_accumulator``  IV-D (accumulator at the DMB)
``op_first``                 III (execute OP regions before RWP)
``unified_buffer``           III (one DMB vs split input/output)
``forwarding``               IV-B (LSQ store-to-load forwarding)
``lru``                      IV-D (LRU vs FIFO eviction)
``threshold_fraction``       IV-E (tiling threshold, 20% of nodes)
=========================  =====================================
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping

from repro.sim.engine import ENGINE_KINDS
from repro.sim.memory import DRAMConfig


@dataclass(frozen=True)
class HyMMConfig:
    """Full hardware + policy configuration of one simulated accelerator."""

    # --- Compute (Table III: "PE Array: 16 MAC", 32-bit single precision;
    # Section V: "HyMM achieve a performance of 32 GFLOPS" = 16 MACs x
    # 2 FLOPs at 1 GHz)
    n_pes: int = 16
    value_bytes: int = 4
    clock_ghz: float = 1.0

    # --- Dense matrix buffer (Table III: 256 KB; Section IV: 64-byte vectors)
    dmb_bytes: int = 256 * 1024
    line_bytes: int = 64
    dmb_hit_latency: int = 1
    #: Outstanding *demand* misses the DMB tracks.  Random accesses are
    #: MSHR-limited (16 outstanding), while sequential operands use the
    #: SMQ-style prefetch streams that bypass the MSHRs -- this is the
    #: random-vs-sequential asymmetry the paper's dataflow analysis
    #: rests on (Section III).
    mshr_entries: int = 16

    # --- Sparse matrix queue (Table III: 4 KB pointer + 12 KB index buffers)
    smq_pointer_bytes: int = 4 * 1024
    smq_index_bytes: int = 12 * 1024

    # --- Load/store queue (Table III: 128 entries x 68 B)
    lsq_entries: int = 128
    lsq_entry_bytes: int = 68

    # --- Off-chip memory (Section IV: 64 GB/s)
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    # --- Tiling (Section IV-E)
    threshold_fraction: float = 0.2
    resident_fraction: float = 0.75

    # --- Design-choice switches (ablations; defaults follow the paper)
    near_memory_accumulator: bool = True
    op_first: bool = True
    unified_buffer: bool = True
    forwarding: bool = True
    lru: bool = True

    # --- Simulator implementation (no timing effect: the two engines
    # are cycle- and stats-exact; "scalar" is the reference model,
    # "batched" the vectorized fast path -- see docs/performance.md)
    engine: str = "batched"

    def __post_init__(self):
        if self.n_pes <= 0:
            raise ValueError("n_pes must be positive")
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        if self.dmb_bytes < self.line_bytes:
            raise ValueError("dmb_bytes must hold at least one line")
        if self.line_bytes % self.value_bytes:
            raise ValueError("line_bytes must be a multiple of value_bytes")
        if self.lsq_entries <= 0:
            raise ValueError("lsq_entries must be positive")
        if not 0.0 < self.threshold_fraction <= 1.0:
            raise ValueError("threshold_fraction must be in (0, 1]")
        if not 0.0 < self.resident_fraction <= 1.0:
            raise ValueError("resident_fraction must be in (0, 1]")
        if self.engine not in ENGINE_KINDS:
            raise ValueError(
                f"engine must be one of {ENGINE_KINDS}, got {self.engine!r}"
            )

    # ------------------------------------------------------------------
    @property
    def capacity_lines(self) -> int:
        """DMB capacity in 64-byte lines (4096 at Table III defaults)."""
        return self.dmb_bytes // self.line_bytes

    @property
    def lanes(self) -> int:
        """Values processed per PE-array vector op (one per PE)."""
        return self.n_pes

    @property
    def peak_gflops(self) -> float:
        """Peak throughput: 2 FLOPs per MAC per cycle (32 at defaults)."""
        return 2.0 * self.n_pes * self.clock_ghz

    @property
    def smq_bytes(self) -> int:
        """Total SMQ stream-buffer capacity (pointer + index buffers)."""
        return self.smq_pointer_bytes + self.smq_index_bytes

    def lines_per_row(self, width: int) -> int:
        """Buffer lines one ``width``-element dense row occupies."""
        if width <= 0:
            raise ValueError("width must be positive")
        row_bytes = width * self.value_bytes
        return -(-row_bytes // self.line_bytes)

    def compute_passes(self, width: int) -> int:
        """PE-array cycles one scalar x ``width``-vector MAC takes
        (one lane per PE; 1 for the Table III defaults at width 16)."""
        if width <= 0:
            raise ValueError("width must be positive")
        return -(-width // self.n_pes)

    def with_overrides(self, **kwargs) -> "HyMMConfig":
        """A modified copy (frozen dataclass); kwargs are field names."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    # Serialisation (runtime job fingerprints and the disk result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON dict, nested ``DRAMConfig`` included."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HyMMConfig":
        """Inverse of :meth:`to_dict`; rejects unknown fields so a
        schema drift surfaces as an error, not a silently-default knob."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown HyMMConfig fields: {sorted(unknown)}")
        kwargs = dict(data)
        dram = kwargs.pop("dram", None)
        if dram is not None:
            kwargs["dram"] = (
                dram if isinstance(dram, DRAMConfig) else DRAMConfig.from_dict(dram)
            )
        return cls(**kwargs)
