"""Ablations of the design choices DESIGN.md calls out.

Each ablation flips one HyMM policy on Amazon-Photo under buffer
pressure (64 KB DMB at the bench scale, preserving the paper-scale
working-set-to-buffer ratio) and reports the cycle/traffic cost of
losing the feature:

1. near-memory accumulator (Section IV-D)
2. OP-first region execution order (Section III)
3. unified vs split buffer (Section III)
4. LSQ store-to-load forwarding (Section IV-B)
5. LRU vs FIFO eviction (Section IV-D)
6. degree sorting (Table I's preprocessing; tested separately below)
"""

from repro.bench import format_table
from repro.bench.runner import run_accelerator
from repro.bench.workloads import make_model, bench_scale
from repro.hymm import HyMMAccelerator, HyMMConfig

_DATASET = "amazon-photo"
_PRESSURED = dict(dmb_bytes=64 * 1024)


def _run(**overrides):
    config = HyMMConfig(**{**_PRESSURED, **overrides})
    return run_accelerator(_DATASET, "hymm", config=config)


def test_ablations(benchmark, emit):
    def run_all():
        base = _run()
        variants = {
            "paper default": base,
            "no accumulator": _run(near_memory_accumulator=False),
            "RWP-first order": _run(op_first=False),
            "split buffers": _run(unified_buffer=False),
            "no forwarding": _run(forwarding=False),
            "FIFO eviction": _run(lru=False),
        }
        headers = ["variant", "cycles", "vs default", "DRAM MB", "hit rate"]
        rows = []
        for name, r in variants.items():
            rows.append([
                name,
                r.stats.cycles,
                r.stats.cycles / base.stats.cycles,
                r.stats.dram_total_bytes() / (1024 * 1024),
                r.stats.hit_rate(),
            ])
        return variants, format_table(headers, rows)

    variants, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablations", text)

    base = variants["paper default"]
    # Losing the accumulator must cost cycles (PE-side merging).
    assert variants["no accumulator"].stats.cycles > base.stats.cycles
    # The split organisation cannot beat the unified buffer here.
    assert variants["split buffers"].stats.dram_total_bytes() >= (
        base.stats.dram_total_bytes()
    )
    # No ablation changes the computed result (checked in tests/), and
    # none may reduce traffic meaningfully below the default's (the
    # phase-order flip can move it by a fraction of a percent).
    for name, r in variants.items():
        assert r.stats.dram_total_bytes() >= base.stats.dram_total_bytes() * 0.99, name


def test_sort_mode_ablation(benchmark, emit):
    """Degree sorting is HyMM's only preprocessing (Table I); removing
    or randomising it must cost cycles and traffic."""
    config = HyMMConfig(**_PRESSURED)
    model = make_model(_DATASET, bench_scale(_DATASET))

    def run_all():
        results = {
            mode: HyMMAccelerator(config, sort_mode=mode).run_inference(model)
            for mode in ("degree", "none", "random")
        }
        headers = ["sort mode", "cycles", "DRAM MB", "hit rate", "sort ms"]
        rows = [
            [mode, r.stats.cycles, r.stats.dram_total_bytes() / (1024 * 1024),
             r.stats.hit_rate(), r.sort_ms]
            for mode, r in results.items()
        ]
        return results, format_table(headers, rows)

    results, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("ablation_sorting", text)
    degree = results["degree"]
    for mode in ("none", "random"):
        assert results[mode].stats.dram_total_bytes() > degree.stats.dram_total_bytes(), mode
    assert degree.sort_ms > 0
    assert results["none"].sort_ms == 0
