"""repro.serve: a long-lived sweep service over the runtime layer.

The serving story the runtime was built toward: one resident process
that accepts simulation job submissions over a line-delimited JSON
protocol, answers repeats from the sharded result cache in
sub-millisecond time, single-flights concurrent identical submissions
into one execution, and streams per-phase progress (via
:class:`repro.obs.tracer.PhaseFeed`) while a miss simulates.

Layout:

* :mod:`repro.serve.protocol` -- wire format, request parsing,
  endpoint and job-state vocabulary;
* :mod:`repro.serve.server` -- the asyncio server, single-flight job
  table, metrics, and the :class:`~repro.serve.server.ServerThread`
  test/bench harness;
* :mod:`repro.serve.client` -- the blocking client the CLI, bench and
  tests use;
* :mod:`repro.serve.bench` -- the hit-path latency benchmark feeding
  the ``BENCH_serve.json`` trajectory;
* :mod:`repro.serve.cli` -- ``python -m repro.serve`` subcommands.

The event-loop side never blocks on disk or simulation (cache probes
and SweepExecutor batches run in worker threads); the ``serve-hygiene``
analyzer rule enforces that contract statically.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError, Request
from repro.serve.server import (
    ServeSettings,
    ServerThread,
    SweepServer,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "ServeClient",
    "ServeError",
    "ServeSettings",
    "ServerThread",
    "SweepServer",
]
