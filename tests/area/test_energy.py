"""Energy model (extension): composition with simulated runs."""

import pytest

from repro import HyMMAccelerator, HyMMConfig, OPAccelerator
from repro.area.energy import (
    EnergyReport,
    energy_efficiency_gflops_per_watt,
    energy_of_run,
    stats_flops,
)


@pytest.fixture(scope="module")
def hymm_run(request):
    from repro import GCNModel, load_dataset

    model = GCNModel(load_dataset("cora", scale=0.05, seed=0), n_layers=1, seed=1)
    return HyMMAccelerator().run_inference(model), model


class TestEnergyReport:
    def test_total_sums_components(self):
        report = EnergyReport(compute_pj=10.0, sram_pj=20.0, dram_pj=70.0)
        assert report.total_pj == pytest.approx(100.0)
        assert report.total_uj == pytest.approx(1e-4)

    def test_breakdown_fractions(self):
        report = EnergyReport(10.0, 20.0, 70.0)
        bd = report.breakdown()
        assert bd["dram"] == pytest.approx(0.7)
        assert sum(bd.values()) == pytest.approx(1.0)

    def test_breakdown_zero_total(self):
        assert EnergyReport(0.0, 0.0, 0.0).breakdown()["dram"] == 0.0


class TestEnergyOfRun:
    def test_positive_components(self, hymm_run):
        result, _ = hymm_run
        report = energy_of_run(result)
        assert report.compute_pj > 0
        assert report.sram_pj > 0
        assert report.dram_pj > 0

    def test_dram_term_tracks_traffic(self, hymm_run):
        result, _ = hymm_run
        report = energy_of_run(result)
        assert report.dram_pj == pytest.approx(
            result.stats.dram_total_bytes() * 15.0
        )

    def test_flops_counts_lanes(self, hymm_run):
        result, _ = hymm_run
        assert stats_flops(result) == 2.0 * result.stats.busy_cycles * 16

    def test_efficiency_positive(self, hymm_run):
        result, _ = hymm_run
        assert energy_efficiency_gflops_per_watt(result) > 0

    def test_hymm_uses_less_energy_than_op(self, hymm_run):
        result, model = hymm_run
        op = OPAccelerator().run_inference(model)
        assert energy_of_run(result).total_pj < energy_of_run(op).total_pj
