"""Telemetry through the serve stack, end to end.

One cold submit against a real (smallest-workload) simulation must
leave the SAME correlation ID in every observability surface: the
submit response, the event stream, the NDJSON log records, the
recorded wall-clock spans, and the executor's manifest JobRecord --
that join key is the whole point of the spine.

And the inverse contract: with ``telemetry=False`` the wire responses
carry no correlation material at all (byte-level check), so a
pre-telemetry client sees byte-identical payloads.
"""

import io
import json
import logging
import re

import pytest

from repro.obs.schema import validate_trace
from repro.runtime import JobSpec, ShardedResultCache
from repro.runtime.executor import SweepExecutor
from repro.serve.client import ServeClient
from repro.serve.server import ServeSettings, ServerThread
from repro.telemetry import (
    SpanRecorder,
    bind_correlation,
    configure_logging,
    install_recorder,
)

CORR_RE = re.compile(r"^[0-9a-f]{16}$")


@pytest.fixture()
def spec():
    return JobSpec(dataset="cora", kind="rwp", scale=0.05)


@pytest.fixture()
def log_stream():
    buf = io.StringIO()
    handler = configure_logging(stream=buf)
    yield buf
    logging.getLogger("repro").removeHandler(handler)


@pytest.fixture()
def recorder():
    rec = SpanRecorder()
    previous = install_recorder(rec)
    bind_correlation(None)
    yield rec
    install_recorder(previous)
    bind_correlation(None)


def log_records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestEndToEndCorrelation:
    def test_one_id_across_every_surface(
        self, tmp_path, spec, log_stream, recorder
    ):
        cache = ShardedResultCache(tmp_path / "cache")
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                cold = client.submit(spec.to_dict())
                corr_id = cold["corr_id"]
                assert CORR_RE.match(corr_id)

                # Surface 1: the status payload re-reads the same ID.
                assert client.status(cold["job_id"])["corr_id"] == corr_id

                # Surface 2: every streamed event (status transitions
                # AND live PhaseFeed progress rows) is stamped.
                events = list(client.follow(cold["job_id"]))
        stamped = [e for e in events if "corr_id" in e]
        assert stamped, "no stamped events in the stream"
        assert {e["corr_id"] for e in stamped} == {corr_id}
        phase_events = [e for e in events if e.get("event") == "phase"]
        assert phase_events, "expected live phase progress events"
        assert all(e["corr_id"] == corr_id for e in phase_events)

        # Surface 3: NDJSON log records from the submit path carry it.
        matching = [
            r for r in log_records(log_stream) if r.get("corr_id") == corr_id
        ]
        assert any(r["event"] == "submit" for r in matching)

        # Surface 4: the recorded wall-clock spans carry it in args,
        # and the exported file is a valid (wall-clock) Chrome trace.
        path = tmp_path / "wall.json"
        recorder.write(str(path), tool="test")
        doc = json.loads(path.read_text(encoding="utf-8"))
        assert validate_trace(doc) == []
        assert doc["otherData"]["clock"] == "wall"
        span_ids = {
            e["args"]["corr_id"]
            for e in doc["traceEvents"]
            if "corr_id" in e.get("args", {})
        }
        assert corr_id in span_ids

        # Surface 5 (negative): the cached record on disk is shared
        # across submitters and must NOT embed the first caller's ID.
        fp = spec.fingerprint()
        shard = tmp_path / "cache" / fp[:2] / fp[2:4] / f"{fp}.json"
        assert shard.exists()
        assert "corr_id" not in shard.read_text(encoding="utf-8")

    def test_warm_hit_gets_a_fresh_id(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                cold = client.submit(spec.to_dict())
                warm = client.submit(spec.to_dict())
        assert CORR_RE.match(warm["corr_id"])
        # A new request is a new correlation, even on the hit path.
        assert warm["corr_id"] != cold["corr_id"]

    def test_client_supplied_id_is_adopted(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        doc = spec.to_dict()
        doc["corr_id"] = "feedface00000007"
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                response = client.submit(doc)
        assert response["corr_id"] == "feedface00000007"


class TestManifestJobRecord:
    def test_executor_manifest_carries_spec_corr_id(self, tmp_path, spec):
        corr = "feedface00000009"
        tagged = JobSpec(
            dataset=spec.dataset, kind=spec.kind, scale=spec.scale,
            corr_id=corr,
        )
        cache = ShardedResultCache(tmp_path)
        executor = SweepExecutor(n_jobs=1, cache=cache)
        sweep = executor.run([tagged])
        [record] = sweep.manifest.records
        assert record.corr_id == corr
        assert record.to_dict()["corr_id"] == corr

    def test_untagged_spec_serialises_without_the_key(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        sweep = SweepExecutor(n_jobs=1, cache=cache).run([spec])
        [record] = sweep.manifest.records
        assert record.corr_id is None
        assert "corr_id" not in record.to_dict()


class TestTelemetryOffByteIdentity:
    def test_no_correlation_material_on_the_wire(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        settings = ServeSettings(telemetry=False)
        with ServerThread(cache=cache, settings=settings) as srv:
            with ServeClient(srv.host, srv.port) as client:
                cold = client.request_raw(
                    {"op": "submit", "spec": spec.to_dict(), "wait": True}
                )
                assert b"corr_id" not in cold
                job_id = json.loads(cold)["job_id"]
                status = client.request_raw(
                    {"op": "status", "job_id": job_id}
                )
                assert b"corr_id" not in status
                warm = client.request_raw(
                    {"op": "submit", "spec": spec.to_dict(), "wait": True}
                )
                assert b"corr_id" not in warm
                events = list(client.follow(job_id))
        assert all("corr_id" not in e for e in events)

    def test_off_and_on_serve_identical_results(self, tmp_path, spec):
        """The simulated answer itself is clock-free: telemetry on/off
        must not change a byte of the result record (wall_seconds is
        real measured host time, nondeterministic since before this
        subsystem, and excluded)."""
        payloads = {}
        for mode, telemetry in (("off", False), ("on", True)):
            cache = ShardedResultCache(tmp_path / mode)
            settings = ServeSettings(telemetry=telemetry)
            with ServerThread(cache=cache, settings=settings) as srv:
                with ServeClient(srv.host, srv.port) as client:
                    response = client.submit(
                        spec.to_dict(), include_result=True
                    )
                    record = dict(response["result"])
                    record.pop("wall_seconds", None)
                    payloads[mode] = json.dumps(record, sort_keys=True)
        assert payloads["off"] == payloads["on"]

    def test_metrics_still_counted_with_telemetry_off(self, tmp_path, spec):
        cache = ShardedResultCache(tmp_path)
        settings = ServeSettings(telemetry=False)
        with ServerThread(cache=cache, settings=settings) as srv:
            with ServeClient(srv.host, srv.port) as client:
                client.submit(spec.to_dict())
                client.submit(spec.to_dict())
                metrics = client.metrics()
                health = client.healthz()
        assert metrics["jobs"]["submitted"] == 2
        assert metrics["hitpath_ms"]["count"] == 1
        # /healthz keeps its SLO verdict either way.
        assert health["status"] == "ok"
        assert health["versions"]["protocol"] == health["protocol"]


class TestHealthzShape:
    def test_versions_uptime_and_slo_objectives(self):
        with ServerThread() as srv:
            with ServeClient(srv.host, srv.port) as client:
                health = client.healthz()
        assert set(health["versions"]) == {
            "protocol", "job_schema", "trace_schema",
        }
        assert health["uptime_s"] >= 0
        slo = health["slo"]
        assert slo["verdict"] == "ok"
        names = {o["name"] for o in slo["objectives"]}
        assert names == {"hitpath-p99", "error-rate"}
        for objective in slo["objectives"]:
            assert objective["ok"] is True
            assert objective["events"] == 0
