"""Fixture for the ``obs-hygiene`` rule: known violations plus
legitimate guarded emissions that must not be flagged."""


def violating_kernel(ctx, tracer):
    # Unguarded emissions: the args dict is built even under a
    # NullTracer, so these allocate on the hot path when tracing is off.
    tracer.span("tile", 0.0, 1.0, "region", {"rows": 4})
    ctx.engine.tracer.instant("plan", 0.0, "region")
    tracer.counter("occupancy", 0.0, {"adj": 1})
    # Direct event-list access bypasses the exporter's schema.
    tracer._events.append({"ph": "X"})
    return len(tracer.events)


def boundary_kernel(tracer):
    # A guard around the *call* does not guard the helper's own
    # emission -- function boundaries stop the guard walk.
    if tracer.enabled:
        def emit():
            tracer.span("late", 0.0, 1.0, "engine")
        emit()


def fine_kernel(ctx, tracer, rows):
    # Guarded emissions: one class-attribute load when disabled.
    t0 = ctx.engine.drain()
    if tracer.enabled:
        tracer.span("tile", t0, ctx.engine.drain(), "region", {"rows": rows})
    if ctx.engine.tracer.enabled:
        ctx.engine.tracer.instant("plan", t0, "region")
    marker = tracer.counter("occ", t0, {"adj": 1}) if tracer.enabled else None
    # Same method names on a non-tracer receiver: not the Tracer API.
    metrics = ctx.registry
    metrics.counter("jobs")
    metrics.span("outer", 0, 1)
    return marker


def suppressed_kernel(tracer):
    # Justified by design, silenced inline.
    tracer.instant("boot", 0.0, "run")  # analyzer: allow[obs-hygiene]
