"""One GCN layer: combination then aggregation (combination-first).

The paper follows AWB-GCN's combination-first schedule: computing
``XW`` before ``A_hat (XW)`` shrinks the aggregation operand from
``feature_length`` to ``hidden_dim`` columns, reducing multiplications
and SpDeMM-engine cost (Section II-A).  Both phases are SpDeMMs:

* **combination** -- sparse ``X`` (CSR) times dense ``W``;
* **aggregation** -- sparse ``A_hat`` times dense ``XW``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sparse import COOMatrix, CSRMatrix, spmm_coo, spmm_csr
from repro.sparse.coo import VALUE_DTYPE


def combination(features: CSRMatrix, weights: np.ndarray) -> np.ndarray:
    """Combination phase: ``XW`` via the row-wise-product oracle."""
    if features.shape[1] != weights.shape[0]:
        raise ValueError(
            f"feature length {features.shape[1]} != weight fan-in {weights.shape[0]}"
        )
    return spmm_csr(features, weights)


def aggregation(norm_adj: COOMatrix, combined: np.ndarray) -> np.ndarray:
    """Aggregation phase: ``A_hat (XW)`` via the order-independent oracle."""
    if norm_adj.shape[1] != combined.shape[0]:
        raise ValueError(
            f"adjacency width {norm_adj.shape[1]} != combined rows {combined.shape[0]}"
        )
    return spmm_coo(norm_adj, combined)


@dataclass
class GCNLayer:
    """A single inference layer ``H' = act(A_hat (H W))``.

    ``activation`` is applied element-wise after aggregation; pass
    ``None`` for the final (logit) layer.
    """

    weights: np.ndarray
    activation: object = None  # callable or None

    def forward(self, norm_adj: COOMatrix, h) -> np.ndarray:
        """Run the layer.  ``h`` may be a CSR matrix (layer 0, sparse
        features) or a dense array (subsequent layers)."""
        if isinstance(h, CSRMatrix):
            combined = combination(h, self.weights)
        else:
            combined = (
                np.asarray(h, dtype=np.float64) @ self.weights.astype(np.float64)
            ).astype(VALUE_DTYPE)
        out = aggregation(norm_adj, combined)
        if self.activation is not None:
            out = self.activation(out)
        return out.astype(VALUE_DTYPE)

    @property
    def fan_in(self) -> int:
        return self.weights.shape[0]

    @property
    def fan_out(self) -> int:
        return self.weights.shape[1]
