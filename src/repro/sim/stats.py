"""Simulation counters and derived metrics.

One :class:`SimStats` instance is threaded through a whole simulated
run (all phases, all engines); the experiment harness reads the derived
metrics that correspond to the paper's figures:

* total ``cycles`` -> Fig. 7 speedups,
* :meth:`SimStats.alu_utilization` -> Fig. 8,
* :meth:`SimStats.hit_rate` -> Fig. 9,
* :meth:`SimStats.partial_peak_bytes` -> Fig. 10,
* :meth:`SimStats.dram_breakdown` -> Fig. 11.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, Iterable, List, Tuple

#: The declared traffic-tag vocabulary.  Every DRAM/buffer counter is
#: keyed by one of these components, which is what makes the Fig. 11
#: breakdown stack to the total: ``A`` (adjacency stream), ``X`` (input
#: features), ``W`` (weights), ``XW`` (combination results), ``AXW``
#: (final outputs), ``partial`` (partial-output spill/merge traffic),
#: ``H`` (hidden activations re-read as the next layer's input -- the
#: combination kernel loads layer-``l`` outputs under this tag for
#: ``l > 0``, which is the "H" column of the Fig. 11 tables).
#: The static analyzer's ``stats-conservation`` rule rejects literal
#: tags outside this set, and :meth:`SimStats.merge` /
#: :meth:`SimStats.hit_rate_for` raise ``ValueError`` on unknowns;
#: extend it here -- deliberately -- before introducing a new component.
TRAFFIC_TAGS = ("A", "X", "W", "XW", "AXW", "partial", "H")

_TRAFFIC_TAG_SET = frozenset(TRAFFIC_TAGS)


def validate_tags(tags: "Iterable[str]", where: str) -> None:
    """Raise ``ValueError`` if any tag is outside :data:`TRAFFIC_TAGS`.

    Counters index-by-default on any key, so a typo'd tag would
    otherwise split traffic into a phantom component that no figure
    stacks -- fail loudly at the aggregation boundary instead.
    """
    unknown = sorted(set(tags) - _TRAFFIC_TAG_SET)
    if unknown:
        raise ValueError(
            f"unknown traffic tag(s) {unknown} in {where}; "
            f"declared vocabulary is {list(TRAFFIC_TAGS)}"
        )


@dataclass
class SimStats:
    """Mutable counter bundle for one simulation run."""

    #: Final cycle count (set by the runner when all engines drain).
    cycles: int = 0
    #: Cycles in which the PE array issued a vector MAC (numerator of
    #: ALU utilisation).
    busy_cycles: int = 0
    #: DRAM bytes read, keyed by traffic tag ("A", "X", "W", "XW",
    #: "AXW", "partial").
    dram_read_bytes: Counter[str] = field(default_factory=Counter)
    #: DRAM bytes written, keyed the same way.
    dram_write_bytes: Counter[str] = field(default_factory=Counter)
    #: Buffer hits / misses, keyed by traffic tag.
    buffer_hits: Counter[str] = field(default_factory=Counter)
    buffer_misses: Counter[str] = field(default_factory=Counter)
    #: Loads satisfied by LSQ store-to-load forwarding.
    lsq_forwards: int = 0
    #: Peak bytes occupied by partial outputs (on-chip + spilled).
    partial_peak_bytes: int = 0
    #: Bytes of partial outputs that overflowed to DRAM.
    partial_spill_bytes: int = 0
    #: Total partial outputs produced (for footprint-reduction ratios).
    partials_produced: int = 0
    #: Frontend memory requests issued (LSQ occupancy proxy).
    requests_issued: int = 0
    #: Sampled (partials_produced, footprint_bytes) pairs -- the Fig. 10
    #: "memory usage over time" curve.  One sample per
    #: ``PARTIAL_TIMELINE_STRIDE`` partials keeps it cheap.
    partial_timeline: List[Tuple[int, int]] = field(default_factory=list)

    #: Sampling stride of :attr:`partial_timeline`.
    PARTIAL_TIMELINE_STRIDE: ClassVar[int] = 64

    def sample_partial_footprint(self, footprint_bytes: int) -> None:
        """Record one footprint sample (strided; call on every update)."""
        if self.partials_produced % self.PARTIAL_TIMELINE_STRIDE == 0:
            self.partial_timeline.append((self.partials_produced, footprint_bytes))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def alu_utilization(self) -> float:
        """Fraction of run cycles in which the PE array did useful MACs."""
        return self.busy_cycles / self.cycles if self.cycles else 0.0

    def hit_rate(self) -> float:
        """Buffer hit fraction over all tags (LSQ forwards count as hits:
        the target data was found on-chip)."""
        hits = sum(self.buffer_hits.values()) + self.lsq_forwards
        total = hits + sum(self.buffer_misses.values())
        return hits / total if total else 0.0

    def hit_rate_for(self, tag: str) -> float:
        """Buffer hit fraction for a single traffic tag.

        Raises ``ValueError`` for tags outside :data:`TRAFFIC_TAGS`
        (an unknown tag would silently report 0.0 via Counter default
        indexing, which reads like "all misses" rather than "typo").
        """
        validate_tags((tag,), "hit_rate_for")
        hits = self.buffer_hits[tag]
        total = hits + self.buffer_misses[tag]
        return hits / total if total else 0.0

    def dram_total_bytes(self) -> int:
        """All off-chip traffic, read + write."""
        return sum(self.dram_read_bytes.values()) + sum(self.dram_write_bytes.values())

    def dram_breakdown(self) -> Dict[str, int]:
        """Read+write bytes per traffic tag (Fig. 11 stacking)."""
        tags = set(self.dram_read_bytes) | set(self.dram_write_bytes)
        return {
            tag: self.dram_read_bytes[tag] + self.dram_write_bytes[tag]
            for tag in sorted(tags)
        }

    def partial_reduction(self, line_bytes: int = 64) -> float:
        """Fractional reduction of partial-output footprint vs the naive
        one-entry-per-partial baseline (Fig. 10 ratio).

        ``line_bytes`` is the buffer line size the footprint is
        normalised by -- pass the run's configured line size
        (``HyMMConfig.line_bytes``) rather than relying on the default.
        """
        naive = self.partials_produced
        if naive == 0:
            return 0.0
        # Footprint is tracked in bytes; normalise by the naive count in
        # lines of the same size.  partial_peak_bytes / line is <= naive.
        return 1.0 - (self.partial_peak_bytes / max(1, naive * line_bytes))

    def merge(self, other: "SimStats") -> None:
        """Fold another phase's counters into this one (cycles add;
        peaks take the max; timelines concatenate).

        Tags of ``other``'s per-tag counters are validated against
        :data:`TRAFFIC_TAGS` -- merging is the aggregation boundary, so
        an undeclared tag raises ``ValueError`` here instead of leaking
        a phantom traffic component into figure stacks.
        """
        validate_tags(
            set(other.dram_read_bytes)
            | set(other.dram_write_bytes)
            | set(other.buffer_hits)
            | set(other.buffer_misses),
            "merge",
        )
        self.cycles += other.cycles
        self.busy_cycles += other.busy_cycles
        self.dram_read_bytes.update(other.dram_read_bytes)
        self.dram_write_bytes.update(other.dram_write_bytes)
        self.buffer_hits.update(other.buffer_hits)
        self.buffer_misses.update(other.buffer_misses)
        self.lsq_forwards += other.lsq_forwards
        self.partial_peak_bytes = max(self.partial_peak_bytes, other.partial_peak_bytes)
        self.partial_spill_bytes += other.partial_spill_bytes
        self.partials_produced += other.partials_produced
        self.requests_issued += other.requests_issued
        self.partial_timeline.extend(other.partial_timeline)

    # ------------------------------------------------------------------
    # Phase attribution (repro.obs)
    # ------------------------------------------------------------------
    def copy(self) -> "SimStats":
        """Deep snapshot of every counter (timeline entries are
        immutable tuples, so a list copy suffices)."""
        return SimStats(
            cycles=self.cycles,
            busy_cycles=self.busy_cycles,
            dram_read_bytes=Counter(self.dram_read_bytes),
            dram_write_bytes=Counter(self.dram_write_bytes),
            buffer_hits=Counter(self.buffer_hits),
            buffer_misses=Counter(self.buffer_misses),
            lsq_forwards=self.lsq_forwards,
            partial_peak_bytes=self.partial_peak_bytes,
            partial_spill_bytes=self.partial_spill_bytes,
            partials_produced=self.partials_produced,
            requests_issued=self.requests_issued,
            partial_timeline=list(self.partial_timeline),
        )

    def delta_since(self, baseline: "SimStats") -> "SimStats":
        """The merge-inverse: a snapshot such that folding every phase's
        delta back together with :meth:`merge` reproduces the whole-run
        aggregate exactly.

        * additive fields subtract (``baseline`` must be an earlier
          snapshot of the same run, so deltas are non-negative);
        * per-tag counters keep only the keys that changed, which keeps
          ``merge`` from resurrecting zero-valued entries;
        * ``partial_peak_bytes`` carries the *running* peak at the end
          of the phase -- ``merge`` takes the max, and the running peak
          is monotone, so the fold lands on the final peak;
        * ``partial_timeline`` is the suffix of new samples --
          ``merge`` concatenates, so the fold rebuilds the full curve.
        """

        def counter_delta(cur: Counter[str], base: Counter[str]) -> Counter[str]:
            return Counter(
                {tag: cur[tag] - base[tag] for tag in cur if cur[tag] != base[tag]}
            )

        return SimStats(
            cycles=self.cycles - baseline.cycles,
            busy_cycles=self.busy_cycles - baseline.busy_cycles,
            dram_read_bytes=counter_delta(
                self.dram_read_bytes, baseline.dram_read_bytes
            ),
            dram_write_bytes=counter_delta(
                self.dram_write_bytes, baseline.dram_write_bytes
            ),
            buffer_hits=counter_delta(self.buffer_hits, baseline.buffer_hits),
            buffer_misses=counter_delta(
                self.buffer_misses, baseline.buffer_misses
            ),
            lsq_forwards=self.lsq_forwards - baseline.lsq_forwards,
            partial_peak_bytes=self.partial_peak_bytes,
            partial_spill_bytes=self.partial_spill_bytes
            - baseline.partial_spill_bytes,
            partials_produced=self.partials_produced
            - baseline.partials_produced,
            requests_issued=self.requests_issued - baseline.requests_issued,
            partial_timeline=self.partial_timeline[
                len(baseline.partial_timeline):
            ],
        )

    # ------------------------------------------------------------------
    # Lossless serialisation (runtime result cache / cross-process)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Every counter, round-trippable through :meth:`from_dict`
        (unlike :meth:`as_dict`, which is a report-oriented summary)."""
        return {
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "dram_read_bytes": dict(self.dram_read_bytes),
            "dram_write_bytes": dict(self.dram_write_bytes),
            "buffer_hits": dict(self.buffer_hits),
            "buffer_misses": dict(self.buffer_misses),
            "lsq_forwards": self.lsq_forwards,
            "partial_peak_bytes": self.partial_peak_bytes,
            "partial_spill_bytes": self.partial_spill_bytes,
            "partials_produced": self.partials_produced,
            "requests_issued": self.requests_issued,
            "partial_timeline": [list(pair) for pair in self.partial_timeline],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cycles=data["cycles"],
            busy_cycles=data["busy_cycles"],
            dram_read_bytes=Counter(data["dram_read_bytes"]),
            dram_write_bytes=Counter(data["dram_write_bytes"]),
            buffer_hits=Counter(data["buffer_hits"]),
            buffer_misses=Counter(data["buffer_misses"]),
            lsq_forwards=data["lsq_forwards"],
            partial_peak_bytes=data["partial_peak_bytes"],
            partial_spill_bytes=data["partial_spill_bytes"],
            partials_produced=data["partials_produced"],
            requests_issued=data["requests_issued"],
            partial_timeline=[tuple(pair) for pair in data["partial_timeline"]],
        )

    def as_dict(self) -> Dict[str, Any]:
        """Flat dictionary for report tables.

        Carries the same counter set as :meth:`to_dict` (plus derived
        metrics); the raw timeline is compressed to a summary since
        reports never replay individual samples.
        """
        return {
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "alu_utilization": self.alu_utilization(),
            "hit_rate": self.hit_rate(),
            "dram_total_bytes": self.dram_total_bytes(),
            "dram_breakdown": self.dram_breakdown(),
            "lsq_forwards": self.lsq_forwards,
            "partial_peak_bytes": self.partial_peak_bytes,
            "partial_spill_bytes": self.partial_spill_bytes,
            "partials_produced": self.partials_produced,
            "requests_issued": self.requests_issued,
            "partial_timeline": {
                "samples": len(self.partial_timeline),
                "peak_footprint_bytes": max(
                    (fp for _, fp in self.partial_timeline), default=0
                ),
            },
        }
