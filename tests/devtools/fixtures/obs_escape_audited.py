"""Audited emitter for the obs-hygiene transitive tests.

Loaded as ``repro.sim.audited_emitter`` -- inside the rule's
``audited`` packages, whose emission sites are vetted by review, so a
call into it from kernel code is exempt even though the emission here
is unguarded.
"""


def engine_emit(tracer, name, cycle):
    tracer.instant(name, cycle)
