"""Serialisation helpers shared by the result cache, manifests and CLI.

Two concerns live here:

* **Exact array round-trips** -- simulated outputs must survive
  disk/process boundaries bit-identically, so arrays travel as
  base64-encoded little-endian raw bytes plus dtype/shape, not as
  decimal text.
* **Best-effort JSON sanitising** -- experiment dicts and
  ``RunResult.extra`` mix scalars with live objects (region plans, CSR
  matrices, callables).  :func:`sanitize_extra` keeps what JSON can
  hold, records what it dropped, and is idempotent so a round-tripped
  result re-serialises to the same bytes.
"""

from __future__ import annotations

import base64
from typing import Any, Dict, List, Tuple

import numpy as np

_SCALARS = (str, int, float, bool, type(None))


def array_to_dict(array: np.ndarray) -> Dict[str, Any]:
    """Encode one ndarray exactly (dtype, shape, raw bytes)."""
    contiguous = np.ascontiguousarray(array)
    little = contiguous.astype(contiguous.dtype.newbyteorder("<"), copy=False)
    return {
        "dtype": str(contiguous.dtype.name),
        "shape": list(contiguous.shape),
        "data_b64": base64.b64encode(little.tobytes()).decode("ascii"),
    }


def array_from_dict(data: Dict[str, Any]) -> np.ndarray:
    """Decode an :func:`array_to_dict` record back to the exact array."""
    dtype = np.dtype(data["dtype"]).newbyteorder("<")
    flat = np.frombuffer(base64.b64decode(data["data_b64"]), dtype=dtype)
    return flat.astype(np.dtype(data["dtype"]), copy=False).reshape(data["shape"])


def _jsonable_or_none(value: Any) -> Tuple[bool, Any]:
    if isinstance(value, _SCALARS):
        return True, value
    if isinstance(value, (np.integer,)):
        return True, int(value)
    if isinstance(value, (np.floating,)):
        return True, float(value)
    if isinstance(value, (np.bool_,)):
        return True, bool(value)
    if isinstance(value, (list, tuple)):
        items = [_jsonable_or_none(v) for v in value]
        if all(ok for ok, _ in items):
            return True, [v for _, v in items]
        return False, None
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            ok, conv = _jsonable_or_none(v)
            if not ok or not isinstance(k, _SCALARS):
                return False, None
            out[str(k)] = conv
        return True, out
    return False, None


def sanitize_extra(extra: Dict[str, Any]) -> Dict[str, Any]:
    """JSON-safe view of a ``RunResult.extra`` dict.

    Scalars and (nested) containers of scalars pass through; anything
    else (region plans, CSR matrices, arrays) is dropped and its key
    recorded under ``"_dropped"``.  Idempotent: sanitising an already
    sanitised dict returns an equal dict.
    """
    out: Dict[str, Any] = {}
    dropped: List[str] = []
    for key, value in extra.items():
        if key == "_dropped":
            continue
        ok, conv = _jsonable_or_none(value)
        if ok:
            out[key] = conv
        else:
            dropped.append(key)
    previous = extra.get("_dropped", [])
    merged = sorted(set(previous) | set(dropped))
    if merged:
        out["_dropped"] = merged
    return out


def to_jsonable(value: Any) -> Any:
    """Recursively convert a value for ``json.dump``.

    Unlike :func:`sanitize_extra` this never errors: numpy scalars and
    arrays become Python numbers and nested lists, unknown objects
    become their ``repr``.  Meant for experiment-output JSON files and
    manifests, where lossy-but-complete beats exact-but-partial.
    """
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [to_jsonable(v) for v in value]
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        try:
            return to_jsonable(to_dict())
        except Exception:
            return repr(value)
    return repr(value)
