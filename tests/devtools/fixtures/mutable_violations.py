"""Fixture: shared-mutable-state hazards.  Never imported, only parsed."""
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List


def bad_default(jobs=[]):              # line 7: mutable default argument
    jobs.append(1)
    return jobs


def bad_kwonly(*, memo={}):            # line 12: mutable kw-only default
    return memo


@dataclass
class PoolRecord:
    SHARED = {}                        # line 18: mutable class attribute

    name: str = ""
    tags: List[str] = field(default=[])        # line 21: field(default=[...])
    counts: Counter = Counter()        # line 22: bare mutable-call default


@dataclass
class CleanRecord:
    tags: List[str] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)


def clean(jobs=None, limit=10, mode=("a", "b")):
    return jobs, limit, mode
