"""Fixture for the ``telemetry-hygiene`` rule: every way to register a
metric badly, plus the clean patterns that must stay silent.

Long lines are deliberate: the rule reports at the ``Call`` node's
line, so each registration sits on one line the tests can point at.
"""


class FakeRegistry:
    def counter(self, name, help="", labelnames=()):
        return self

    def gauge(self, name, help="", labelnames=()):
        return self

    def histogram(self, name, help="", labelnames=()):
        return self

    def labels(self, *values):
        return self

    def inc(self, amount=1):
        return None


registry = FakeRegistry()


def dynamic_names(kind, computed):
    registry.counter(f"repro_{kind}_total", "f-string metric name")
    registry.gauge("repro_" + computed, "concatenated metric name")
    name = "repro_var_total"
    registry.histogram(name, "variable metric name")
    registry.counter()


def bad_name_shapes():
    registry.counter("repro_bad-name_total", "dash violates the grammar")
    registry.gauge("queue_depth", "missing the repo prefix")


def duplicate_sites():
    first = registry.counter("repro_dup_total", "first registration site")
    second = registry.counter("repro_dup_total", "duplicate registration site")
    return first, second


def bad_labelnames(dims):
    registry.counter("repro_l1_total", "computed labelnames", labelnames=dims)
    registry.counter("repro_l2_total", "non-literal entry", labelnames=("a", dims))
    registry.counter("repro_l3_total", "too many", labelnames=("a", "b", "c", "d", "e"))


def inline_label_values(counter, job_id):
    counter.labels(f"job-{job_id}").inc()
    counter.labels("job-" + job_id).inc()


def clean_patterns(status):
    good = registry.counter("repro_ok_total", "literal, prefixed, once", labelnames=("status",))
    good.labels(status).inc()
    good.labels("hit").inc()
    return good


def suppressed(kind):
    registry.counter(f"repro_{kind}_sup", "by design")  # analyzer: allow[telemetry-hygiene]


def non_registry_receiver(tracer):
    # The Tracer API's counter() is simulated-time tracing, not a
    # metrics registration -- obs-hygiene territory, not this rule's.
    tracer.counter("occupancy", 0, {"lines": 1})
