"""Design-space sweeps: tiling threshold and DMB capacity.

Section IV-E fixes the tiling threshold at 20% of the nodes and the DMB
at 256 KB; these sweeps show the neighbourhood of those choices,
pairing each DMB size with its silicon cost from the Table III area
model.

The sweep points are expressed as :class:`repro.runtime.JobSpec`\\ s and
executed through ``repro.bench.runner.run_sweep``, so they fan out over
``REPRO_BENCH_JOBS`` worker processes (default: serial) and share the
runner's caches.
"""

import os

from repro.area import AreaModel
from repro.bench import format_table
from repro.bench.runner import job_spec, run_sweep
from repro.hymm import HyMMConfig

_DATASET = "amazon-photo"
_N_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def _sweep_results(configs):
    """Run one spec per config through the runtime; returns results in
    config order."""
    specs = [job_spec(_DATASET, "hymm", config=cfg) for cfg in configs]
    sweep = run_sweep(specs, n_jobs=_N_JOBS)
    return [sweep.for_spec(spec) for spec in specs]


def test_threshold_sweep(benchmark, emit):
    fractions = (0.05, 0.1, 0.2, 0.4, 0.8)

    def sweep():
        configs = [
            HyMMConfig(dmb_bytes=64 * 1024, threshold_fraction=frac)
            for frac in fractions
        ]
        rows = []
        for frac, r in zip(fractions, _sweep_results(configs)):
            rows.append([
                f"{int(frac * 100)}%",
                r.stats.cycles,
                r.stats.dram_total_bytes() / (1024 * 1024),
                r.stats.hit_rate(),
            ])
        return rows, format_table(
            ["threshold", "cycles", "DRAM MB", "hit rate"], rows
        )

    rows, text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("sweep_threshold", text)
    cycles = [row[1] for row in rows]
    # The paper's 20% sits in the flat part of the curve: within 25% of
    # the sweep's best.
    paper_choice = cycles[list(fractions).index(0.2)]
    assert paper_choice <= min(cycles) * 1.25


def test_dmb_size_sweep(benchmark, emit):
    sizes_kb = (16, 64, 256, 1024)

    def sweep():
        configs = [HyMMConfig(dmb_bytes=kb * 1024) for kb in sizes_kb]
        rows = []
        for kb, cfg, r in zip(sizes_kb, configs, _sweep_results(configs)):
            area = AreaModel(cfg).total_mm2("7nm")
            rows.append([
                f"{kb} KB",
                r.stats.cycles,
                r.stats.dram_total_bytes() / (1024 * 1024),
                area,
            ])
        return rows, format_table(
            ["DMB", "cycles", "DRAM MB", "area mm^2 (7nm)"], rows
        )

    rows, text = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("sweep_dmb_size", text)
    cycles = [row[1] for row in rows]
    areas = [row[3] for row in rows]
    # Bigger buffers never hurt performance and always cost area.
    assert cycles == sorted(cycles, reverse=True) or min(cycles) == cycles[-1]
    assert areas == sorted(areas)
