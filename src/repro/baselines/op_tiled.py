"""Output-tiled outer-product baseline (GCNAX's loop-tiling design point).

The plain :class:`repro.baselines.op.OPAccelerator` scatters partial
outputs across the whole output matrix and pays the thrash the paper
attributes to OP engines.  The *tiled* variant models what GCNAX's
flexible loop optimisation actually buys: the output is processed in
row bands sized to the on-chip partial-sum capacity, so every partial
accumulation hits on-chip -- at the price of re-streaming the dense
operand once per band (each band's columns need their dense rows again)
and re-reading per-band sparse pointers.

This is the classic locality trade: partial-output locality bought with
input-stream redundancy.  On power-law graphs nearly every column has a
non-zero in every band, so the dense matrix is re-streamed almost
``n_bands`` times -- which is exactly the traffic HyMM's region
1 / region 2 split avoids.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.gcn.model import GCNModel
from repro.hymm.base import AcceleratorBase
from repro.hymm.config import HyMMConfig
from repro.hymm.kernels import KernelContext, aggregation_op, combination_op
from repro.sparse import COOMatrix, CSCMatrix, CSRMatrix, coo_to_csc
from repro.sparse.coo import VALUE_DTYPE


def _row_bands(coo: COOMatrix, band_rows: int) -> List[Tuple[int, CSCMatrix]]:
    """Slice a matrix into row bands, each in CSC for the OP engine."""
    n = coo.shape[0]
    bands = []
    for lo in range(0, n, band_rows):
        hi = min(lo + band_rows, n)
        block = coo.submatrix(lo, hi, 0, coo.shape[1])
        if block.nnz:
            bands.append((lo, coo_to_csc(block)))
    return bands


class TiledOPAccelerator(AcceleratorBase):
    """Outer product with output-row tiling (GCNAX-with-tiling proxy).

    ``band_rows=None`` sizes bands to the partial-sum capacity of the
    buffer organisation (half the buffer for the default split
    organisation), guaranteeing on-chip accumulation.  Accumulation
    within a resident band is charged like a fused MAC (GCNAX's PEs
    accumulate into their partial-sum buffer at one op per non-zero).
    """

    name = "op-tiled"

    def __init__(
        self,
        config: Optional[HyMMConfig] = None,
        band_rows: Optional[int] = None,
    ) -> None:
        if config is None:
            config = HyMMConfig(unified_buffer=False)
        super().__init__(config)
        if band_rows is not None and band_rows <= 0:
            raise ValueError("band_rows must be positive")
        self._explicit_band = band_rows

    def band_rows(self, width: int) -> int:
        """Rows per output band for ``width``-element output rows."""
        if self._explicit_band is not None:
            return self._explicit_band
        lines = self.config.capacity_lines
        if not self.config.unified_buffer:
            lines //= 2  # partials live in the output half
        # Keep a small streaming margin, as HyMM's planner does.
        usable = max(1, int(lines * 0.9))
        return max(1, usable // self.config.lines_per_row(width))

    def prepare(self, model: GCNModel) -> dict:
        prep = super().prepare(model)
        h = model.dataset.hidden_dim
        band = self.band_rows(h)
        prep["adj_bands"] = _row_bands(model.norm_adj, band)
        prep["feature_bands"] = _row_bands(model.dataset.features.to_coo(), band)
        prep["band_rows"] = band
        return prep

    def _run_banded(
        self,
        ctx: KernelContext,
        bands: List[Tuple[int, CSCMatrix]],
        kernel: "Callable[..., np.ndarray]",
        operand: np.ndarray,
        out_rows: int,
        width: int,
    ) -> np.ndarray:
        out = np.zeros((out_rows, width), dtype=VALUE_DTYPE)
        tracer = ctx.engine.tracer
        for lo, band_csc in bands:
            t0 = ctx.engine.drain()
            kernel(
                ctx,
                band_csc,
                operand,
                out=out,
                row_offset=lo,
                merge_mode="dmb",  # resident-band accumulation (see class doc)
                extra_pointers=1,
                finalize=True,
            )
            if tracer.enabled:
                tracer.span(
                    "op-band", t0, ctx.engine.drain(), "region",
                    {"row_lo": int(lo), "rows": int(band_csc.shape[0])},
                )
        return out

    def run_combination(
        self, ctx: KernelContext, prep: dict, features: CSRMatrix, weights: np.ndarray
    ) -> np.ndarray:
        return self._run_banded(
            ctx,
            prep["feature_bands"],
            combination_op_banded,
            weights,
            features.shape[0],
            weights.shape[1],
        )

    def run_aggregation(self, ctx: KernelContext, prep: dict, xw: np.ndarray) -> np.ndarray:
        return self._run_banded(
            ctx,
            prep["adj_bands"],
            aggregation_op,
            xw,
            xw.shape[0],
            xw.shape[1],
        )


def combination_op_banded(
    ctx: KernelContext,
    features_band_csc: CSCMatrix,
    weights: np.ndarray,
    out: np.ndarray,
    row_offset: int,
    merge_mode: str = "dmb",
    extra_pointers: int = 1,
    finalize: bool = True,
) -> np.ndarray:
    """One output band of an outer-product combination.

    Wraps :func:`repro.hymm.kernels.combination_op` on a row band and
    scatters its result into the full output at ``row_offset``; the
    weight rows of the band's non-empty columns are re-streamed, which
    is the tiling's traffic cost.
    """
    band_out = combination_op(ctx, features_band_csc, weights, merge_mode=merge_mode)
    rows = features_band_csc.shape[0]
    out[row_offset:row_offset + rows] += band_out
    return out
