"""Rule ``loop-affinity``: thread-side writes to loop-shared state.

PR 6's server deliberately splits work across two worlds: the asyncio
event loop owns the connection handlers, the single-flight table and
the metrics payloads, while cache probes and simulation batches run on
worker threads (``asyncio.to_thread``, the executor pool).  The
contract at the boundary is that worker-thread code either works on
private data or marshals back onto the loop with
``loop.call_soon_threadsafe`` -- a bare ``self.hits += 1`` from a
worker while the loop concurrently renders ``stats()`` is a data race
(``+=`` is a read-modify-write, not atomic), and the kind that stays
invisible until a sweep hammers the server from many clients.

The rule cross-references both worlds over the call graph:

1. *thread side*: every function in the closure of the scope's
   ``to_thread`` / executor / ``Thread(target=...)`` hand-offs
   (:meth:`CallGraph.thread_witness` -- ``loopsafe`` references and
   async callees are excluded by construction).  In each, collect
   attribute stores rooted at ``self`` (``self.hits += 1``,
   ``self._index[k] = v``, ``self.stats.corrupt += 1``) that are not
   under a ``with <...lock...>:`` block;
2. *loop side*: every function reachable from an ``async def`` in
   scope over plain call edges plus ``call_soon_threadsafe``
   references.  In each method, collect the ``self.<attr>`` slots it
   loads or stores.

A thread-side store whose ``(class, attribute)`` -- matched across the
class hierarchy, so a write in ``ShardedResultCache`` meets a read in
``ResultCache.stats`` -- is also touched loop-side is a finding at the
store, with the thread chain from the hand-off in the message.

Two sanctioned patterns pass by construction: mutations under a
``with self._lock:`` (any context manager whose name contains "lock"),
and callbacks hopped through ``loop.call_soon_threadsafe`` (those are
``loopsafe`` edges, never thread-reachable).  Mutations rooted at
non-``self`` parameters are out of scope here -- without an owning
class there is no loop-side slot to match against.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer.callgraph import (
    KIND_CALL,
    KIND_LOOPSAFE,
    CallGraph,
    FunctionInfo,
    get_callgraph,
)
from repro.devtools.analyzer.core import Finding, Project, Rule, register


@register
class LoopAffinityRule(Rule):
    name = "loop-affinity"
    description = (
        "state shared with the event loop must not be mutated from "
        "worker-thread-reachable code without a lock or "
        "call_soon_threadsafe"
    )
    default_severity = "error"
    default_options = {
        "scope": ["repro.serve"],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        graph = get_callgraph(project)
        witness = graph.thread_witness(*scope)
        if not witness:
            return
        loop_touches = _loop_side_touches(graph, scope)
        if not loop_touches:
            return
        for qname in sorted(witness):
            info = graph.functions.get(qname)
            if info is None or info.class_name is None:
                continue
            owner = _owning_class(graph, info)
            if owner is None:
                continue
            related = graph.related_classes(owner)
            for attr, node, locked in _self_mutations(info.node):
                if locked:
                    continue
                reader = _loop_reader(loop_touches, related, attr)
                if reader is None:
                    continue
                chain = " -> ".join(
                    _short(graph, q) for q in graph.thread_chain(qname, witness)
                )
                yield self.finding(
                    project, info.module, node,
                    f"`self.{attr}` is mutated on a worker thread "
                    f"({chain}) while the event loop touches it via "
                    f"`{_short(graph, reader)}`; guard both sides with a "
                    "lock or marshal the update through "
                    "`loop.call_soon_threadsafe`",
                    symbol=f"{info.class_name}.{attr}",
                )


def _short(graph: CallGraph, qname: str) -> str:
    info = graph.functions.get(qname)
    if info is None:
        return qname
    return f"{info.class_name}.{info.name}" if info.class_name else info.name


def _owning_class(graph: CallGraph, info: FunctionInfo) -> Optional[str]:
    """Qname of the class whose method table holds ``info``."""
    for cls in graph.classes.values():
        if cls.methods.get(info.name) == info.qname:
            return cls.qname
    return None


def _loop_side_touches(
    graph: CallGraph, scope: Tuple[str, ...]
) -> Dict[Tuple[str, str], str]:
    """(class qname, attr) -> one loop-side function touching it."""
    reachable: Set[str] = {i.qname for i in graph.async_functions(*scope)}
    worklist = list(reachable)
    while worklist:
        qname = worklist.pop()
        for site in graph.sites(qname):
            if site.kind not in (KIND_CALL, KIND_LOOPSAFE):
                continue
            if site.callee is not None and site.callee not in reachable:
                reachable.add(site.callee)
                worklist.append(site.callee)
    touches: Dict[Tuple[str, str], str] = {}
    for qname in sorted(reachable):
        info = graph.functions.get(qname)
        if info is None or info.class_name is None:
            continue
        owner = _owning_class(graph, info)
        if owner is None:
            continue
        for attr in _self_attrs(info.node):
            touches.setdefault((owner, attr), qname)
    return touches


def _loop_reader(
    touches: Dict[Tuple[str, str], str], related: Set[str], attr: str
) -> Optional[str]:
    for cls in related:
        reader = touches.get((cls, attr))
        if reader is not None:
            return reader
    return None


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Own-body nodes of ``fn``, nested definitions excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _self_attrs(fn: ast.AST) -> Set[str]:
    """First-level ``self.<attr>`` slots loaded or stored in ``fn``'s
    own body (nested defs excluded -- they are separate graph nodes)."""
    attrs: Set[str] = set()
    for node in _own_nodes(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            attrs.add(node.attr)
    return attrs


def _self_mutations(fn: ast.AST) -> Iterator[Tuple[str, ast.AST, bool]]:
    """(attr, node, under_lock) for each ``self``-rooted store.

    The attribute is the *first-level* slot: ``self.stats.corrupt += 1``
    mutates the object held in slot ``stats``.
    """
    yield from _walk_mutations(list(ast.iter_child_nodes(fn)), False)


def _walk_mutations(
    nodes: List[ast.AST], locked: bool
) -> Iterator[Tuple[str, ast.AST, bool]]:
    for node in nodes:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        if isinstance(node, ast.With):
            inner = locked or any(
                _is_lockish(item.context_expr) for item in node.items
            )
            yield from _walk_mutations(list(node.body), inner)
            continue
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                attr = _self_slot(target)
                if attr is not None:
                    yield attr, node, locked
        yield from _walk_mutations(list(ast.iter_child_nodes(node)), locked)


def _self_slot(target: ast.AST) -> Optional[str]:
    """First-level attr of a ``self``-rooted store target, else None."""
    node: ast.AST = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        parent = node.value
        if isinstance(parent, ast.Name) and parent.id == "self":
            return node.attr if isinstance(node, ast.Attribute) else None
        node = parent
    return None


def _is_lockish(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Call):
        expr = expr.func
    text = ""
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            text += node.attr.lower()
        elif isinstance(node, ast.Name):
            text += node.id.lower()
    return "lock" in text or "mutex" in text