"""Sweep accounting: per-job records and the run manifest.

Every :class:`~repro.runtime.executor.SweepExecutor` run produces one
:class:`RunManifest` -- how many jobs were queued, which came from the
cache, which executed where (pool worker vs in-process serial), how
many attempts and seconds each took, and what failed with which error.
The bench CLI prints the summary line and can persist the whole
manifest as JSON next to the cache.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runtime.job import JobSpec

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platform
    resource = None  # type: ignore[assignment]

#: Job states a record can end in.
STATUS_DONE = "done"
STATUS_FAILED = "failed"
STATUS_CACHE_HIT = "cache-hit"


def peak_rss_kb() -> Optional[int]:
    """Peak resident set size of the calling process, in KiB.

    ``None`` where :mod:`resource` is unavailable.  ``ru_maxrss`` is
    kilobytes on Linux but bytes on macOS.
    """
    if resource is None:
        return None
    rss = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    if sys.platform == "darwin":
        rss //= 1024
    return rss


@dataclass
class JobRecord:
    """Outcome of one job within a sweep."""

    fingerprint: str
    label: str
    status: str
    attempts: int = 0
    wall_seconds: float = 0.0
    worker: str = "serial"  # "pool", "serial", or "cache"
    error: Optional[str] = None
    #: Peak RSS of the process that ran the job, at the time the job
    #: finished.  A high-water mark, not a per-job delta: jobs sharing a
    #: worker share the worker's peak.  ``None`` for cache hits.
    max_rss_kb: Optional[int] = None
    timed_out: bool = False
    #: Telemetry correlation ID of the request that caused this job
    #: (``JobSpec.corr_id``); ``None`` outside the serve path or with
    #: telemetry off -- and then absent from the serialised record, so
    #: pre-telemetry manifests are byte-identical.
    corr_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "fingerprint": self.fingerprint,
            "label": self.label,
            "status": self.status,
            "attempts": self.attempts,
            "wall_seconds": self.wall_seconds,
            "worker": self.worker,
            "error": self.error,
            "max_rss_kb": self.max_rss_kb,
            "timed_out": self.timed_out,
        }
        if self.corr_id is not None:
            doc["corr_id"] = self.corr_id
        return doc


@dataclass
class RunManifest:
    """Aggregated accounting for one sweep."""

    n_jobs: int = 1
    records: List[JobRecord] = field(default_factory=list)
    started_unix: float = field(default_factory=time.time)
    wall_seconds: float = 0.0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    #: Phase-trace replay accounting across every executed job: phases
    #: served from the trace store vs simulated live and recorded (the
    #: record-on-miss, replay-on-hit production path).  Both stay zero
    #: when replay is disabled (``REPRO_TRACE_DIR=off``) or every job
    #: was a result-cache hit.
    replay_hits: int = 0
    replay_misses: int = 0

    # ------------------------------------------------------------------
    def add(self, record: JobRecord) -> None:
        self.records.append(record)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def executed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_DONE)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_FAILED)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.records if r.status == STATUS_CACHE_HIT)

    @property
    def cache_misses(self) -> int:
        """Jobs the cache could not serve (executed or failed)."""
        return self.total - self.cache_hits

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def timeouts(self) -> int:
        return sum(1 for r in self.records if r.timed_out)

    @property
    def retries(self) -> int:
        """Extra attempts beyond the first, summed over all jobs."""
        return sum(max(0, r.attempts - 1) for r in self.records)

    @property
    def peak_rss_kb(self) -> Optional[int]:
        """Highest per-process peak RSS seen by any job, in KiB."""
        values = [r.max_rss_kb for r in self.records if r.max_rss_kb]
        return max(values) if values else None

    def failures(self) -> List[JobRecord]:
        return [r for r in self.records if r.status == STATUS_FAILED]

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One line for the CLI: totals, hit rate, failures, wall."""
        parts = [
            f"{self.total} job{'s' if self.total != 1 else ''}:",
            f"{self.executed} simulated,",
            f"{self.cache_hits} cache hit{'s' if self.cache_hits != 1 else ''}"
            f" ({self.hit_rate:.0%}),",
            f"{self.failed} failed;",
            f"{self.n_jobs} worker{'s' if self.n_jobs != 1 else ''},",
            f"{self.wall_seconds:.1f}s wall",
        ]
        if self.timeouts:
            parts.append(f"({self.timeouts} timed out)")
        if self.replay_hits or self.replay_misses:
            parts.append(
                f"[replay {self.replay_hits}/"
                f"{self.replay_hits + self.replay_misses} phases]"
            )
        rss = self.peak_rss_kb
        if rss is not None:
            parts.append(f"[peak RSS {rss / 1024:.0f} MB]")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "summary": self.summary(),
            "n_jobs": self.n_jobs,
            "started_unix": self.started_unix,
            "wall_seconds": self.wall_seconds,
            "total": self.total,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "failed": self.failed,
            "hit_rate": self.hit_rate,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "peak_rss_kb": self.peak_rss_kb,
            "replay_hits": self.replay_hits,
            "replay_misses": self.replay_misses,
            "cache_stats": dict(self.cache_stats),
            "jobs": [r.to_dict() for r in self.records],
        }


def record_label(spec: JobSpec) -> str:
    return spec.describe()
