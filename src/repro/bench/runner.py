"""Shared simulation runner on top of the ``repro.runtime`` subsystem.

Execution policy lives in :mod:`repro.runtime`; this module keeps the
bench-facing conveniences: a bounded in-process memo (keyed by the
runtime job fingerprint, LRU-evicted so unbounded sweeps cannot grow
memory without limit), an optional process-wide disk cache and worker
count configured once by the CLI (:func:`configure_runtime`), and the
aggregation-phase metric helpers the figure generators read.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hymm import HyMMConfig
from repro.hymm.base import RunResult
from repro.sim import SimStats
from repro.runtime import (
    JobSpec,
    ResultCache,
    SweepExecutor,
    SweepResult,
    execute_spec,
    make_accelerator,
)
from repro.bench.workloads import bench_scale

__all__ = [
    "DEFAULT_ACCELERATORS",
    "ALL_ACCELERATORS",
    "make_accelerator",
    "job_spec",
    "configure_runtime",
    "runtime_settings",
    "run_accelerator",
    "run_suite",
    "run_sweep",
    "prime_cache",
    "aggregation_cycles",
    "aggregation_utilization",
    "aggregation_hit_rate",
    "phase_snapshot_rows",
    "merged_phase_snapshot",
    "clear_cache",
]

#: The dataflows of the paper's Figure 7 comparison, plus extensions.
DEFAULT_ACCELERATORS = ("op", "rwp", "hymm")
ALL_ACCELERATORS = ("op", "rwp", "cwp", "gcod", "op-deferred", "op-tiled", "hymm")

#: In-process memo: job fingerprint -> RunResult, LRU-bounded.
_CACHE: "OrderedDict[str, RunResult]" = OrderedDict()
_MEMO_LIMIT = 256

#: Process-wide execution defaults (set by :func:`configure_runtime`).
_N_JOBS = 1
_DISK_CACHE: Optional[ResultCache] = None
#: Phase-trace record/replay through the shared trace tree.  On (the
#: production default) every uncached execution records its phase
#: traces and repeated executions replay them; ``False`` forces every
#: run fully live (the benchmarks' ``--no-replay`` escape hatch).
_REPLAY = True


def configure_runtime(
    n_jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    disk_cache: Optional[bool] = None,
    memo_limit: Optional[int] = None,
    replay: Optional[bool] = None,
) -> None:
    """Set process-wide execution defaults (used by the CLI).

    ``n_jobs`` is the default worker count for :func:`run_suite` /
    :func:`run_sweep`; ``disk_cache=True`` attaches a persistent
    :class:`ResultCache` (at ``cache_dir`` or the default location),
    ``disk_cache=False`` detaches it; ``memo_limit`` resizes the
    in-process memo; ``replay=False`` turns phase-trace record/replay
    off for every execution lane this module drives (replay never
    changes results -- see :mod:`repro.sim.replay` -- so this is a
    performance-measurement knob, not a correctness one).
    """
    global _N_JOBS, _DISK_CACHE, _MEMO_LIMIT, _REPLAY
    if n_jobs is not None:
        _N_JOBS = max(1, int(n_jobs))
    if disk_cache is True or (disk_cache is None and cache_dir is not None):
        _DISK_CACHE = ResultCache(cache_dir)
    elif disk_cache is False:
        _DISK_CACHE = None
    if memo_limit is not None:
        if memo_limit <= 0:
            raise ValueError("memo_limit must be positive")
        _MEMO_LIMIT = memo_limit
        while len(_CACHE) > _MEMO_LIMIT:
            _CACHE.popitem(last=False)
    if replay is not None:
        _REPLAY = bool(replay)


def runtime_settings() -> Dict[str, object]:
    """The current process-wide defaults (for tests and the CLI)."""
    return {
        "n_jobs": _N_JOBS,
        "disk_cache": _DISK_CACHE,
        "memo_limit": _MEMO_LIMIT,
        "memo_size": len(_CACHE),
        "replay": _REPLAY,
    }


def job_spec(
    dataset: str,
    kind: str,
    scale: Optional[float] = None,
    n_layers: int = 1,
    seed: int = 0,
    config: Optional[HyMMConfig] = None,
    sort_mode: Optional[str] = None,
) -> JobSpec:
    """Build the :class:`JobSpec` for one bench point, resolving
    ``scale=None`` to the dataset's bench scale."""
    return JobSpec(
        dataset=dataset,
        kind=kind,
        scale=bench_scale(dataset) if scale is None else scale,
        n_layers=n_layers,
        seed=seed,
        config=config,
        sort_mode=sort_mode,
    )


def _memo_put(fingerprint: str, result: RunResult) -> None:
    _CACHE[fingerprint] = result
    _CACHE.move_to_end(fingerprint)
    while len(_CACHE) > _MEMO_LIMIT:
        _CACHE.popitem(last=False)


def prime_cache(spec: JobSpec, result: RunResult) -> None:
    """Insert an externally produced result into the in-process memo
    (the CLI primes sweep results so figure generators hit memory)."""
    _memo_put(spec.fingerprint(), result)


def run_accelerator(
    dataset: str,
    kind: str,
    scale: Optional[float] = None,
    n_layers: int = 1,
    seed: int = 0,
    config: Optional[HyMMConfig] = None,
    cache: bool = True,
) -> RunResult:
    """Simulate one accelerator on one dataset (memoised).

    ``config=None`` uses each accelerator's paper-default configuration
    (HyMM unified buffer, baselines split buffers).  With ``cache=True``
    the in-process memo and, when configured, the persistent disk cache
    are consulted before simulating.
    """
    spec = job_spec(dataset, kind, scale, n_layers, seed, config)
    fingerprint = spec.fingerprint()
    if cache and fingerprint in _CACHE:
        _CACHE.move_to_end(fingerprint)
        return _CACHE[fingerprint]
    result: Optional[RunResult] = None
    if cache and _DISK_CACHE is not None:
        result = _DISK_CACHE.load(spec)
    if result is None:
        if _REPLAY:
            result = execute_spec(spec)
        else:
            result = execute_spec(spec, replay_session=None)
        if cache and _DISK_CACHE is not None:
            _DISK_CACHE.store(spec, result)
    if cache:
        _memo_put(fingerprint, result)
    return result


def run_suite(
    dataset: str,
    kinds=DEFAULT_ACCELERATORS,
    scale: Optional[float] = None,
    n_layers: int = 1,
    seed: int = 0,
    n_jobs: Optional[int] = None,
) -> Dict[str, RunResult]:
    """Simulate several accelerators on one dataset.

    ``n_jobs=None`` uses the process-wide default (1 unless the CLI was
    invoked with ``--jobs``); above 1 the kinds fan out over the
    runtime's process pool.
    """
    workers = _N_JOBS if n_jobs is None else max(1, int(n_jobs))
    if workers > 1:
        specs = [
            job_spec(dataset, kind, scale, n_layers, seed) for kind in kinds
        ]
        run_sweep(specs, n_jobs=workers)
    return {
        kind: run_accelerator(dataset, kind, scale=scale, n_layers=n_layers, seed=seed)
        for kind in kinds
    }


def run_sweep(
    specs: Sequence[JobSpec],
    n_jobs: Optional[int] = None,
    progress=None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> SweepResult:
    """Execute a batch of jobs through the runtime and prime the memo.

    Jobs already in the memo are served from it; the rest go through
    :class:`SweepExecutor` (disk cache, process pool, retry) with the
    process-wide defaults unless overridden.  Failed jobs are recorded
    in the returned manifest, not raised -- a later
    :func:`run_accelerator` call will retry them serially.
    """
    workers = _N_JOBS if n_jobs is None else max(1, int(n_jobs))
    sweep = SweepResult()
    todo = []
    for spec in specs:
        fingerprint = spec.fingerprint()
        if fingerprint in _CACHE:
            sweep.results[fingerprint] = _CACHE[fingerprint]
        else:
            todo.append(spec)
    if todo:
        executor = SweepExecutor(
            n_jobs=workers,
            cache=_DISK_CACHE,
            timeout=timeout,
            retries=retries,
            progress=progress,
            replay=_REPLAY,
        )
        executed = executor.run(todo)
        sweep.manifest = executed.manifest
        for fingerprint, result in executed.results.items():
            sweep.results[fingerprint] = result
            _memo_put(fingerprint, result)
    return sweep


def aggregation_cycles(result: RunResult) -> float:
    """Cycles spent in aggregation phases (the SpDeMM under study)."""
    return sum(v for k, v in result.phase_cycles.items() if k.endswith("aggregation"))


def _aggregation_phase_sums(result: RunResult) -> Dict[str, float]:
    phases = [v for k, v in result.phase_stats.items() if k.endswith("aggregation")]
    return {
        key: sum(p[key] for p in phases)
        for key in ("cycles", "busy", "hits", "misses", "forwards")
    }


def aggregation_utilization(result: RunResult) -> float:
    """ALU utilisation within the aggregation phases (Fig. 8's subject:
    the SpDeMM dataflow, uncontaminated by the shared combination)."""
    sums = _aggregation_phase_sums(result)
    return sums["busy"] / sums["cycles"] if sums["cycles"] else 0.0


def aggregation_hit_rate(result: RunResult) -> float:
    """Buffer hit rate within the aggregation phases (Fig. 9's subject);
    LSQ forwards count as on-chip hits."""
    sums = _aggregation_phase_sums(result)
    total = sums["hits"] + sums["forwards"] + sums["misses"]
    return (sums["hits"] + sums["forwards"]) / total if total else 0.0


def phase_snapshot_rows(
    result: RunResult,
) -> List[Tuple[str, Dict[str, int]]]:
    """(phase, summed fields) per entry of ``result.phase_snapshots``,
    in execution order -- the rows the bench report tables and the obs
    trace report both print, so the two agree by construction."""
    rows: List[Tuple[str, Dict[str, int]]] = []
    for phase, snap in result.phase_snapshots.items():
        rows.append(
            (
                phase,
                {
                    "cycles": snap.cycles,
                    "busy_cycles": snap.busy_cycles,
                    "dram_read_bytes": sum(snap.dram_read_bytes.values()),
                    "dram_write_bytes": sum(snap.dram_write_bytes.values()),
                    "buffer_hits": sum(snap.buffer_hits.values()),
                    "buffer_misses": sum(snap.buffer_misses.values()),
                },
            )
        )
    return rows


def merged_phase_snapshot(result: RunResult, suffix: str = "") -> SimStats:
    """Fold the phase snapshots whose name ends with ``suffix`` into one
    :class:`SimStats` via ``merge`` (empty suffix folds everything --
    by the conservation invariant that reproduces the whole-run
    aggregate, minus fields prepare-time code never touches)."""
    merged = SimStats()
    for phase, snap in result.phase_snapshots.items():
        if phase.endswith(suffix):
            merged.merge(snap)
    return merged


def clear_cache() -> int:
    """Drop memoised runs; returns how many were cached."""
    n = len(_CACHE)
    _CACHE.clear()
    return n
