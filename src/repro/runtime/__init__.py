"""Sweep-execution runtime: job specs, parallel execution, result cache.

This package owns *how* simulations get executed, separating that
concern from *what* gets simulated (``repro.hymm`` / ``repro.baselines``)
and *which* experiments need the results (``repro.bench``):

* :class:`JobSpec` -- one simulation point (dataset, accelerator,
  scale, layers, seed, config overrides) with a stable content-hash
  fingerprint that is identical across processes and sessions.
* :class:`SweepExecutor` -- fans a batch of jobs out over a process
  pool with per-job timeout and bounded retry, falling back to
  in-process serial execution when ``n_jobs=1`` or no pool can be
  created.
* :class:`ResultCache` -- persistent on-disk JSON records keyed by job
  fingerprint + schema/code version, so repeated figure/table runs and
  CI re-runs skip already-simulated points.
* :class:`RunManifest` -- per-sweep accounting (queued/done/failed,
  cache hit rate, wall-clock per job) surfaced by the bench CLI.

Everything every future scaling layer (sharding, async serving,
multi-backend) plugs into lives here.
"""

from repro.runtime.job import SCHEMA_VERSION, JobSpec
from repro.runtime.serialize import to_jsonable
from repro.runtime.cache import ResultCache, ShardedResultCache, default_cache_dir
from repro.runtime.manifest import JobRecord, RunManifest
from repro.runtime.executor import SweepExecutor, SweepResult
from repro.runtime.execute import (
    execute_job,
    execute_spec,
    job_trace_session,
    make_accelerator,
    replay_summary,
    resolve_trace_root,
    trace_root,
)

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "ResultCache",
    "ShardedResultCache",
    "default_cache_dir",
    "JobRecord",
    "RunManifest",
    "SweepExecutor",
    "SweepResult",
    "execute_job",
    "execute_spec",
    "job_trace_session",
    "make_accelerator",
    "replay_summary",
    "resolve_trace_root",
    "trace_root",
    "to_jsonable",
]
