"""Typed metrics registry: counters, gauges, bucket histograms.

The wall-clock counterpart of ``repro.obs``'s simulated-time metrics:
one process-local :class:`MetricsRegistry` that every layer (the serve
front end, the sweep executor, the result cache, phase-trace replay)
registers typed instruments into, exported two ways -- the JSON
``/metrics`` payload and Prometheus text exposition (see
:mod:`repro.telemetry.prometheus`).

Design constraints, in order:

* **exactness under threads** -- counters are hammered from worker
  threads and the event loop at once; every mutation takes the
  instrument's lock, so totals are exact, not "close enough" (the
  concurrency test asserts equality, and the ``loop-affinity`` analyzer
  rule covers the module);
* **O(buckets) scrapes** -- the histogram is a fixed-exponential-bucket
  sketch: ``observe`` is a bisect plus two adds, a scrape copies one
  small tuple, and no window of raw samples is kept (the previous serve
  implementation copied a 4096-sample deque and sorted it on the event
  loop per scrape, and silently dropped history on overflow);
* **hygiene is static** -- metric names are registered once, from
  string literals, with bounded literal label schemas (the
  ``telemetry-hygiene`` analyzer rule enforces the conventions this
  module documents).

Registration is get-or-create: asking for an existing name with an
identical schema (kind, help, label names, buckets) returns the
existing instrument; a conflicting schema raises :class:`MetricError`.
That makes module-scoped registration idempotent across repeated
imports without ever letting two call sites disagree about what a name
means.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Validity of metric and label names (the Prometheus subset the
#: exposition validator enforces; colons are reserved for rules).
METRIC_NAME_PATTERN = r"[a-zA-Z_][a-zA-Z0-9_]*"

#: Hard ceiling on distinct label-value combinations per instrument --
#: unbounded cardinality is the classic way a metrics registry eats a
#: process.  Hitting it raises rather than silently dropping.
MAX_LABEL_CARDINALITY = 1024


class MetricError(ValueError):
    """Invalid registration or use of an instrument."""


def _check_name(name: str, what: str = "metric") -> None:
    import re

    if re.fullmatch(METRIC_NAME_PATTERN, name) is None:
        raise MetricError(f"invalid {what} name {name!r}")


def exponential_buckets(
    start: float, factor: float, count: int
) -> Tuple[float, ...]:
    """``count`` upper bounds: start, start*factor, ... (strictly
    increasing; the histogram adds the +Inf overflow bucket itself)."""
    if start <= 0:
        raise MetricError("bucket start must be positive")
    if factor <= 1.0:
        raise MetricError("bucket factor must be > 1")
    if count < 1:
        raise MetricError("bucket count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Default histogram buckets: 50µs .. ~6.5s in doublings, a span that
#: covers sub-millisecond cache probes and multi-second simulations.
DEFAULT_BUCKETS = exponential_buckets(0.05, 2.0, 17)


class _Instrument:
    """Shared base: identity, label schema, child table, lock."""

    kind = ""

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        _check_name(name)
        for label in labelnames:
            _check_name(label, "label")
        if len(set(labelnames)) != len(labelnames):
            raise MetricError(f"{name}: duplicate label names {labelnames!r}")
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self._lock = threading.Lock()
        #: label-value tuple -> child instrument (empty tuple = self).
        self._children: Dict[Tuple[str, ...], "_Instrument"] = {}

    # ------------------------------------------------------------------
    def schema(self) -> Tuple[Any, ...]:
        return (self.kind, self.help, self.labelnames)

    def labels(self, *values: str, **kwvalues: str) -> Any:
        """The child instrument for one label-value combination."""
        if kwvalues:
            if values:
                raise MetricError(
                    f"{self.name}: pass label values positionally or by "
                    "keyword, not both"
                )
            try:
                values = tuple(kwvalues[k] for k in self.labelnames)
            except KeyError as exc:
                raise MetricError(
                    f"{self.name}: missing label {exc.args[0]!r}"
                ) from None
            if len(kwvalues) != len(self.labelnames):
                raise MetricError(
                    f"{self.name}: unknown labels "
                    f"{sorted(set(kwvalues) - set(self.labelnames))}"
                )
        if len(values) != len(self.labelnames):
            raise MetricError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"value(s) {self.labelnames!r}, got {len(values)}"
            )
        if not self.labelnames:
            raise MetricError(f"{self.name}: instrument declares no labels")
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if len(self._children) >= MAX_LABEL_CARDINALITY:
                    raise MetricError(
                        f"{self.name}: label cardinality exceeds "
                        f"{MAX_LABEL_CARDINALITY}"
                    )
                child = self._make_child()
                self._children[key] = child
            return child

    def _make_child(self) -> "_Instrument":
        raise NotImplementedError

    def _require_unlabelled(self) -> None:
        if self.labelnames:
            raise MetricError(
                f"{self.name}: labelled instrument; call "
                f".labels({', '.join(self.labelnames)}) first"
            )

    # ------------------------------------------------------------------
    def samples(self) -> List[Tuple[Tuple[str, ...], "_Instrument"]]:
        """(label values, leaf instrument) pairs, deterministic order."""
        if not self.labelnames:
            return [((), self)]
        with self._lock:
            return sorted(self._children.items())

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "kind": self.kind,
            "help": self.help,
        }
        if self.labelnames:
            doc["labels"] = list(self.labelnames)
            doc["values"] = {
                ",".join(key): child._value_dict()
                for key, child in self.samples()
            }
        else:
            doc.update(self._value_dict())
        return doc

    def _value_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


class Counter(_Instrument):
    """Monotonically increasing total."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Counter":
        return Counter(self.name, self.help)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up")
        self._require_unlabelled()
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _value_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge(_Instrument):
    """A value that can go either way (queue depth, RSS, burn rate)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def _make_child(self) -> "Gauge":
        return Gauge(self.name, self.help)

    def set(self, value: float) -> None:
        self._require_unlabelled()
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._require_unlabelled()
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _value_dict(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram(_Instrument):
    """Fixed-exponential-bucket histogram with an overflow bucket.

    ``observe`` is O(log buckets); a scrape copies the bucket counts
    (O(buckets)) -- no sample window, so no silent history loss and no
    per-scrape sort.  Quantiles are estimated by linear interpolation
    inside the owning bucket; the tracked exact ``max`` both caps the
    estimate and stands in for the overflow bucket's unbounded edge.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise MetricError(
                f"{name}: buckets must be strictly increasing and non-empty"
            )
        if any(not math.isfinite(b) for b in bounds):
            raise MetricError(f"{name}: bucket bounds must be finite")
        self.bounds = bounds
        #: Per-bucket counts; index len(bounds) is the +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def schema(self) -> Tuple[Any, ...]:
        return (self.kind, self.help, self.labelnames, self.bounds)

    def _make_child(self) -> "Histogram":
        return Histogram(self.name, self.help, self.bounds)

    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        self._require_unlabelled()
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def max(self) -> float:
        with self._lock:
            return self._max

    def snapshot(self) -> Tuple[Tuple[int, ...], int, float, float]:
        """(bucket counts incl. overflow, count, sum, max), atomically."""
        with self._lock:
            return tuple(self._counts), self._count, self._sum, self._max

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        counts, total, _, observed_max = self.snapshot()
        return quantile_from_counts(
            counts, self.bounds, q, total=total, observed_max=observed_max
        )

    def percentile_summary(
        self, points: Tuple[float, ...] = (50.0, 90.0, 99.0)
    ) -> Dict[str, float]:
        """The JSON-payload shape serve exposes: ``{"count": n, "p50":
        ..., ..., "max": ..., "mean": ...}`` (only ``count`` when
        empty)."""
        counts, total, total_sum, observed_max = self.snapshot()
        out: Dict[str, float] = {"count": total}
        if not total:
            return out
        for point in points:
            out[f"p{point:g}"] = quantile_from_counts(
                counts, self.bounds, point / 100.0,
                total=total, observed_max=observed_max,
            )
        out["max"] = observed_max
        out["mean"] = total_sum / total
        return out

    def _value_dict(self) -> Dict[str, Any]:
        counts, total, total_sum, observed_max = self.snapshot()
        return {
            "buckets": {
                f"{bound:g}": count
                for bound, count in zip(self.bounds, counts)
            },
            "overflow": counts[-1],
            "count": total,
            "sum": total_sum,
            "max": observed_max,
        }


def quantile_from_counts(
    counts: Sequence[int],
    bounds: Sequence[float],
    q: float,
    total: Optional[int] = None,
    observed_max: Optional[float] = None,
) -> float:
    """Quantile estimate from cumulative-able bucket ``counts``.

    ``counts`` has one entry per bound plus the overflow; the estimate
    interpolates linearly inside the owning bucket (lower edge 0 for
    the first), and is clamped to ``observed_max`` when known -- for
    the overflow bucket that exact maximum is the only honest answer.
    """
    if total is None:
        total = sum(counts)
    if total <= 0:
        return 0.0
    q = min(1.0, max(0.0, q))
    rank = q * total
    cumulative = 0.0
    for idx, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank and count:
            if idx >= len(bounds):  # overflow bucket
                break
            lower = bounds[idx - 1] if idx else 0.0
            upper = bounds[idx]
            within = (rank - (cumulative - count)) / count
            estimate = lower + (upper - lower) * within
            if observed_max is not None:
                estimate = min(estimate, observed_max)
            return estimate
    # Overflow (or rounding tail): the exact max if tracked, else the
    # last finite bound.
    if observed_max is not None:
        return observed_max
    return float(bounds[-1])


class MetricsRegistry:
    """One namespace of instruments; the exposition unit.

    Thread-safe get-or-create registration.  Layers keep a module- or
    instance-level reference and register their instruments once at
    that one site (the ``telemetry-hygiene`` rule checks the "once").
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, _Instrument]" = {}

    # ------------------------------------------------------------------
    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._metrics.get(instrument.name)
            if existing is not None:
                if existing.schema() != instrument.schema():
                    raise MetricError(
                        f"metric {instrument.name!r} already registered "
                        f"with a different schema: {existing.schema()!r} "
                        f"!= {instrument.schema()!r}"
                    )
                return existing
            self._metrics[instrument.name] = instrument
            return instrument

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        metric = self._register(Counter(name, help, labelnames))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        metric = self._register(Gauge(name, help, labelnames))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        metric = self._register(Histogram(name, help, buckets, labelnames))
        assert isinstance(metric, Histogram)
        return metric

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> Iterator[_Instrument]:
        """Instruments in name order (the exposition order)."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        for _, metric in metrics:
            yield metric

    def to_dict(self) -> Dict[str, Any]:
        """JSON form: name -> typed value document."""
        return {metric.name: metric.to_dict() for metric in self.collect()}


#: The process-global default registry.  Library layers (runtime cache,
#: executor, replay) register here so any in-process front end -- the
#: serve server, a bench run -- can export them; the serve server keeps
#: its *own* registry for per-instance counters and exports both.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL


def labels_key(
    labelnames: Sequence[str], labelvalues: Sequence[str]
) -> Mapping[str, str]:
    """Stable mapping form of one label combination (exposition use)."""
    return dict(zip(labelnames, labelvalues))
