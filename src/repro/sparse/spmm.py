"""Reference SpDeMM (sparse x dense) kernels.

These NumPy kernels are the *functional oracles* for the simulator: the
cycle-accurate dataflow engines must produce numerically identical
output matrices.  ``spmm_csr`` walks the sparse matrix exactly the way
the row-wise-product hardware does, ``spmm_csc`` the way the
outer-product hardware does, so each oracle doubles as an executable
specification of its dataflow's arithmetic order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.sparse.coo import COOMatrix, VALUE_DTYPE
from repro.sparse.csc import CSCMatrix
from repro.sparse.csr import CSRMatrix


def spmm_csr(sparse: CSRMatrix, dense: np.ndarray) -> np.ndarray:
    """Row-wise-product SpDeMM: ``out[i, :] = sum_j A[i, j] * D[j, :]``.

    Mirrors the RWP engine (paper Fig. 1a): for each non-zero ``A[i, j]``
    the row vector ``D[j, :]`` is scaled and accumulated into output row
    ``i``.
    """
    _check_dims(sparse.shape, dense)
    out = np.zeros((sparse.shape[0], dense.shape[1]), dtype=np.float64)
    for i in range(sparse.shape[0]):
        cols, vals = sparse.row(i)
        if cols.size:
            out[i] = vals.astype(np.float64) @ dense[cols].astype(np.float64)
    return out.astype(VALUE_DTYPE)


def spmm_csc(sparse: CSCMatrix, dense: np.ndarray) -> np.ndarray:
    """Outer-product SpDeMM: column ``j`` of A scales dense row ``j``.

    Mirrors the OP engine (paper Fig. 1b): each column of the sparse
    matrix scatters partial products into the output rows named by its
    row indices.
    """
    _check_dims(sparse.shape, dense)
    out = np.zeros((sparse.shape[0], dense.shape[1]), dtype=np.float64)
    for j in range(sparse.shape[1]):
        rows, vals = sparse.col(j)
        if rows.size:
            np.add.at(
                out,
                rows,
                vals.astype(np.float64)[:, None] * dense[j].astype(np.float64)[None, :],
            )
    return out.astype(VALUE_DTYPE)


def spmm_coo(sparse: COOMatrix, dense: np.ndarray) -> np.ndarray:
    """Order-independent SpDeMM over COO triplets (pure oracle)."""
    _check_dims(sparse.shape, dense)
    out = np.zeros((sparse.shape[0], dense.shape[1]), dtype=np.float64)
    np.add.at(
        out,
        sparse.rows,
        sparse.values.astype(np.float64)[:, None] * dense[sparse.cols].astype(np.float64),
    )
    return out.astype(VALUE_DTYPE)


def _check_dims(sparse_shape: "Tuple[int, int]", dense: np.ndarray) -> None:
    if dense.ndim != 2:
        raise ValueError("dense operand must be two-dimensional")
    if sparse_shape[1] != dense.shape[0]:
        raise ValueError(
            f"dimension mismatch: sparse is {sparse_shape}, dense is {dense.shape}"
        )
