"""In-repo structural validation of Chrome trace-event JSON exports.

The bench/CI pipelines must be able to say "this artifact is a valid
trace" without pulling in a JSON-schema dependency, so this is a small
hand-rolled checker for exactly the subset of the trace-event format
that :class:`repro.obs.tracer.ChromeTracer` emits:

* root object with a ``traceEvents`` list;
* every event an object with ``name``/``cat``/``ph``/``ts``/``pid``/``tid``;
* ``ph`` one of ``X`` (complete, needs numeric ``dur >= 0``), ``i``
  (instant, needs scope ``s``), ``C`` (counter, needs numeric ``args``);
* timestamps are non-negative numbers (the simulated clock never runs
  backwards from zero).

:func:`validate_trace` returns a list of human-readable problems --
empty means valid -- so callers can print every defect at once instead
of failing on the first.
"""

from __future__ import annotations

from typing import Any, List

#: Event phases ChromeTracer emits.
VALID_PHASES = ("X", "i", "C")

#: Valid scopes for instant ("i") events.
VALID_INSTANT_SCOPES = ("t", "p", "g")

_REQUIRED_FIELDS = ("name", "cat", "ph", "ts", "pid", "tid")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_event(event: Any, where: str) -> List[str]:
    """Problems with a single trace event (empty list when clean)."""
    if not isinstance(event, dict):
        return [f"{where}: event must be an object, got {type(event).__name__}"]
    problems: List[str] = []
    for field in _REQUIRED_FIELDS:
        if field not in event:
            problems.append(f"{where}: missing required field {field!r}")
    name = event.get("name")
    if "name" in event and (not isinstance(name, str) or not name):
        problems.append(f"{where}: name must be a non-empty string")
    if "cat" in event and not isinstance(event.get("cat"), str):
        problems.append(f"{where}: cat must be a string")
    ts = event.get("ts")
    if "ts" in event:
        if not _is_number(ts):
            problems.append(f"{where}: ts must be a number")
        elif float(ts) < 0:
            problems.append(f"{where}: ts must be >= 0, got {ts}")
    for field in ("pid", "tid"):
        if field in event and not isinstance(event.get(field), int):
            problems.append(f"{where}: {field} must be an integer")
    if "args" in event and not isinstance(event.get("args"), dict):
        problems.append(f"{where}: args must be an object")

    ph = event.get("ph")
    if "ph" not in event:
        return problems
    if ph not in VALID_PHASES:
        problems.append(
            f"{where}: ph must be one of {list(VALID_PHASES)}, got {ph!r}"
        )
        return problems
    if ph == "X":
        dur = event.get("dur")
        if not _is_number(dur):
            problems.append(f"{where}: complete event needs a numeric dur")
        elif float(dur) < 0:
            problems.append(f"{where}: dur must be >= 0, got {dur}")
    elif ph == "i":
        if event.get("s") not in VALID_INSTANT_SCOPES:
            problems.append(
                f"{where}: instant event needs scope s in "
                f"{list(VALID_INSTANT_SCOPES)}"
            )
    elif ph == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            problems.append(f"{where}: counter event needs non-empty args")
        elif not all(_is_number(v) for v in args.values()):
            problems.append(f"{where}: counter args must all be numeric")
    return problems


def validate_trace(trace: Any) -> List[str]:
    """Problems with a full trace document (empty list when valid)."""
    if not isinstance(trace, dict):
        return [f"trace root must be an object, got {type(trace).__name__}"]
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        problems.append("trace must have a traceEvents list")
        return problems
    if "otherData" in trace and not isinstance(trace["otherData"], dict):
        problems.append("otherData must be an object when present")
    for i, event in enumerate(events):
        problems.extend(validate_event(event, f"traceEvents[{i}]"))
    return problems
