#!/usr/bin/env python3
"""The unified buffer's dynamic space management (paper Section III).

The paper argues that one *unified* DMB beats split input/output
buffers because each phase can claim the space its dataflow reuses:
during row-wise phases the buffer fills with XW (the reused input),
during outer-product phases with partial outputs.  This example runs
HyMM and prints the end-of-phase buffer composition recorded in
``RunResult.phase_stats``, then quantifies what a fixed 50/50 split
would cost.

Run:  python examples/buffer_dynamics.py
"""

from repro import GCNModel, HyMMAccelerator, HyMMConfig, load_dataset
from repro.bench import format_table


def occupancy_rows(result, capacity_lines):
    rows = []
    for phase, stats in result.phase_stats.items():
        occ = stats["occupancy"]
        total = sum(occ.values())
        rows.append([
            phase,
            occ.get("W", 0),
            occ.get("XW", 0),
            occ.get("AXW", 0),
            occ.get("partial", 0),
            f"{100 * total / capacity_lines:.0f}%",
        ])
    return rows


def main() -> None:
    model = GCNModel(
        load_dataset("amazon-photo", scale=0.1, seed=1, feature_length=128),
        n_layers=2,
        seed=2,
    )
    config = HyMMConfig(dmb_bytes=32 * 1024)  # pressure at this scale

    result = HyMMAccelerator(config).run_inference(model)
    print(f"Workload: {model.dataset}  (DMB = {config.dmb_bytes // 1024} KB "
          f"= {config.capacity_lines} lines)\n")
    print("End-of-phase buffer composition (lines per class):")
    print(format_table(
        ["phase", "W", "XW", "AXW", "partial", "fill"],
        occupancy_rows(result, config.capacity_lines),
    ))

    split = HyMMAccelerator(
        config.with_overrides(unified_buffer=False)
    ).run_inference(model)
    print(f"\nUnified buffer: {result.stats.cycles:,} cycles, "
          f"{result.stats.dram_total_bytes() / 1024:.0f} KB DRAM traffic")
    print(f"Fixed 50/50 split: {split.stats.cycles:,} cycles, "
          f"{split.stats.dram_total_bytes() / 1024:.0f} KB DRAM traffic")
    print(f"-> the unified organisation is "
          f"{split.stats.cycles / result.stats.cycles:.2f}x faster here, "
          f"because each phase repurposes the whole buffer for the data "
          f"its dataflow actually reuses.")


if __name__ == "__main__":
    main()
