"""Parallel sweep execution over a process pool, with serial fallback.

:class:`SweepExecutor` takes a batch of :class:`JobSpec`\\ s and returns
a :class:`SweepResult` (results keyed by fingerprint + a
:class:`RunManifest`).  The policy:

* duplicate specs are collapsed (one execution per fingerprint);
* every spec is first looked up in the optional :class:`ResultCache`;
* misses run on a ``ProcessPoolExecutor`` when ``n_jobs > 1``, with a
  per-job timeout (measured from submission; best-effort, since a
  running worker cannot be interrupted) and bounded retry on worker
  failure;
* when ``n_jobs == 1``, or the pool cannot be created, or it breaks
  mid-sweep, jobs run (or finish) in-process serially -- a sweep never
  dies because multiprocessing is unavailable;
* workers return the *serialised* result dict
  (:func:`repro.runtime.execute.execute_job`), and the parent rebuilds
  the ``RunResult`` through the same ``from_dict`` path the cache uses,
  so parallel, serial-normalised, and cached results are bit-identical;
* executed jobs record/replay phase traces by default (the production
  path): each worker replays phases whose chained signature is already
  in the job's trace directory and records the rest, reporting the
  counts back through a side channel the parent folds into the
  manifest's ``replay_hits``/``replay_misses``.

A failed job (after retries) is recorded in the manifest and simply
absent from the results -- callers decide whether that is fatal.
"""

from __future__ import annotations

import functools
import logging
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.hymm.base import RunResult
from repro.runtime.execute import execute_job, resolve_trace_root
from repro.runtime.cache import ResultCache
from repro.runtime.job import JobSpec
from repro.runtime.manifest import (
    STATUS_CACHE_HIT,
    STATUS_DONE,
    STATUS_FAILED,
    JobRecord,
    RunManifest,
    peak_rss_kb,
)
from repro.telemetry import get_logger, get_registry, span

#: ``progress(record, n_finished, n_total)`` callback type.
ProgressFn = Callable[[JobRecord, int, int], None]

_log = get_logger("runtime.executor")

# Executor instruments live in the process-global registry so any
# front end (serve, bench) exports them alongside its own.  Registered
# once, here, at module scope (the telemetry-hygiene convention).
_registry = get_registry()
_JOBS_TOTAL = _registry.counter(
    "repro_runtime_jobs_total",
    "Sweep jobs by terminal status",
    labelnames=("status",),
)
_BATCHES_TOTAL = _registry.counter(
    "repro_runtime_pool_batches_total",
    "Batches submitted to the process pool (retries included)",
)
_CACHE_PROBES_TOTAL = _registry.counter(
    "repro_runtime_cache_probes_total",
    "Result-cache probes at sweep entry, by outcome",
    labelnames=("outcome",),
)
_JOB_SECONDS = _registry.histogram(
    "repro_runtime_job_seconds",
    "Wall seconds per executed (non-cache) job",
)


def run_job_group(runner, specs: Sequence[JobSpec]) -> List[tuple]:
    """Worker-side batch entry: run ``specs`` back to back in this
    process, returning ``(status, payload, elapsed_seconds, rss_kb)``
    per spec.

    Batching jobs that share a workload into one worker lets the
    process-local ``make_model`` memo build each dataset model once per
    worker instead of once per job; errors are confined to their spec.
    The RSS figure is this worker's peak when the job finished -- a
    high-water mark, so later jobs in a batch report >= earlier ones.
    """
    out = []
    for spec in specs:
        t0 = time.perf_counter()
        try:
            raw = runner(spec)
        except Exception as exc:
            out.append(("error", f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - t0, peak_rss_kb()))
        else:
            out.append(("ok", raw, time.perf_counter() - t0, peak_rss_kb()))
    return out


def _workload_key(spec: JobSpec) -> tuple:
    """Specs sharing this key share one ``make_model`` result."""
    return (spec.dataset, spec.scale, spec.n_layers, spec.seed,
            spec.feature_length)


@dataclass
class SweepResult:
    """What a sweep produced: fingerprint-keyed results + accounting."""

    results: Dict[str, RunResult] = field(default_factory=dict)
    manifest: RunManifest = field(default_factory=RunManifest)

    def for_spec(self, spec: JobSpec) -> Optional[RunResult]:
        return self.results.get(spec.fingerprint())

    def __len__(self) -> int:
        return len(self.results)


def _dedupe(specs: Iterable[JobSpec]) -> List[JobSpec]:
    seen: Dict[str, JobSpec] = {}
    for spec in specs:
        seen.setdefault(spec.fingerprint(), spec)
    return list(seen.values())


class SweepExecutor:
    """Run batches of simulation jobs, concurrently when asked."""

    def __init__(
        self,
        n_jobs: int = 1,
        cache: Optional[ResultCache] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        runner: Optional[Callable[[JobSpec], object]] = None,
        progress: Optional[ProgressFn] = None,
        batch_by_workload: bool = True,
        replay: bool = True,
        trace_root: Optional[str] = None,
    ):
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.n_jobs = max(1, int(n_jobs))
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        #: Phase-trace record/replay is the production path: the
        #: default runner records each executed phase and replays it on
        #: the next execution of the same signature (see
        #: :func:`repro.runtime.execute.execute_job`).  ``replay=False``
        #: forces fully live simulation; ``trace_root`` redirects the
        #: trace tree (default: next to the result cache).  A custom
        #: ``runner`` manages its own replay sessions -- both knobs
        #: apply only to the built-in runner.
        self.replay = replay
        if replay and trace_root is None and cache is not None:
            # Colocate the trace tree with the result cache it serves
            # (``--cache-dir /x`` must not leak traces into the default
            # root); ``REPRO_TRACE_DIR`` still wins inside the resolver.
            trace_root = resolve_trace_root(str(cache.cache_dir / "traces"))
        self.trace_root = trace_root
        if runner is not None:
            self.runner = runner
        elif replay and trace_root is None:
            self.runner = execute_job
        else:
            self.runner = functools.partial(
                execute_job, replay=replay, trace_root_dir=trace_root
            )
        self.progress = progress
        #: Ship jobs sharing a workload (dataset/scale/layers/seed) to
        #: the same worker so its model memo is built once, not once
        #: per job.  ``False`` submits one pool task per job (finer
        #: timeout granularity, more duplicated model synthesis).
        self.batch_by_workload = batch_by_workload

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[JobSpec]) -> SweepResult:
        start = time.perf_counter()
        unique = _dedupe(specs)
        sweep = SweepResult(manifest=RunManifest(n_jobs=self.n_jobs))
        self._total = len(unique)

        pending: List[JobSpec] = []
        with span("runtime.cache_probe", jobs=len(unique)):
            for spec in unique:
                cached = (
                    self.cache.load(spec) if self.cache is not None else None
                )
                if cached is not None:
                    _CACHE_PROBES_TOTAL.labels("hit").inc()
                    sweep.results[spec.fingerprint()] = cached
                    self._record(sweep, spec, STATUS_CACHE_HIT, worker="cache")
                else:
                    if self.cache is not None:
                        _CACHE_PROBES_TOTAL.labels("miss").inc()
                    pending.append(spec)

        if pending:
            with span("runtime.sweep", jobs=len(pending)):
                if self.n_jobs > 1:
                    leftover = self._run_pool(pending, sweep)
                else:
                    leftover = pending
                if leftover:
                    self._run_serial(leftover, sweep)

        sweep.manifest.wall_seconds = time.perf_counter() - start
        if self.cache is not None:
            sweep.manifest.cache_stats = self.cache.stats()
        return sweep

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(
        self,
        sweep: SweepResult,
        spec: JobSpec,
        status: str,
        attempts: int = 0,
        wall: float = 0.0,
        worker: str = "serial",
        error: Optional[str] = None,
        rss_kb: Optional[int] = None,
        timed_out: bool = False,
    ) -> None:
        record = JobRecord(
            fingerprint=spec.fingerprint(),
            label=spec.describe(),
            status=status,
            attempts=attempts,
            wall_seconds=wall,
            worker=worker,
            error=error,
            max_rss_kb=rss_kb,
            timed_out=timed_out,
            corr_id=spec.corr_id,
        )
        _JOBS_TOTAL.labels(status).inc()
        if status != STATUS_CACHE_HIT:
            _JOB_SECONDS.observe(wall)
        if _log.isEnabledFor(logging.INFO):
            _log.info(
                "job record",
                extra={
                    "corr_id": spec.corr_id,
                    "fingerprint": record.fingerprint,
                    "status": status,
                    "worker": worker,
                    "attempts": attempts,
                    "wall_s": round(wall, 6),
                    "job_error": error,
                },
            )
        sweep.manifest.add(record)
        if self.progress is not None:
            self.progress(record, len(sweep.manifest.records), self._total)

    def _accept(
        self,
        sweep: SweepResult,
        spec: JobSpec,
        raw: object,
        attempts: int,
        wall: float,
        worker: str,
        rss_kb: Optional[int] = None,
    ) -> None:
        if isinstance(raw, Mapping):
            # Strip the runner's replay side-channel (phases replayed
            # from the trace store vs recorded live) into the manifest
            # before handing the wire dict to the deserialiser.
            raw = dict(raw)
            replay_info = raw.pop("replay", None)
            if isinstance(replay_info, Mapping):
                sweep.manifest.replay_hits += int(replay_info.get("replayed", 0))
                sweep.manifest.replay_misses += int(replay_info.get("recorded", 0))
            result: object = RunResult.from_dict(raw)
        else:
            result = raw
        sweep.results[spec.fingerprint()] = result
        if self.cache is not None and isinstance(result, RunResult):
            self.cache.store(spec, result)
        self._record(sweep, spec, STATUS_DONE, attempts, wall, worker,
                     rss_kb=rss_kb)

    # ------------------------------------------------------------------
    # Serial path (n_jobs == 1 or pool unavailable/broken)
    # ------------------------------------------------------------------
    def _run_serial(self, specs: Sequence[JobSpec], sweep: SweepResult) -> None:
        for spec in specs:
            t0 = time.perf_counter()
            error: Optional[str] = None
            for attempt in range(1, self.retries + 2):
                try:
                    raw = self.runner(spec)
                except Exception as exc:  # worker failure: bounded retry
                    error = f"{type(exc).__name__}: {exc}"
                    continue
                self._accept(
                    sweep, spec, raw, attempt, time.perf_counter() - t0,
                    "serial", rss_kb=peak_rss_kb(),
                )
                break
            else:
                self._record(
                    sweep, spec, STATUS_FAILED, self.retries + 1,
                    time.perf_counter() - t0, "serial", error,
                    rss_kb=peak_rss_kb(),
                )

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------
    def _make_units(self, specs: Sequence[JobSpec]) -> List[List[JobSpec]]:
        """Partition specs into pool submissions (see
        ``batch_by_workload``)."""
        if not self.batch_by_workload:
            return [[spec] for spec in specs]
        groups: Dict[tuple, List[JobSpec]] = {}
        for spec in specs:
            groups.setdefault(_workload_key(spec), []).append(spec)
        return list(groups.values())

    def _run_pool(
        self, specs: Sequence[JobSpec], sweep: SweepResult
    ) -> List[JobSpec]:
        """Execute on a process pool; returns the specs that still need
        serial execution (all of them if no pool could be created, the
        unfinished remainder if the pool broke mid-sweep)."""
        units = self._make_units(specs)
        try:
            pool = ProcessPoolExecutor(max_workers=min(self.n_jobs, len(units)))
        except Exception:
            return list(specs)

        # future -> (unit_specs, attempt, submit_time)
        pending: Dict[object, tuple] = {}
        leftover: List[JobSpec] = []

        def submit(unit: List[JobSpec], attempt: int) -> None:
            future = pool.submit(functools.partial(run_job_group, self.runner), unit)
            _BATCHES_TOTAL.inc()
            pending[future] = (unit, attempt, time.monotonic())

        try:
            for unit in units:
                submit(unit, 1)
            while pending:
                done, _ = wait(
                    set(pending),
                    timeout=self._wait_budget(pending),
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for future in done:
                    unit, attempt, t0 = pending.pop(future)
                    try:
                        outcomes = future.result()
                    except BrokenProcessPool:
                        leftover.extend(unit)
                        raise
                    except Exception as exc:
                        # The whole batch died (transport error, ...).
                        self._retry_or_fail(
                            submit, sweep, unit, attempt, now - t0,
                            f"{type(exc).__name__}: {exc}",
                        )
                    else:
                        failed = []
                        for spec, (status, payload, elapsed, rss_kb) in zip(
                            unit, outcomes
                        ):
                            if status == "ok":
                                self._accept(
                                    sweep, spec, payload, attempt, elapsed,
                                    "pool", rss_kb=rss_kb,
                                )
                            else:
                                failed.append((spec, payload, elapsed, rss_kb))
                        if failed:
                            self._retry_or_fail_each(
                                submit, sweep, failed, attempt
                            )
                if self.timeout is not None:
                    for future in list(pending):
                        unit, attempt, t0 = pending[future]
                        if now - t0 >= self.timeout:
                            del pending[future]
                            future.cancel()
                            self._retry_or_fail(
                                submit, sweep, unit, attempt, now - t0,
                                f"timed out after {self.timeout:g}s",
                                timed_out=True,
                            )
        except BrokenProcessPool:
            for unit, _, _ in pending.values():
                leftover.extend(unit)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return leftover

    def _wait_budget(self, pending: Mapping[object, tuple]) -> Optional[float]:
        """How long :func:`wait` may block before a deadline check."""
        if self.timeout is None:
            return None
        now = time.monotonic()
        next_deadline = min(t0 + self.timeout for _, _, t0 in pending.values())
        return max(0.01, next_deadline - now)

    def _retry_or_fail(
        self,
        submit: Callable[[List[JobSpec], int], None],
        sweep: SweepResult,
        unit: List[JobSpec],
        attempt: int,
        wall: float,
        error: str,
        timed_out: bool = False,
    ) -> None:
        if attempt <= self.retries:
            submit(unit, attempt + 1)
        else:
            for spec in unit:
                self._record(
                    sweep, spec, STATUS_FAILED, attempt, wall, "pool", error,
                    timed_out=timed_out,
                )

    def _retry_or_fail_each(
        self,
        submit: Callable[[List[JobSpec], int], None],
        sweep: SweepResult,
        failed: List[tuple],
        attempt: int,
    ) -> None:
        """Per-spec failures inside a batch: resubmit the failures as
        one new unit, or record them once retries are exhausted."""
        if attempt <= self.retries:
            submit([spec for spec, _, _, _ in failed], attempt + 1)
        else:
            for spec, error, elapsed, rss_kb in failed:
                self._record(
                    sweep, spec, STATUS_FAILED, attempt, elapsed, "pool",
                    error, rss_kb=rss_kb,
                )
