"""Unit tests for the CSR and CSC compressed formats."""

import numpy as np
import pytest

from repro.sparse import (
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    coo_to_csc,
    coo_to_csr,
)
from repro.sparse.coo import INDEX_BYTES, VALUE_BYTES


@pytest.fixture
def csr(small_coo):
    return coo_to_csr(small_coo)


@pytest.fixture
def csc(small_coo):
    return coo_to_csc(small_coo)


class TestCSR:
    def test_nnz_preserved(self, csr, small_coo):
        assert csr.nnz == small_coo.nnz

    def test_indptr_shape(self, csr):
        assert csr.indptr.tolist() == [0, 2, 3, 6, 6]

    def test_row_access(self, csr):
        cols, vals = csr.row(2)
        assert cols.tolist() == [0, 1, 4]
        np.testing.assert_allclose(vals, [4.0, 5.0, 6.0])

    def test_row_nnz(self, csr):
        assert [csr.row_nnz(i) for i in range(4)] == [2, 1, 3, 0]

    def test_empty_row(self, csr):
        cols, vals = csr.row(3)
        assert cols.size == 0 and vals.size == 0

    def test_row_degrees(self, csr):
        assert csr.row_degrees().tolist() == [2, 1, 3, 0]

    def test_iter_rows_skips_empty(self, csr):
        rows = [r for r, _, _ in csr.iter_rows()]
        assert rows == [0, 1, 2]

    def test_columns_sorted_within_rows(self, csr):
        for _, cols, _ in csr.iter_rows():
            assert np.all(np.diff(cols) > 0)

    def test_dense_roundtrip(self, csr, small_coo):
        np.testing.assert_allclose(csr.to_dense(), small_coo.to_dense())

    def test_coo_roundtrip(self, csr, small_coo):
        assert csr.to_coo().allclose(small_coo)

    def test_storage_bytes(self, csr):
        expected = 5 * INDEX_BYTES + 6 * INDEX_BYTES + 6 * VALUE_BYTES
        assert csr.storage_bytes() == expected

    def test_storage_bytes_custom_pointer(self, csr):
        assert csr.storage_bytes(pointer_bytes=8) == csr.storage_bytes() + 5 * 4

    def test_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRMatrix((2, 2), [1, 1, 1], [0], [1.0])

    def test_indptr_must_be_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix((3, 3), [0, 2, 1, 2], [0, 1], [1.0, 2.0])

    def test_indices_values_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            CSRMatrix((2, 2), [0, 1, 2], [0, 1], [1.0])

    def test_column_index_bounds(self):
        with pytest.raises(ValueError, match="column index"):
            CSRMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 2.0])

    def test_repr(self, csr):
        assert "CSRMatrix" in repr(csr)


class TestCSC:
    def test_nnz_preserved(self, csc, small_coo):
        assert csc.nnz == small_coo.nnz

    def test_indptr_shape(self, csc):
        assert csc.indptr.tolist() == [0, 2, 3, 4, 5, 6]

    def test_col_access(self, csc):
        rows, vals = csc.col(0)
        assert rows.tolist() == [0, 2]
        np.testing.assert_allclose(vals, [1.0, 4.0])

    def test_col_nnz(self, csc):
        assert [csc.col_nnz(j) for j in range(5)] == [2, 1, 1, 1, 1]

    def test_col_degrees(self, csc):
        assert csc.col_degrees().tolist() == [2, 1, 1, 1, 1]

    def test_iter_cols_covers_all(self, csc):
        cols = [c for c, _, _ in csc.iter_cols()]
        assert cols == [0, 1, 2, 3, 4]

    def test_rows_sorted_within_columns(self, csc):
        for _, rows, _ in csc.iter_cols():
            assert np.all(np.diff(rows) > 0)

    def test_dense_roundtrip(self, csc, small_coo):
        np.testing.assert_allclose(csc.to_dense(), small_coo.to_dense())

    def test_coo_roundtrip(self, csc, small_coo):
        assert csc.to_coo().allclose(small_coo)

    def test_storage_bytes(self, csc):
        expected = 6 * INDEX_BYTES + 6 * INDEX_BYTES + 6 * VALUE_BYTES
        assert csc.storage_bytes() == expected

    def test_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSCMatrix((2, 2), [0, 1], [0], [1.0])

    def test_row_index_bounds(self):
        with pytest.raises(ValueError, match="row index"):
            CSCMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 2.0])

    def test_repr(self, csc):
        assert "CSCMatrix" in repr(csc)


class TestCrossFormat:
    def test_csr_and_csc_agree_on_dense(self, csr, csc):
        np.testing.assert_allclose(csr.to_dense(), csc.to_dense())

    def test_csr_transpose_equals_csc_of_transpose(self, small_coo):
        csr_t = coo_to_csr(small_coo.transpose())
        csc = coo_to_csc(small_coo)
        # CSR of A^T has the same index structure as CSC of A.
        assert csr_t.indptr.tolist() == csc.indptr.tolist()
        assert csr_t.indices.tolist() == csc.indices.tolist()
