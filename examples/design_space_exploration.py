#!/usr/bin/env python3
"""Design-space exploration: buffer size, tiling threshold, PE count.

Sweeps the key hardware parameters of Section IV around the paper's
design point, pairing each configuration's simulated performance with
its silicon cost from the Table III area model -- the trade-off a
designer adopting HyMM would actually study.

Every sweep point is a ``repro.runtime.JobSpec`` executed through the
parallel sweep engine, so the whole exploration fans out over worker
processes and is served from the persistent result cache on re-runs.

Run:  python examples/design_space_exploration.py [--jobs N] [--cache-dir DIR]
"""

import argparse
import sys

from repro import AreaModel, HyMMConfig
from repro.bench import format_table
from repro.runtime import JobSpec, ResultCache, SweepExecutor

_DATASET = "amazon-photo"
_SCALE = 0.15


def _spec(**overrides):
    return JobSpec(
        dataset=_DATASET,
        kind="hymm",
        scale=_SCALE,
        seed=5,
        feature_length=128,
        config=HyMMConfig(**overrides),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="worker processes (default: 1 = serial)")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="persist results here and skip re-simulation")
    args = parser.parse_args()

    dmb_sizes = (16, 32, 64, 128, 256)
    thresholds = (0.05, 0.1, 0.2, 0.4, 0.8)
    pe_widths = (8, 16, 32)

    dmb_specs = [_spec(dmb_bytes=kb * 1024) for kb in dmb_sizes]
    thr_specs = [_spec(dmb_bytes=32 * 1024, threshold_fraction=f)
                 for f in thresholds]
    pe_specs = [_spec(n_pes=pes) for pes in pe_widths]

    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    executor = SweepExecutor(
        n_jobs=args.jobs,
        cache=cache,
        progress=lambda rec, done, total: print(
            f"  [{done}/{total}] {rec.label}: {rec.status}", file=sys.stderr
        ),
    )
    sweep = executor.run(dmb_specs + thr_specs + pe_specs)
    print(f"Sweep: {sweep.manifest.summary()}\n")

    print("DMB capacity sweep (performance vs area):")
    rows = []
    for kb, spec in zip(dmb_sizes, dmb_specs):
        result = sweep.for_spec(spec)
        rows.append([
            f"{kb} KB",
            result.stats.cycles,
            result.stats.dram_total_bytes() / 1024,
            AreaModel(spec.config).total_mm2("7nm"),
        ])
    print(format_table(["DMB", "cycles", "DRAM KB", "area mm^2"], rows))

    print("\nTiling-threshold sweep (Section IV-E fixes 20%):")
    rows = []
    for frac, spec in zip(thresholds, thr_specs):
        result = sweep.for_spec(spec)
        rows.append([
            f"{int(frac * 100)}%",
            result.stats.cycles,
            result.stats.hit_rate(),
        ])
    print(format_table(["threshold", "cycles", "hit rate"], rows))

    print("\nPE-array width sweep (Table III uses 16 MACs):")
    rows = []
    for pes, spec in zip(pe_widths, pe_specs):
        result = sweep.for_spec(spec)
        rows.append([
            pes,
            result.stats.cycles,
            AreaModel(spec.config).report("7nm").components["PE Array"],
        ])
    print(format_table(["PEs", "cycles", "PE area mm^2"], rows))


if __name__ == "__main__":
    main()
