"""Fixture for the serve-hygiene rule: blocking calls in async code.

Loaded by the analyzer tests under the module name
``repro.serve.fixture`` (in scope) and ``repro.runtime.fixture``
(out of scope, must be clean).  Never imported.
"""

import json
import os
import subprocess
import time
from pathlib import Path
from time import sleep as nap


async def bad_handler(path):
    time.sleep(0.1)  # VIOLATION: time.sleep in async
    nap(0.1)  # VIOLATION: aliased time.sleep
    with open(path) as fh:  # VIOLATION: sync open in async
        doc = json.load(fh)  # VIOLATION: json.load in async
    subprocess.run(["true"])  # VIOLATION: subprocess in async
    os.replace(path, path)  # VIOLATION: blocking os call in async
    text = Path(path).read_text()  # VIOLATION: Path I/O in async
    return doc, text


async def good_handler(loop, path):
    import asyncio

    await asyncio.sleep(0.1)  # fine: async sleep
    payload = json.dumps({"ok": True})  # fine: pure CPU

    def worker():  # nested sync def: a to_thread target, exempt
        time.sleep(0.1)
        with open(path) as fh:
            return json.load(fh)

    doc = await asyncio.to_thread(worker)
    return payload, doc


def sync_helper(path):
    """Module-level sync function: out of the rule's reach."""
    time.sleep(0.0)
    with open(path) as fh:
        return json.load(fh)
