"""Decoupled access/execute engine.

Models the HyMM pipeline of SMQ -> LSQ -> PE array (Sections IV-A..C)
at vector-op granularity:

* the **frontend** (SMQ feeding the LSQ) issues one memory request per
  cycle and may run ahead of the backend by up to ``lsq_depth``
  requests -- exactly the latency-hiding role the paper gives the LSQ
  ("while a missed load instruction waits ... subsequent load
  instructions can continue execution");
* the **backend** (the 16-MAC PE array) executes one scalar x vector
  MAC per cycle, in order, waiting when its operand has not arrived;
* **store-to-load forwarding**: a load whose address matches a recent
  store is served from the LSQ without touching the DMB (Section IV-B);
  the forwarding window is the LSQ's 128 entries;
* the sparse operand itself (pointers + indices + values) arrives as an
  SMQ **stream** that charges DRAM bandwidth; the stream can throttle
  the frontend when bandwidth saturates, but its latency is hidden by
  the SMQ's pointer/index buffers.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from itertools import accumulate, repeat
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.buffer import CLASS_INDEX, CLASS_PARTIAL, CacheBuffer
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats

#: Engine implementations selectable via ``HyMMConfig.engine``.
ENGINE_KINDS = ("scalar", "batched")

#: Address bits below the (space, layer) prefix of
#: :class:`repro.hymm.dmb.AddressMap` addresses.  The batched engine
#: tracks which prefixes currently sit in the forwarding window so a
#: whole load batch over a different matrix can skip the per-address
#: store-map probe.
_SPACE_BITS = 32

_PARTIAL_IDX = CLASS_INDEX[CLASS_PARTIAL]

#: Minimum all-hit prefix length worth routing through the vector lane
#: (below this the numpy setup costs more than the flat loop saves).
_LANE_MIN = 48

#: Minimum distinct-miss run length worth processing as one epoch
#: (below this the run scan + bulk commit cost more than the per-miss
#: ``_read_miss``/``_insert`` frames they replace).
_EPOCH_MIN = 8

#: Minimum merge-*hit* run length.  Hit frames are far cheaper than
#: miss frames (no MSHR/eviction machinery to skip), so the epoch's
#: fixed per-attempt cost -- gather, distinctness and residency cuts,
#: floor gather, window rebuild, bulk commit -- needs a longer run to
#: amortize; short runs stay on the flat loop, which is already
#: flat-in-locals.  Tuned on the gcod/cwp merge distributions (runs
#: cluster at 8-16 with a long tail; the tail is where epochs pay).
_MERGE_HIT_MIN = 64

#: Minimum store/accumulate *hit* run length, same reasoning as
#: ``_MERGE_HIT_MIN`` (one leg per frame instead of two, so the
#: break-even sits lower).
_HIT_RUN_MIN = 24

#: Exactness gate for the vector lanes: every timeline value must sit
#: on the 2^-16 dyadic grid with magnitude below 2^35.  All simulator
#: cycle values are sums of multiples of 1/64 (DRAM transfer costs) and
#: integers (latencies, per-cycle steps), so in practice every value
#: qualifies; the gate makes the lane *provably* bit-exact -- on-grid
#: bounded operands make every add/max in the recurrence exact real
#: arithmetic, and exact arithmetic makes the closed form identical to
#: the sequential loop.  Any off-grid value falls back to the flat loop.
_LANE_MAG = float(1 << 35)


def _lane_scalar_ok(v: float) -> bool:
    return -_LANE_MAG < v < _LANE_MAG and (v * 65536.0).is_integer()


class AccessExecuteEngine:
    """One in-order decoupled pipeline over a shared memory hierarchy."""

    def __init__(
        self,
        buffer: CacheBuffer,
        dram: DRAM,
        stats: SimStats,
        lsq_depth: int = 128,
        forwarding: bool = True,
        smq_buffer_bytes: int = 16 * 1024,
        start_cycle: float = 0.0,
        tracer: Optional[Tracer] = None,
    ):
        if lsq_depth <= 0:
            raise ValueError("lsq_depth must be positive")
        self.buffer = buffer
        self.dram = dram
        self.stats = stats
        #: Simulated-time event sink; NULL_TRACER (disabled) by default,
        #: so the per-batch cost is one ``enabled`` check.  Tracing never
        #: touches ``stats`` -- cycle counts and counters are identical
        #: whether or not a tracer is attached.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.lsq_depth = lsq_depth
        self.forwarding = forwarding
        # Frontend slack granted by the SMQ's on-chip stream buffers.
        self._stream_slack = smq_buffer_bytes / dram.config.bytes_per_cycle
        #: Frontend load timeline: when the next read request can issue
        #: (the DMB's read queue accepts one request per cycle).
        self.issue_t = float(start_cycle)
        #: Store timeline: the DMB's *write queue* is a separate port
        #: (Fig. 3 shows distinct read/write queues), so stores and
        #: accumulator traffic do not steal load-issue slots.
        self.write_t = float(start_cycle)
        #: Backend timeline: when the PE array finishes its last op.
        self.exec_t = float(start_cycle)
        # Ring of backend completion times, one slot per LSQ entry: the
        # frontend reuses a slot only after the backend consumed it.
        self._ring = [float(start_cycle)] * lsq_depth
        self._k = 0
        # Store-to-load forwarding window (bounded by LSQ depth).
        self._store_map: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    # Compute + memory primitives
    # ------------------------------------------------------------------
    def mac_load(self, addr: int, cls: str, tag: str) -> None:
        """One vector MAC whose dense operand is loaded from memory."""
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.issue_t + 1.0, slot)
        forwarded = self.forwarding and addr in self._store_map
        if forwarded:
            ready = max(issue, self._store_map[addr])
            self.stats.lsq_forwards += 1
        else:
            ready, issue = self.buffer.read(issue, addr, cls, tag)
        self.issue_t = issue
        self.exec_t = max(self.exec_t + 1.0, ready)
        self._ring[self._k % self.lsq_depth] = self.exec_t
        self._k += 1
        self.stats.busy_cycles += 1

    def mac_stream_load(self, addr: int, cls: str, tag: str) -> None:
        """One vector MAC whose operand arrives on a *sequential* stream.

        OP-mode engines consume dense rows in ascending order ("The OP
        architecture involves sequential input reads", Section III), so
        a streaming prefetcher fetches them without occupying MSHRs or
        paying per-access latency.  If the line is already on-chip it is
        read from the buffer (a hit); otherwise it streams from DRAM --
        counted as a miss (the data was off-chip) but charged only
        bandwidth.  Streamed lines are not allocated: the PE stationary
        buffer holds them and they have no further reuse this pass.
        """
        if self.buffer.contains(addr):
            self.mac_load(addr, cls, tag)
            return
        self.stats.requests_issued += 1
        self.stats.buffer_misses[tag] += 1
        self.issue_t += 1.0
        end = self.dram.stream_read(self.issue_t, self.buffer.line_bytes, tag)
        throttled = end - self._stream_slack
        if throttled > self.issue_t:
            self.issue_t = throttled
        self.exec_t = max(self.exec_t + 1.0, self.issue_t)
        self.stats.busy_cycles += 1

    def load(self, addr: int, cls: str, tag: str) -> None:
        """Fetch one vector without issuing a MAC (the consuming ALU op
        follows separately, e.g. the add of a PE-side read-modify-write).
        The backend waits for the data but records no busy cycle."""
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.issue_t + 1.0, slot)
        if self.forwarding and addr in self._store_map:
            ready = max(issue, self._store_map[addr])
            self.stats.lsq_forwards += 1
        else:
            ready, issue = self.buffer.read(issue, addr, cls, tag)
        self.issue_t = issue
        self.exec_t = max(self.exec_t, ready)
        self._ring[self._k % self.lsq_depth] = self.exec_t
        self._k += 1

    def mac_local(self, n: int = 1) -> None:
        """``n`` vector MACs on operands already held in the PE
        stationary buffers (no memory request)."""
        self.exec_t += n
        self.stats.busy_cycles += n

    def alu_op(self, n: int = 1) -> None:
        """``n`` PE-array cycles of non-MAC ALU work (e.g. merge adds);
        counts as busy (the adder is doing useful work)."""
        self.exec_t += n
        self.stats.busy_cycles += n

    def wait_until(self, cycle: float) -> None:
        """Stall the backend until ``cycle`` (if it is in the future)."""
        if cycle > self.exec_t:
            self.exec_t = cycle

    def store(self, addr: int, cls: str, tag: str, allocate: bool = True) -> None:
        """Store one result vector through the LSQ into the DMB.

        The store occupies an LSQ slot at issue time but does *not*
        block the frontend until the data exists: the LSQ holds the
        entry and performs the write once the producing op completes
        (the paper's LSQ explicitly decouples stores this way).
        ``allocate=False`` streams it to DRAM (write-through,
        no-allocate) -- used for outputs with no expected reuse.
        """
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.write_t + 1.0, slot)
        # The buffer/DRAM see the request at its (monotone) issue time;
        # the LSQ entry is held until the producing op's data exists.
        self.buffer.write(issue, addr, cls, tag, allocate=allocate)
        self.write_t = issue
        self._ring[self._k % self.lsq_depth] = max(issue + 1.0, self.exec_t)
        self._k += 1
        self._record_store(addr, self.exec_t)

    def accumulate_store(self, addr: int, tag: str = "partial") -> None:
        """Emit one partial output to the DMB's near-memory accumulator.

        The add happens at the buffer, not in the PE array, so the
        backend does not stall; the request still occupies an LSQ slot
        and the DMB's write queue.
        """
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.write_t + 1.0, slot)
        self.buffer.accumulate(issue, addr, tag)
        self.write_t = issue
        self._ring[self._k % self.lsq_depth] = max(issue + 1.0, self.exec_t)
        self._k += 1
        self._record_store(addr, self.exec_t)

    def rmw(self, addr: int, cls: str, tag: str) -> None:
        """Read-modify-write of one output vector *through the PE array*
        (the no-near-memory-accumulator way to merge a partial output):
        load the current value, spend an adder cycle, store it back."""
        self.load(addr, cls, tag)
        self.alu_op(1)
        self.store(addr, cls, tag, allocate=True)

    def stream(self, nbytes: int, tag: str) -> None:
        """Consume ``nbytes`` of an SMQ-prefetched sequential stream.

        Charges DRAM bandwidth; throttles the frontend only if the
        stream falls more than one SMQ buffer behind the consumption
        point.
        """
        end = self.dram.stream_read(self.issue_t, nbytes, tag)
        throttled = end - self._stream_slack
        if throttled > self.issue_t:
            self.issue_t = throttled

    # ------------------------------------------------------------------
    def drain(self) -> float:
        """Finish in-flight work; returns the final cycle of this engine."""
        return max(self.issue_t, self.write_t, self.exec_t)

    # ------------------------------------------------------------------
    # State snapshot / restore (trace replay)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, object]:
        """JSON-able snapshot of all engine timing state.

        Every value is a dyadic-rational float (built from the start
        cycle by ``max`` and additions of on-grid quantities), so JSON
        round-trips it exactly; the store map is captured in insertion
        order so the forwarding-window FIFO trim replays identically.
        """
        return {
            "issue_t": self.issue_t,
            "write_t": self.write_t,
            "exec_t": self.exec_t,
            "ring": list(self._ring),
            "k": self._k,
            "store_map": [[addr, ready] for addr, ready in self._store_map.items()],
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Rebuild engine timing state from :meth:`snapshot_state`."""
        self.issue_t = float(state["issue_t"])  # type: ignore[arg-type]
        self.write_t = float(state["write_t"])  # type: ignore[arg-type]
        self.exec_t = float(state["exec_t"])  # type: ignore[arg-type]
        ring = state["ring"]
        self._ring[:] = [float(v) for v in ring]  # type: ignore[union-attr]
        self._k = int(state["k"])  # type: ignore[call-overload]
        self._store_map.clear()
        for addr, ready in state["store_map"]:  # type: ignore[union-attr]
            self._store_map[int(addr)] = float(ready)

    def _record_store(self, addr: int, ready: float) -> None:
        if not self.forwarding:
            return
        self._store_map[addr] = ready
        self._store_map.move_to_end(addr)
        while len(self._store_map) > self.lsq_depth:
            self._store_map.popitem(last=False)

    def _track_partial_peak(self) -> None:
        """PE-merge footprint tracking: distinct partial lines resident
        plus those spilled, mirroring the near-memory accumulator's
        bookkeeping (the split organisation routes partials to its
        output half)."""
        target = getattr(self.buffer, "output_buffer", self.buffer)
        footprint = (
            target.resident_lines(CLASS_PARTIAL) + len(target._spilled_partials)
        ) * target.line_bytes
        if footprint > self.stats.partial_peak_bytes:
            self.stats.partial_peak_bytes = footprint

    # ------------------------------------------------------------------
    # Batch primitives (reference implementations)
    #
    # Kernels always issue whole address batches.  These loops over the
    # scalar primitives *define* the semantics; the batched engine
    # subclass replaces them with inlined fast paths that must stay
    # cycle- and stats-exact (the equivalence property tests compare
    # full ``SimStats`` between the two paths).
    # ------------------------------------------------------------------
    def mac_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        """One :meth:`mac_load` per address, in array order."""
        t0 = self.drain()
        mac_load = self.mac_load
        for addr in addrs.tolist():
            mac_load(addr, cls, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "mac_load_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        """One :meth:`load` per address, in array order."""
        t0 = self.drain()
        load = self.load
        for addr in addrs.tolist():
            load(addr, cls, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "load_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def mac_stream_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        """One :meth:`mac_stream_load` per address, in array order."""
        t0 = self.drain()
        mac_stream_load = self.mac_stream_load
        for addr in addrs.tolist():
            mac_stream_load(addr, cls, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "mac_stream_load_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def store_batch(
        self, addrs: np.ndarray, cls: str, tag: str, allocate: bool = True
    ) -> None:
        """One :meth:`store` per address, in array order."""
        t0 = self.drain()
        store = self.store
        for addr in addrs.tolist():
            store(addr, cls, tag, allocate=allocate)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "store_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def accumulate_store_batch(self, addrs: np.ndarray, tag: str = "partial") -> None:
        """One :meth:`accumulate_store` per address, in array order."""
        t0 = self.drain()
        accumulate_store = self.accumulate_store
        for addr in addrs.tolist():
            accumulate_store(addr, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "accumulate_store_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "tag": tag},
            )

    def merge_rmw_batch(
        self,
        addrs: np.ndarray,
        cls: str,
        tag: str,
        touched: Set[int],
        track_peak: bool = False,
    ) -> None:
        """Merge one partial output per address through the PE array.

        The no-near-memory-accumulator merge path: the first touch of a
        line write-allocates (nothing to read yet); later touches are a
        read-modify-write.  ``touched`` is the caller's cross-batch set
        of first-touched addresses; ``track_peak`` additionally mirrors
        the accumulator's partial-footprint peak tracking (kernels track
        it, the CWP baseline's PE-local pool does not)."""
        t0 = self.drain()
        stats = self.stats
        for addr in addrs.tolist():
            stats.partials_produced += 1
            if addr in touched:
                self.rmw(addr, cls, tag)
            else:
                touched.add(addr)
                self.store(addr, cls, tag)
            if track_peak:
                self._track_partial_peak()
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "merge_rmw_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )


class BatchedAccessExecuteEngine(AccessExecuteEngine):
    """Vectorized batch-issue fast path of the decoupled pipeline.

    Overrides every batch primitive with a single Python loop that
    inlines the per-address hot path -- LSQ ring slot, store-to-load
    forwarding probe, slot-arena residency probe, one-splice intrusive
    LRU touch and the three-timeline arithmetic -- and batches the
    stats-counter updates.  Primary misses run through the buffer's
    single-frame :meth:`repro.sim.buffer.CacheBuffer._read_miss` /
    ``_insert``, so the MSHR/DRAM/eviction machinery has exactly one
    implementation.

    On top of the flat loops, the batch primitives make *lazy* vector
    attempts at the cursor -- no pre-classification pass over the
    batch.  Load-side, **all-hit runs** go through a numpy vector lane
    (:meth:`_all_hit_lane`): when a run is entirely resident, ready in
    time, and outside the forwarding window, the uniform-latency
    timeline recurrence is computed elementwise in closed form and the
    LRU touches applied as one run of C-level list splices.  **Distinct
    primary-miss runs** (loads and allocating stores) go through the
    epoch path (:meth:`_miss_epoch` / :meth:`_store_epoch`), which
    replays the per-miss float recurrence with bulk state commits.
    Both verify their own run and decline in O(1) probes, so an
    attempt is nearly free; the lane additionally only engages when an
    exactness gate proves the closed form bit-identical to the
    sequential loop (all operands on a dyadic grid, see ``_LANE_MAG``).
    Everything else takes the flat loop, which performs the *same
    scalar operations in the same order* as the reference engine.
    Either way every cycle value is bit-identical to the scalar engine
    -- the equivalence contract ``docs/performance.md`` documents and
    ``tests/sim/test_engine_equivalence.py`` enforces.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Live count of forwarding-window addresses per address-space
        # prefix (``addr >> _SPACE_BITS``), kept in sync with every
        # store-map insertion/trim; see :meth:`_forward_active`.
        self._store_spaces: Dict[int, int] = {}
        # Cached [0, 1, ..., lsq_depth) for the vector lane's prefix-max
        # recurrence (sliced per call, never reallocated).
        self._lane_idx = np.arange(self.lsq_depth, dtype=np.float64)
        # Whole-simulation grid proof for the vector lane.  Every cycle
        # value any engine produces is built from the start cycle by
        # max() and by adding 1.0, integer latencies, or DRAM transfer
        # costs ``nbytes / bytes_per_cycle``.  When bytes_per_cycle is a
        # power of two <= 2^16, every such cost is an exact multiple of
        # 2^-16; with a nonnegative on-grid start cycle the induction
        # gives *every* timeline/ring/ready/forwarding value nonnegative
        # and on the 2^-16 grid, so the lane's per-array grid gate is
        # provably redundant and only magnitude checks remain.
        bpc = self.dram.config.bytes_per_cycle
        self._lane_grid_exact = (
            bpc > 0.0
            and math.frexp(bpc)[0] == 0.5
            and bpc <= 65536.0
            and self.issue_t >= 0.0
            and (self.issue_t * 65536.0).is_integer()
            and (self._stream_slack * 65536.0).is_integer()
        )

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore timing state and rebuild the space-prefix index the
        batched forwarding filter keys on (derived from the store map,
        so it is not part of the snapshot wire format)."""
        super().restore_state(state)
        spaces = self._store_spaces
        spaces.clear()
        for a in self._store_map:
            sp = a >> _SPACE_BITS
            spaces[sp] = spaces.get(sp, 0) + 1

    # ------------------------------------------------------------------
    # Forwarding-window bookkeeping
    # ------------------------------------------------------------------
    def _record_store(self, addr: int, ready: float) -> None:
        if not self.forwarding:
            return
        store_map = self._store_map
        if addr in store_map:
            store_map[addr] = ready
            store_map.move_to_end(addr)
            return
        store_map[addr] = ready
        spaces = self._store_spaces
        sp = addr >> _SPACE_BITS
        spaces[sp] = spaces.get(sp, 0) + 1
        while len(store_map) > self.lsq_depth:
            a, _ = store_map.popitem(last=False)
            sp = a >> _SPACE_BITS
            c = spaces[sp] - 1
            if c:
                spaces[sp] = c
            else:
                del spaces[sp]

    def _forward_active(self, addr_list: List[int]) -> bool:
        """Whether the forwarding window could match *any* address of
        the batch.

        Kernels emit monotone address batches, so equal first/last
        space prefixes mean the whole batch lives in one (space, layer)
        region and a single ``_store_spaces`` lookup settles it; a
        batch spanning regions conservatively probes per address.
        """
        if not self.forwarding or not self._store_map:
            return False
        sp = addr_list[0] >> _SPACE_BITS
        if sp != (addr_list[-1] >> _SPACE_BITS):
            return True
        return sp in self._store_spaces

    # ------------------------------------------------------------------
    # All-hit vector lane
    # ------------------------------------------------------------------
    def _all_hit_lane(self, buf: CacheBuffer, addr_list: List[int], mac: bool) -> int:
        """Vectorize the longest all-hit prefix of a load batch.

        Preconditions (checked here; any failure returns 0 or a shorter
        prefix and the caller's flat loop handles the rest):

        * every prefix address resident in ``buf`` (hits never allocate
          or evict, so residency is invariant across the prefix);
        * every hit line ready by its issue floor
          (``line.ready <= issue_t + 1 + hit_latency``), so each
          per-element ready is exactly ``issue + hit_latency``;
        * the caller established the forwarding window cannot match
          (space filter empty), so no per-address store-map probe;
        * ``issue_t``/``exec_t`` and every consumed LSQ ring value on
          the 2^-16 grid with magnitude < 2^35, so the closed-form
          recurrences below are exact real arithmetic -- the same
          per-element operations as the flat loop, just elementwise.

        With ``S_j`` the pre-lane ring values (``j < depth``), the
        sequential all-hit recurrences

        ``issue_i = max(issue_(i-1) + 1, ring_slot_i)``
        ``ready_i = issue_i + hit_latency``
        mac:   ``exec_i  = max(exec_(i-1) + 1, ready_i)``
        plain: ``exec_i  = max(exec_(i-1), ready_i)``

        unroll to ``issue_i = i + base_i`` with
        ``base_i = max(issue_t + 1, max_{j<=min(i, depth-1)}(S_j - j))``
        -- a prefix maximum over *at most lsq_depth* values, because
        ring slots consumed beyond ``depth`` were written by this lane
        and provably never bind: the exec timeline leads the issue
        timeline by at most ``C = max(exec_t - issue_t, hit_latency)``
        throughout an all-hit run, so the slot-reuse constraint
        ``exec_(i-depth) <= issue_(i-1) + 1`` holds whenever
        ``C <= depth`` (checked; the lane truncates to ``depth``
        elements otherwise).  Past ``depth`` everything is affine in
        ``i``, so the whole lane costs O(lsq_depth) numpy work no
        matter how long the batch.

        The per-element ready check itself is usually free: the
        buffer's ``_max_ready`` watermark bounds every resident line's
        ready time, so when it sits at or below the first issue floor
        no gather is needed at all.

        LRU touches are applied afterwards in batch order -- each one
        C-level intrusive-list splice, duplicates re-splicing exactly
        like the sequential per-hit touches.

        Returns the number of prefix elements consumed (0 if the lane
        did not engage); updates ``issue_t``/``exec_t``/ring/``_k`` and
        the LRU lists for exactly that prefix.
        """
        slot_of = buf._slot_of
        if not slot_of or addr_list[0] not in slot_of:
            return 0
        issue_t = self.issue_t
        exec_t = self.exec_t
        if self._lane_grid_exact:
            # On-grid and nonnegative by construction; bound magnitude.
            if issue_t >= _LANE_MAG or exec_t >= _LANE_MAG:
                return 0
        elif not (_lane_scalar_ok(issue_t) and _lane_scalar_ok(exec_t)):
            return 0
        n = len(addr_list)
        try:
            slot_list = list(map(slot_of.__getitem__, addr_list))
            m = n
        except KeyError:
            # Some later address is non-resident: find the resident
            # prefix by direct probing -- the raised KeyError guarantees
            # the loop stops before the end, so a short prefix costs
            # O(prefix) probes, never a full-tail residency pass.
            m = 1
            while addr_list[m] in slot_of:
                m += 1
            if m < _LANE_MIN:
                return 0
            slot_list = list(map(slot_of.__getitem__, addr_list[:m]))
        hit_lat = buf.hit_latency
        floor0 = issue_t + 1.0 + hit_lat
        if buf._max_ready > floor0:
            ready_list = list(map(buf._slot_ready.__getitem__, slot_list))
            if max(ready_list) > floor0:
                ready_arr = np.fromiter(ready_list, np.float64, count=m)
                m = int(np.argmin(ready_arr <= floor0))
                if m < _LANE_MIN:
                    return 0
                slot_list = slot_list[:m]
        depth = self.lsq_depth
        if m > depth and exec_t - issue_t > depth:
            # The ring-feedback no-bind bound needs C <= depth; consume
            # only pre-lane ring slots instead.
            m = depth
            slot_list = slot_list[:m]
        ring = self._ring
        k0 = self._k % depth
        w = m if m < depth else depth
        if k0 + w <= depth:
            S = np.array(ring[k0 : k0 + w], dtype=np.float64)
        else:
            cut = depth - k0
            S = np.empty(w, dtype=np.float64)
            S[:cut] = ring[k0:]
            S[cut:] = ring[: w - cut]
        idx = self._lane_idx[:w]
        if self._lane_grid_exact:
            # Ring values are on-grid and nonnegative by construction
            # (see ``__init__``); compute the prefix max in place and
            # bound the magnitude afterwards -- ``bl + depth`` bounds
            # every consumed ring value, so one scalar comparison
            # replaces the per-array gate.  (An over-bound value makes
            # ``bl`` huge even under rounding, so the check is safe.)
            np.subtract(S, idx, out=S)
            np.maximum.accumulate(S, out=S)
            base = np.maximum(S, issue_t + 1.0, out=S)
            bl = float(base[w - 1])
            if bl + depth >= _LANE_MAG:
                return 0
        else:
            # Exactness gate on the consumed pre-lane ring values
            # (values the lane writes are grid sums of grid values,
            # still exact).
            scaled = S * 65536.0
            if not (
                (np.abs(S) < _LANE_MAG).all()
                and (scaled == np.floor(scaled)).all()
            ):
                return 0
            base = np.maximum(issue_t + 1.0, np.maximum.accumulate(S - idx))
            bl = float(base[w - 1])
        h = float(hit_lat)
        if mac:
            np.add(base, h, out=base)
            np.maximum(base, exec_t + 1.0, out=base)
            np.add(base, idx, out=base)
            e_head = base.tolist()
        else:
            np.add(base, h, out=base)
            np.add(base, idx, out=base)
            e_head = np.maximum(base, exec_t, out=base).tolist()
        if m <= depth:
            if k0 + m <= depth:
                ring[k0 : k0 + m] = e_head
            else:
                cut = depth - k0
                ring[k0:] = e_head[:cut]
                ring[: m - cut] = e_head[cut:]
            exec_last = e_head[-1]
        else:
            # The final ring state is E_i for the last `depth` elements;
            # past i = depth the base is the constant `bl`, so those
            # values are affine in i.
            lo = m - depth
            start_i = depth if lo < depth else lo
            if mac:
                c = max(exec_t + 1.0, bl + h)
                aff = (np.arange(start_i, m, dtype=np.float64) + c).tolist()
            else:
                aff = np.maximum(
                    exec_t, np.arange(start_i, m, dtype=np.float64) + (bl + h)
                ).tolist()
            tail_vals = (e_head[lo:] + aff) if lo < depth else aff
            p0 = (k0 + lo) % depth
            cut = depth - p0
            ring[p0:] = tail_vals[:cut]
            ring[:p0] = tail_vals[cut:]
            exec_last = tail_vals[-1]
        self.issue_t = (m - 1) + max(issue_t + 1.0, bl)
        self.exec_t = exec_last
        self._k += m
        if buf.lru:
            # Bulk LRU touch in batch order: per-slot C-level list
            # splices; a duplicate slot re-splices to the tail exactly
            # like the sequential per-hit touches would.
            ods = buf._lru_mte
            cls_arr = buf._slot_cls
            for s in slot_list:
                ods[cls_arr[s]](s)
        return m

    # ------------------------------------------------------------------
    # Miss epochs
    # ------------------------------------------------------------------
    def _miss_epoch(
        self, buf: CacheBuffer, addr_list: List[int], i: int,
        cls: str, tag: str, mac: bool,
    ) -> int:
        """Process a run of primary read misses as one epoch.

        The run starting at ``addr_list[i]`` extends over consecutive
        *distinct* addresses that are neither resident nor pending --
        each one a primary miss whose processing cannot change the
        classification of the ones after it (a fill only adds lines the
        run does not revisit; evictions only remove lines the run never
        holds, because victims are resident and run addresses are not).
        That independence is the epoch invariant: the timing recurrence
        below performs *exactly* the float operations of the flat
        ``_read_miss`` path in the same order -- LSQ slot floor, MSHR
        retire/capacity stalls against the monotone merged ready list,
        channel occupancy with the dirty-victim writeback interleaved at
        its exact position -- so every cycle value is bit-identical; the
        arena/MSHR *state* mutations are deferred and applied in bulk
        (:meth:`CacheBuffer._commit_epoch`, one MSHR file rebuild).

        The run is additionally capped at ``free slots + plannable
        victims`` (:meth:`CacheBuffer._plan_victims`); a capacity-capped
        epoch simply ends early and the caller retries at the cut, so
        chunking never loses coverage.  Returns addresses consumed (0 if
        below ``_EPOCH_MIN``); the caller owns the hit/miss/byte stat
        counters, exactly as it does around the flat ``_read_miss``.
        """
        slot_of = buf._slot_of
        outstanding = buf._outstanding
        a = addr_list[i]
        if a in slot_of or a in outstanding:
            # Fast decline -- the caller probes lazily, so a resident or
            # pending cursor address is the common case; bail before any
            # allocation.
            return 0
        n = len(addr_list)
        run: List[int] = []
        seen: Set[int] = set()
        j = i
        while j < n:
            a = addr_list[j]
            if a in slot_of or a in outstanding or a in seen:
                break
            run.append(a)
            seen.add(a)
            j += 1
        m = len(run)
        if m < _EPOCH_MIN:
            return 0
        free0 = len(buf._free_slots)
        ci = CLASS_INDEX[cls]
        victims: Sequence[int] = ()
        if m > free0:
            victims = buf._plan_victims(ci, m - free0)
            cap = free0 + len(victims)
            if cap < m:
                if cap < _EPOCH_MIN:
                    return 0
                m = cap
                del run[m:]
        slot_dirty = buf._slot_dirty
        vdirty = [slot_dirty[s] for s in victims]
        fifo = buf._mshr_fifo
        merged = [r for r, _ in fifo]
        pre = len(merged)
        popped = 0
        limit = buf.mshr_entries
        c = buf._line_cost
        lat = buf._read_latency
        dram = buf.dram
        nf = dram.next_free
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        exec_t = self.exec_t
        readies: List[float] = []
        rd_append = readies.append
        mg_append = merged.append
        for idx in range(m):
            rk = ring[k]
            b = issue_t + 1.0
            if rk > b:
                b = rk
            # Retire completed misses, then stall for MSHR capacity:
            # the merged ready list is monotone (each fetch's ready is
            # strictly after its predecessor's), so retiring is a front
            # pointer and the capacity stall binds at one element.
            total = pre + idx
            while popped < total and merged[popped] <= b:
                popped += 1
            over = total - limit + 1
            if over > popped:
                mo = merged[over - 1]
                if mo > b:
                    b = mo
                popped = over
            u = nf if nf > b else b
            t = u + c
            ready = t + lat
            ev = idx - free0
            if ev >= 0 and vdirty[ev]:
                # Dirty victim: its writeback occupies the channel right
                # after this fetch (``_insert`` runs after the fetch in
                # ``_read_miss``, and its ``max(next_free, cycle)``
                # floor resolves to ``next_free`` there).
                nf = t + c
            else:
                nf = t
            mg_append(ready)
            rd_append(ready)
            issue_t = b
            if mac:
                e = exec_t + 1.0
                if ready > e:
                    e = ready
                exec_t = e
            else:
                if ready > exec_t:
                    exec_t = ready
            ring[k] = exec_t
            k += 1
            if k == depth:
                k = 0
        dram.next_free = nf
        self.issue_t = issue_t
        self.exec_t = exec_t
        self._k += m
        # Rebuild the MSHR file: surviving entries keep FIFO==ready
        # order because every epoch ready exceeds every pre-epoch one
        # (the channel clock is monotone).
        if popped:
            addrs_all = [a for _, a in fifo]
            addrs_all += run
            fifo.clear()
            outstanding.clear()
            rem_r = merged[popped:]
            rem_a = addrs_all[popped:]
            fifo.extend(zip(rem_r, rem_a))
            outstanding.update(zip(rem_a, rem_r))
        else:
            fifo.extend(zip(readies, run))
            outstanding.update(zip(run, readies))
        buf._commit_epoch(ci, run, readies, victims, vdirty, False)
        return m

    def _store_epoch(
        self, buf: CacheBuffer, addr_list: List[int], i: int,
        cls: str, tag: str, partial: bool,
    ) -> int:
        """Process a run of write-allocate store misses as one epoch.

        Same structure as :meth:`_miss_epoch` without the MSHR/fetch
        machinery: each miss inserts a dirty line ready at ``issue +
        hit_latency``, the write timeline advances by the LSQ slot
        floor alone, and only dirty-victim writebacks touch the DRAM
        channel.  ``partial=True`` (the accumulate path) additionally
        excludes spilled addresses from the run (they take the flat
        refetch path) and reproduces the per-insert partial footprint
        bookkeeping -- ``partials_produced``, strided timeline samples,
        and the peak, which within an epoch is the *final* footprint
        because inserting one partial line per step never shrinks it.
        The caller must sync ``stats.partials_produced`` /
        ``partial_peak_bytes`` around the call, exactly as it does
        around the flat spilled-refetch branch.
        """
        slot_of = buf._slot_of
        spilled = buf._spilled_partials
        a = addr_list[i]
        if a in slot_of or (partial and a in spilled):
            # Fast decline before any allocation; see _miss_epoch.
            return 0
        n = len(addr_list)
        run: List[int] = []
        seen: Set[int] = set()
        j = i
        if partial:
            while j < n:
                a = addr_list[j]
                if a in slot_of or a in seen or a in spilled:
                    break
                run.append(a)
                seen.add(a)
                j += 1
        else:
            while j < n:
                a = addr_list[j]
                if a in slot_of or a in seen:
                    break
                run.append(a)
                seen.add(a)
                j += 1
        m = len(run)
        if m < _EPOCH_MIN:
            return 0
        free0 = len(buf._free_slots)
        ci = CLASS_INDEX[cls]
        victims: Sequence[int] = ()
        if m > free0:
            victims = buf._plan_victims(ci, m - free0)
            cap = free0 + len(victims)
            if cap < m:
                if cap < _EPOCH_MIN:
                    return 0
                m = cap
                del run[m:]
        slot_dirty = buf._slot_dirty
        vdirty = [slot_dirty[s] for s in victims]
        c = buf._line_cost
        hit_lat = buf.hit_latency
        dram = buf.dram
        nf = dram.next_free
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        write_t = self.write_t
        # Stores never advance the backend; the ring sees a constant
        # exec floor and the forwarded ready value below is constant.
        exec_t = self.exec_t
        readies: List[float] = []
        rd_append = readies.append
        for idx in range(m):
            rk = ring[k]
            b = write_t + 1.0
            if rk > b:
                b = rk
            write_t = b
            rd_append(b + hit_lat)
            ev = idx - free0
            if ev >= 0 and vdirty[ev]:
                u = nf if nf > b else b
                nf = u + c
            r2 = b + 1.0
            if exec_t > r2:
                r2 = exec_t
            ring[k] = r2
            k += 1
            if k == depth:
                k = 0
        dram.next_free = nf
        self.write_t = write_t
        self._k += m
        if self.forwarding:
            # In-batch store-map updates (the deferred window trim stays
            # at the caller's batch end, same as the flat loops).
            store_map = self._store_map
            spaces = self._store_spaces
            for a in run:
                if a in store_map:
                    store_map[a] = exec_t
                    store_map.move_to_end(a)
                else:
                    store_map[a] = exec_t
                    sp = a >> _SPACE_BITS
                    spaces[sp] = spaces.get(sp, 0) + 1
        if partial:
            stats = self.stats
            counts = buf._class_count
            line_bytes = buf.line_bytes
            base_n = counts[_PARTIAL_IDX] + len(spilled)
            # Only a *clean* partial victim shrinks the footprint (a
            # dirty one moves resident -> spilled, net zero), so the
            # per-insert footprint is ``base_n + t + 1`` minus a rare
            # clean-partial-victim prefix count.
            cls_arr = buf._slot_cls
            cpv: Optional[List[int]] = None
            if victims:
                flags = [
                    1 if (cls_arr[s] == _PARTIAL_IDX and not d) else 0
                    for s, d in zip(victims, vdirty)
                ]
                if any(flags):
                    cpv = list(accumulate(flags))
            stride = stats.PARTIAL_TIMELINE_STRIDE
            timeline = stats.partial_timeline
            pp0 = stats.partials_produced
            first = pp0 + 1
            for p in range(first + (-first) % stride, pp0 + m + 1, stride):
                t = p - pp0 - 1
                e = t + 1 - free0
                drop = cpv[e - 1] if (cpv is not None and e > 0) else 0
                timeline.append((p, (base_n + t + 1 - drop) * line_bytes))
            e = m - free0
            drop = cpv[e - 1] if (cpv is not None and e > 0) else 0
            foot = (base_n + m - drop) * line_bytes
            if foot > stats.partial_peak_bytes:
                stats.partial_peak_bytes = foot
            stats.partials_produced = pp0 + m
        buf._commit_epoch(ci, run, readies, victims, vdirty, True)
        return m

    # ------------------------------------------------------------------
    # Merge / steady-state hit epochs
    # ------------------------------------------------------------------
    def _hit_run_epoch(
        self, buf: CacheBuffer, addr_list: List[int], i: int, tag: str,
        partial: bool,
    ) -> int:
        """Process a run of store hits as one epoch.

        The steady-state counterpart of :meth:`_store_epoch`: a run of
        consecutive *distinct resident* addresses, each a store (or
        near-memory accumulate) hit.  The exactness cut is residency:
        within such a run nothing inserts, evicts or spills, so no
        element's processing can change the classification of the ones
        after it, the partial footprint is constant, and the only state
        the run touches is the run's own slots -- distinct, so the
        dirty/ready/LRU mutations commute into the bulk
        :meth:`CacheBuffer._commit_hit_epoch`.  The write-timeline
        recurrence runs flat-in-locals with the exact float op order of
        the flat hit branch (LSQ slot floor, constant exec floor); the
        run ends at the first duplicate or non-resident address, where
        the flat path's insert/refetch machinery takes over.

        ``partial=True`` (the accumulate path) reproduces the per-hit
        footprint bookkeeping against the stats object at the constant
        footprint -- the caller syncs ``partials_produced`` /
        ``partial_peak_bytes`` around the call, exactly as around
        :meth:`_store_epoch`.  Returns addresses consumed (0 if below
        ``_EPOCH_MIN``); the caller owns the hit counter.

        On grid-exact configurations the whole write recurrence takes
        a closed form, the store-side analogue of :meth:`_all_hit_lane`:
        for the first ``w = min(m, depth)`` frames the slot floors are
        the pre-epoch ring values ``S_j``, so
        ``b_f = max(b_(f-1) + 1, S_f)`` unrolls to the prefix maximum
        ``b_f = (f-1) + max(write_t + 1, max_(j<=f)(S_j - (j-1)))``;
        past ``depth``
        every slot floor was written by this run
        (``ring = max(b_(f-depth) + 1, exec_t)``) and
        ``b_(f-1) + 1 >= b_(f-depth) + 1`` by monotonicity, so the
        recurrence collapses to ``b_f = max(b_(f-1) + 1, exec_t)`` --
        one comparison decides the whole tail: either it never binds
        (``b_w + 1 >= exec_t``, pure ``+1`` per frame) or it binds once
        and then advances by 1.  On the 2^-16 dyadic grid with
        magnitudes below ``_LANE_MAG`` (gated before any mutation)
        every op is exact real arithmetic, so the numpy evaluation is
        bit-identical to the flat loop.
        """
        slot_of = buf._slot_of
        if addr_list[i] not in slot_of:
            # Fast decline before any allocation; see _miss_epoch.
            return 0
        n = len(addr_list)
        tail = addr_list[i:] if i else addr_list
        try:
            # C-level gather, same trick as _all_hit_lane: the raised
            # KeyError finds the resident prefix without a Python loop.
            slots = list(map(slot_of.__getitem__, tail))
            run = tail
            m = n - i
        except KeyError:
            j = i + 1
            while j < n and addr_list[j] in slot_of:
                j += 1
            m = j - i
            if m < _HIT_RUN_MIN:
                return 0
            run = addr_list[i:j]
            slots = list(map(slot_of.__getitem__, run))
        rset = set(run)
        if len(rset) != m:
            # A duplicate cuts the run: rescan for the first repeat.
            seen: Set[int] = set()
            seen_add = seen.add
            m = 0
            for a in run:
                if a in seen:
                    break
                seen_add(a)
                m += 1
            if m < _HIT_RUN_MIN:
                return 0
            run = run[:m]
            slots = slots[:m]
            rset = seen
        if m < _HIT_RUN_MIN:
            return 0
        hit_lat = buf.hit_latency
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        write_t = self.write_t
        # Stores never advance the backend: constant exec floor and
        # constant forwarded ready value, like _store_epoch.
        exec_t = self.exec_t
        readies: Optional[List[float]] = None
        if self._lane_grid_exact and m >= 64:
            # 64, not _EPOCH_MIN: below that the ~10 numpy dispatches
            # of the closed form cost more than the flat-in-locals
            # loop they replace (measured on the hymm/op-tiled
            # accumulate distributions, which cluster at m = 8..48).
            # Closed form (see docstring).  Prefix-max over the at most
            # ``depth`` pre-epoch ring values the run can observe:
            w = m if m < depth else depth
            if k + w <= depth:
                S = np.array(ring[k : k + w], dtype=np.float64)
            else:
                cut = depth - k
                S = np.empty(w, dtype=np.float64)
                S[:cut] = ring[k:]
                S[cut:] = ring[: w - cut]
            idx = self._lane_idx[:w]
            np.subtract(S, idx, out=S)
            np.maximum.accumulate(S, out=S)
            np.maximum(S, write_t + 1.0, out=S)
            np.add(S, idx, out=S)  # b_f for f = 1..w
            r = m - w
            if r:
                bw = float(S[w - 1])
                if bw + 1.0 >= exec_t:
                    tail = np.arange(r, dtype=np.float64) + (bw + 1.0)
                else:
                    tail = np.arange(r, dtype=np.float64) + exec_t
                b_all = np.concatenate([S, tail])
            else:
                b_all = S
            b_last = float(b_all[m - 1])
            if b_last + 1.0 + hit_lat < _LANE_MAG:
                # Magnitude gate passed: commit.  Only the last
                # min(m, depth) ring writes survive; their positions
                # form at most two contiguous ring segments, so the
                # fill is two C-level slice assignments.
                readies = (b_all + float(hit_lat)).tolist()
                f0 = m - depth + 1 if m > depth else 1
                wvals = b_all[f0 - 1 :] + 1.0
                np.maximum(wvals, exec_t, out=wvals)
                wl = wvals.tolist()
                c = len(wl)
                start = (k + f0 - 1) % depth
                seg = depth - start
                if c <= seg:
                    ring[start : start + c] = wl
                else:
                    ring[start:] = wl[:seg]
                    ring[: c - seg] = wl[seg:]
                k = (k + m) % depth
                write_t = b_last
        if readies is None:
            readies = []
            rd_append = readies.append
            for _ in range(m):
                rk = ring[k]
                b = write_t + 1.0
                if rk > b:
                    b = rk
                write_t = b
                rd_append(b + hit_lat)
                r2 = b + 1.0
                if exec_t > r2:
                    r2 = exec_t
                ring[k] = r2
                k += 1
                if k == depth:
                    k = 0
        self.write_t = write_t
        self._k += m
        if self.forwarding:
            # In-batch store-map updates (the deferred window trim stays
            # at the caller's batch end, same as the flat loops).  The
            # sequential per-store effect -- existing entries refreshed
            # and moved to the MRU end, new ones appended, all with the
            # same constant ``exec_t`` value -- leaves the window as:
            # non-run survivors in their original order, then the run
            # in run order.  Deleting the overlap and bulk-appending
            # the whole run reproduces that exactly, with the Python
            # loop shrunk to the overlap instead of the full run.
            store_map = self._store_map
            spaces = self._store_spaces
            common = rset.intersection(store_map)
            nc = len(common)
            if nc:
                for a in common:
                    del store_map[a]
            store_map.update(zip(run, repeat(exec_t)))
            sp = run[0] >> _SPACE_BITS
            if sp == run[m - 1] >> _SPACE_BITS:
                # Deleted entries re-add in the same space (net zero);
                # only genuinely new addresses change the count.
                if m > nc:
                    spaces[sp] = spaces.get(sp, 0) + (m - nc)
            else:
                for a in run:
                    if a not in common:
                        sp = a >> _SPACE_BITS
                        spaces[sp] = spaces.get(sp, 0) + 1
        if partial:
            # Hits never change the partial footprint, so every per-hit
            # peak check and strided timeline sample in the run sees the
            # same value.
            stats = self.stats
            footprint = (
                buf._class_count[_PARTIAL_IDX] + len(buf._spilled_partials)
            ) * buf.line_bytes
            if footprint > stats.partial_peak_bytes:
                stats.partial_peak_bytes = footprint
            stride = stats.PARTIAL_TIMELINE_STRIDE
            timeline = stats.partial_timeline
            pp0 = stats.partials_produced
            first = pp0 + 1
            for p in range(first + (-first) % stride, pp0 + m + 1, stride):
                timeline.append((p, footprint))
            stats.partials_produced = pp0 + m
        buf._commit_hit_epoch(slots, readies)
        return m

    def _merge_hit_epoch(
        self, buf: CacheBuffer, addr_list: List[int], i: int,
        touched: Set[int],
    ) -> Tuple[int, int]:
        """Process a run of read-modify-write hits as one epoch.

        The steady-state merge shape: a run of consecutive *distinct
        resident already-touched* addresses, each one load + adder
        cycle + store-back.  Residency is again the cut (nothing in the
        run inserts or evicts, so classification and footprint are
        frozen) and distinctness makes the slot mutations commute into
        :meth:`CacheBuffer._commit_hit_epoch` -- the load leg's ready
        floors are pre-gathered (an earlier frame's store-back only
        writes its *own* slot, never a later frame's), and the net LRU
        effect of a frame's load-touch + store-touch of the same slot
        is one splice.  The coupled issue/write/exec recurrence runs
        flat-in-locals with the exact float op order of the flat rmw
        path.

        The forwarding window resolves without declining.  When the
        window holds *none* of the run's addresses at entry, no load in
        the run can ever forward -- in-run stores only add run
        addresses, each distinct from every later load, and trims only
        remove entries -- so the per-frame probe disappears and the
        per-store insert/trim sequence commutes into one bulk append +
        trim at the end (inserting ``m`` distinct new entries one at a
        time, trimming after each, ends in exactly the same window as
        inserting all ``m`` and then trimming: the pops take the same
        entries in the same order either way).

        An *overlapping* run keeps the per-frame probe but defers the
        dict surgery.  A load forwards iff its address sits in the
        pre-run window and has not been trimmed yet (in-run stores
        never serve in-run loads -- the run's addresses are distinct),
        and its forwarded value is the pre-run entry's, untouched; the
        frame's store then *refreshes* that entry while a
        non-forwarding frame's store *inserts* and, past ``lsq_depth``,
        trims the oldest unconsumed pre-run entry.  Trims never reach
        in-run entries: ``inserts + refreshes = m <= lsq_depth`` while
        pops number at most ``inserts``, so unconsumed pre-run entries
        always suffice.  A ``gone`` set over the (unmutated) pre-run
        snapshot therefore resolves every probe and pop exactly, and
        the final window -- unconsumed pre-run survivors in order, then
        the run in run order -- is rebuilt with bulk deletes and one
        C-level ``update``.  Timing stays on the flat loop's exact
        float op order either way; only the window bookkeeping moves.

        Returns ``(consumed, forwards)``; the caller owns every stat
        counter (the tuple shape mirrors the flat path's accounting:
        each frame's store-back hits, each unforwarded load hits,
        forwarded loads count as forwards).
        """
        slot_of = buf._slot_of
        a = addr_list[i]
        if a not in slot_of or a not in touched:
            # Fast decline before any allocation; see _miss_epoch.
            return 0, 0
        slot_ready = buf._slot_ready
        n = len(addr_list)
        # Cap the gather at lsq_depth frames per attempt: a long run
        # then costs O(depth) per attempt instead of O(remaining
        # batch) -- re-attempts after each consumed chunk would
        # otherwise go quadratic -- and the window trim-resolution
        # argument (docstring) needs ``m <= lsq_depth``.
        stop = i + self.lsq_depth
        if stop > n:
            stop = n
        tail = addr_list[i:stop] if (i or stop < n) else addr_list
        try:
            # C-level gather, same trick as _all_hit_lane.
            slots = list(map(slot_of.__getitem__, tail))
            run = tail
            m = stop - i
        except KeyError:
            j = i + 1
            while j < stop and addr_list[j] in slot_of:
                j += 1
            m = j - i
            if m < _MERGE_HIT_MIN:
                return 0, 0
            run = addr_list[i:j]
            slots = list(map(slot_of.__getitem__, run))
        if not touched.issuperset(run):
            # First untouched address cuts the run.
            mm = 1
            while mm < m and run[mm] in touched:
                mm += 1
            if mm < _MERGE_HIT_MIN:
                return 0, 0
            m = mm
            run = run[:m]
            slots = slots[:m]
        if len(set(run)) != m:
            # A duplicate cuts the run: rescan for the first repeat.
            seen: Set[int] = set()
            seen_add = seen.add
            mm = 0
            for a in run:
                if a in seen:
                    break
                seen_add(a)
                mm += 1
            if mm < _MERGE_HIT_MIN:
                return 0, 0
            m = mm
            run = run[:m]
            slots = slots[:m]
        if m < _MERGE_HIT_MIN:
            return 0, 0
        fwd = self.forwarding
        store_map = self._store_map
        overlap = (
            fwd
            and bool(store_map)
            and not store_map.keys().isdisjoint(run)
        )
        if overlap and (
            len(store_map) > self.lsq_depth
            or run[0] >> _SPACE_BITS != run[m - 1] >> _SPACE_BITS
        ):
            # The trim-resolution argument needs the window at or
            # below lsq_depth on entry (every in-tree caller keeps it
            # there), and a mixed-space overlapping run would need
            # per-frame insert tracking for the space counts.  Both
            # are vanishing cases: decline to the flat loop.  (Equal
            # first/last spaces mean the whole single-region run, per
            # the monotone-address-batch invariant; see
            # _forward_active.)
            return 0, 0
        floors = list(map(slot_ready.__getitem__, slots))
        hit_lat = buf.hit_latency
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        write_t = self.write_t
        exec_t = self.exec_t
        readies: List[float] = []
        rd_append = readies.append
        wvals: List[float] = []
        wv_append = wvals.append
        nfw = 0
        if overlap:
            # Per-frame window resolution against the pre-run snapshot
            # (dict surgery deferred; see docstring).
            dels: List[int] = []
            popped: List[int] = []
            gone: Set[int] = set()
            gone_add = gone.add
            dels_append = dels.append
            popped_append = popped.append
            sm_get = store_map.get
            order_it = None
            size = len(store_map)
            for a, f in zip(run, floors):
                # Load leg (rmw = load + alu_op(1) + store).
                rk = ring[k]
                b = issue_t + 1.0
                if rk > b:
                    b = rk
                v = sm_get(a)
                if v is not None and a not in gone:
                    # Forwarded from the pre-run entry; the store leg
                    # below refreshes it (no size change).
                    ready = v
                    if b > ready:
                        ready = b
                    gone_add(a)
                    dels_append(a)
                    nfw += 1
                else:
                    ready = b + hit_lat
                    if f > ready:
                        ready = f
                    size += 1
                    if size > depth:
                        # Trim the oldest unconsumed pre-run entry.
                        if order_it is None:
                            order_it = iter(tuple(store_map))
                        for a2 in order_it:
                            if a2 not in gone:
                                gone_add(a2)
                                popped_append(a2)
                                dels_append(a2)
                                size -= 1
                                break
                issue_t = b
                if ready > exec_t:
                    exec_t = ready
                ring[k] = exec_t
                k += 1
                if k == depth:
                    k = 0
                exec_t += 1.0
                # Store leg.
                rk = ring[k]
                b2 = write_t + 1.0
                if rk > b2:
                    b2 = rk
                write_t = b2
                rd_append(b2 + hit_lat)
                r2 = b2 + 1.0
                if exec_t > r2:
                    r2 = exec_t
                ring[k] = r2
                k += 1
                if k == depth:
                    k = 0
                wv_append(exec_t)
        else:
            for f in floors:
                # Load leg (rmw = load + alu_op(1) + store).
                rk = ring[k]
                b = issue_t + 1.0
                if rk > b:
                    b = rk
                ready = b + hit_lat
                if f > ready:
                    ready = f
                issue_t = b
                if ready > exec_t:
                    exec_t = ready
                ring[k] = exec_t
                k += 1
                if k == depth:
                    k = 0
                exec_t += 1.0
                # Store leg.
                rk = ring[k]
                b2 = write_t + 1.0
                if rk > b2:
                    b2 = rk
                write_t = b2
                rd_append(b2 + hit_lat)
                r2 = b2 + 1.0
                if exec_t > r2:
                    r2 = exec_t
                ring[k] = r2
                k += 1
                if k == depth:
                    k = 0
                wv_append(exec_t)
        self.issue_t = issue_t
        self.write_t = write_t
        self.exec_t = exec_t
        self._k += 2 * m
        if fwd:
            spaces = self._store_spaces
            if overlap:
                # Rebuild: drop refreshed + popped pre-run entries,
                # then the run lands at the MRU end in run order.
                for a2 in dels:
                    del store_map[a2]
                store_map.update(zip(run, wvals))
                ins = m - nfw
                if ins:
                    # Single region by the decline above.
                    sp = run[0] >> _SPACE_BITS
                    spaces[sp] = spaces.get(sp, 0) + ins
                for a2 in popped:
                    sp = a2 >> _SPACE_BITS
                    c = spaces[sp] - 1
                    if c:
                        spaces[sp] = c
                    else:
                        del spaces[sp]
            else:
                # Bulk window append + trim (see docstring for why
                # this commutes with the per-store sequence).
                store_map.update(zip(run, wvals))
                sp = run[0] >> _SPACE_BITS
                if sp == run[m - 1] >> _SPACE_BITS:
                    spaces[sp] = spaces.get(sp, 0) + m
                else:
                    for a in run:
                        sp = a >> _SPACE_BITS
                        spaces[sp] = spaces.get(sp, 0) + 1
                over = len(store_map) - depth
                if over > 0:
                    pop = store_map.popitem
                    if len(spaces) == 1:
                        for _ in repeat(None, over):
                            pop(last=False)
                        for sp in spaces:
                            spaces[sp] = depth
                    else:
                        for _ in repeat(None, over):
                            a2, _ = pop(last=False)
                            sp = a2 >> _SPACE_BITS
                            c = spaces[sp] - 1
                            if c:
                                spaces[sp] = c
                            else:
                                del spaces[sp]
        buf._commit_hit_epoch(slots, readies)
        return m, nfw

    def _merge_miss_epoch(
        self, buf: CacheBuffer, addr_list: List[int], i: int,
        cls: str, tag: str, touched: Set[int],
    ) -> int:
        """Process a run of read-modify-write primary misses as one epoch.

        The thrash-bound merge shape (an already-touched output line
        evicted between merges): each frame is a primary read miss --
        the full :meth:`_miss_epoch` machinery of MSHR retire/capacity
        stalls, channel occupancy and dirty-victim writebacks -- whose
        fill the same frame's store-back immediately hits, marking it
        dirty and raising its ready to ``max(fetch_ready, store_ready)``.
        The epoch-cut argument is :meth:`_miss_epoch`'s verbatim (the
        store-back touches only the frame's own just-filled line, which
        no other frame of the run revisits), extended by the forwarding
        window: a run address found in the window would forward instead
        of missing, so it cuts the run -- and because the run's stores
        only *add* its own (distinct) addresses and trims only *remove*
        entries, an address absent from the window at the gather stays
        absent until its own frame, keeping the pre-gathered probe
        exact.  The fill readies fed to the MSHR file and the final
        slot readies differ here (the store-back raises the latter);
        both sequences stay monotone, so the FIFO rebuild and the
        commit's watermark shortcut hold unchanged.
        """
        slot_of = buf._slot_of
        outstanding = buf._outstanding
        fwd = self.forwarding
        store_map = self._store_map
        a = addr_list[i]
        if (
            a in slot_of
            or a in outstanding
            or a not in touched
            or (fwd and a in store_map)
        ):
            # Fast decline before any allocation; see _miss_epoch.
            return 0
        n = len(addr_list)
        run: List[int] = []
        seen: Set[int] = set()
        j = i
        while j < n:
            a = addr_list[j]
            if (
                a in slot_of
                or a in outstanding
                or a in seen
                or a not in touched
                or (fwd and a in store_map)
            ):
                break
            run.append(a)
            seen.add(a)
            j += 1
        m = len(run)
        if m < _EPOCH_MIN:
            return 0
        free0 = len(buf._free_slots)
        ci = CLASS_INDEX[cls]
        victims: Sequence[int] = ()
        if m > free0:
            victims = buf._plan_victims(ci, m - free0)
            cap = free0 + len(victims)
            if cap < m:
                if cap < _EPOCH_MIN:
                    return 0
                m = cap
                del run[m:]
        slot_dirty = buf._slot_dirty
        vdirty = [slot_dirty[s] for s in victims]
        fifo = buf._mshr_fifo
        merged = [r for r, _ in fifo]
        pre = len(merged)
        popped = 0
        limit = buf.mshr_entries
        c = buf._line_cost
        lat = buf._read_latency
        hit_lat = buf.hit_latency
        dram = buf.dram
        nf = dram.next_free
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        write_t = self.write_t
        exec_t = self.exec_t
        spaces = self._store_spaces
        readies: List[float] = []
        rd_append = readies.append
        mg_append = merged.append
        for idx in range(m):
            # Load leg: the _miss_epoch recurrence (see there for the
            # retire/capacity/channel reasoning), with the rmw backend
            # shape -- exec waits for the fetch, then one adder cycle.
            rk = ring[k]
            b = issue_t + 1.0
            if rk > b:
                b = rk
            total = pre + idx
            while popped < total and merged[popped] <= b:
                popped += 1
            over = total - limit + 1
            if over > popped:
                mo = merged[over - 1]
                if mo > b:
                    b = mo
                popped = over
            u = nf if nf > b else b
            t = u + c
            ready = t + lat
            ev = idx - free0
            if ev >= 0 and vdirty[ev]:
                nf = t + c
            else:
                nf = t
            mg_append(ready)
            issue_t = b
            if ready > exec_t:
                exec_t = ready
            ring[k] = exec_t
            k += 1
            if k == depth:
                k = 0
            exec_t += 1.0
            # Store leg: hits the just-filled line.
            rk = ring[k]
            b2 = write_t + 1.0
            if rk > b2:
                b2 = rk
            write_t = b2
            r = b2 + hit_lat
            rd_append(ready if ready > r else r)
            r2 = b2 + 1.0
            if exec_t > r2:
                r2 = exec_t
            ring[k] = r2
            k += 1
            if k == depth:
                k = 0
            if fwd:
                # Every run address is absent from the window until its
                # own store (see the cut argument), so this is always
                # the insert-plus-trim branch of _record_store.
                addr = run[idx]
                store_map[addr] = exec_t
                sp = addr >> _SPACE_BITS
                spaces[sp] = spaces.get(sp, 0) + 1
                if len(store_map) > depth:
                    a2, _ = store_map.popitem(last=False)
                    sp = a2 >> _SPACE_BITS
                    cnt = spaces[sp] - 1
                    if cnt:
                        spaces[sp] = cnt
                    else:
                        del spaces[sp]
        dram.next_free = nf
        self.issue_t = issue_t
        self.write_t = write_t
        self.exec_t = exec_t
        self._k += 2 * m
        # Rebuild the MSHR file with the *fetch* readies; see _miss_epoch.
        if popped:
            addrs_all = [a for _, a in fifo]
            addrs_all += run
            fifo.clear()
            outstanding.clear()
            rem_r = merged[popped:]
            rem_a = addrs_all[popped:]
            fifo.extend(zip(rem_r, rem_a))
            outstanding.update(zip(rem_a, rem_r))
        else:
            fetch_readies = merged[pre:]
            fifo.extend(zip(fetch_readies, run))
            outstanding.update(zip(run, fetch_readies))
        buf._commit_epoch(ci, run, readies, victims, vdirty, True)
        return m

    # ------------------------------------------------------------------
    # Batch primitives (inlined fast paths)
    # ------------------------------------------------------------------
    def mac_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        addr_list = addrs.tolist()
        fwd = self._forward_active(addr_list)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        ods = buf._lru_mte
        cls_arr = buf._slot_cls
        outstanding = buf._outstanding
        read_miss = buf._read_miss
        lru = buf.lru
        hit_lat = buf.hit_latency
        store_map = self._store_map
        ring = self._ring
        depth = self.lsq_depth
        hits = 0
        misses = 0
        fetches = 0
        forwards = 0
        i = 0
        # Vector attempts are *lazy* -- no pre-classification pass over
        # the batch.  The lane and the epoch each verify their own run
        # and decline in O(1) probes when the run at the cursor is
        # short, so an all-hit batch costs exactly one lane pass and a
        # cold miss stream goes straight into epochs.  After a decline
        # the flat loop processes just the short run at the cursor and
        # the attempts retry; the retry budget (restored by every
        # consumed run) bounds declined-probe overhead on fragmented
        # batches, beyond which the remainder takes one flat pass --
        # the pre-epoch shape.
        rounds = 0 if fwd else 2
        while i < n:
            target = n
            if rounds and n - i >= _EPOCH_MIN:
                if n - i >= _LANE_MIN:
                    consumed = self._all_hit_lane(
                        buf, addr_list[i:] if i else addr_list, mac=True
                    )
                    if consumed:
                        hits += consumed
                        i += consumed
                        rounds = 2
                        continue
                consumed = self._miss_epoch(
                    buf, addr_list, i, cls, tag, mac=True
                )
                if consumed:
                    misses += consumed
                    fetches += consumed
                    i += consumed
                    rounds = 2
                    continue
                rounds -= 1
                if rounds:
                    j = i + 1
                    if addr_list[i] in slot_of:
                        while j < n and addr_list[j] in slot_of:
                            j += 1
                    else:
                        while j < n and addr_list[j] not in slot_of:
                            j += 1
                    target = j
            k = self._k % depth
            issue_t = self.issue_t
            exec_t = self.exec_t
            for addr in addr_list[i:target]:
                slot = ring[k]
                issue = issue_t + 1.0
                if slot > issue:
                    issue = slot
                if fwd and addr in store_map:
                    ready = store_map[addr]
                    if issue > ready:
                        ready = issue
                    forwards += 1
                else:
                    s = slot_of.get(addr)
                    if s is not None:
                        if lru:
                            ods[cls_arr[s]](s)
                        hits += 1
                        ready = issue + hit_lat
                        sr = slot_ready[s]
                        if sr > ready:
                            ready = sr
                    else:
                        misses += 1
                        pending = outstanding.get(addr)
                        if pending is not None:
                            # Secondary miss: merged into the pending MSHR.
                            ready = issue + hit_lat
                            if pending > ready:
                                ready = pending
                        else:
                            fetches += 1
                            ready, issue = read_miss(issue, addr, cls, tag)
                issue_t = issue
                e = exec_t + 1.0
                if ready > e:
                    e = ready
                exec_t = e
                ring[k] = e
                k += 1
                if k == depth:
                    k = 0
            self.issue_t = issue_t
            self.exec_t = exec_t
            self._k += target - i
            i = target
        stats.requests_issued += n
        stats.busy_cycles += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if fetches:
            stats.dram_read_bytes[tag] += fetches * buf.line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if tracer.enabled:
            tracer.span(
                "mac_load_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        addr_list = addrs.tolist()
        fwd = self._forward_active(addr_list)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        ods = buf._lru_mte
        cls_arr = buf._slot_cls
        outstanding = buf._outstanding
        read_miss = buf._read_miss
        lru = buf.lru
        hit_lat = buf.hit_latency
        store_map = self._store_map
        ring = self._ring
        depth = self.lsq_depth
        hits = 0
        misses = 0
        fetches = 0
        forwards = 0
        i = 0
        # Lazy vector attempts with a decline budget; see
        # :meth:`mac_load_batch`.
        rounds = 0 if fwd else 2
        while i < n:
            target = n
            if rounds and n - i >= _EPOCH_MIN:
                if n - i >= _LANE_MIN:
                    consumed = self._all_hit_lane(
                        buf, addr_list[i:] if i else addr_list, mac=False
                    )
                    if consumed:
                        hits += consumed
                        i += consumed
                        rounds = 2
                        continue
                consumed = self._miss_epoch(
                    buf, addr_list, i, cls, tag, mac=False
                )
                if consumed:
                    misses += consumed
                    fetches += consumed
                    i += consumed
                    rounds = 2
                    continue
                rounds -= 1
                if rounds:
                    j = i + 1
                    if addr_list[i] in slot_of:
                        while j < n and addr_list[j] in slot_of:
                            j += 1
                    else:
                        while j < n and addr_list[j] not in slot_of:
                            j += 1
                    target = j
            k = self._k % depth
            issue_t = self.issue_t
            exec_t = self.exec_t
            for addr in addr_list[i:target]:
                slot = ring[k]
                issue = issue_t + 1.0
                if slot > issue:
                    issue = slot
                if fwd and addr in store_map:
                    ready = store_map[addr]
                    if issue > ready:
                        ready = issue
                    forwards += 1
                else:
                    s = slot_of.get(addr)
                    if s is not None:
                        if lru:
                            ods[cls_arr[s]](s)
                        hits += 1
                        ready = issue + hit_lat
                        sr = slot_ready[s]
                        if sr > ready:
                            ready = sr
                    else:
                        misses += 1
                        pending = outstanding.get(addr)
                        if pending is not None:
                            ready = issue + hit_lat
                            if pending > ready:
                                ready = pending
                        else:
                            fetches += 1
                            ready, issue = read_miss(issue, addr, cls, tag)
                issue_t = issue
                # A plain fetch: the backend waits but records no busy MAC.
                if ready > exec_t:
                    exec_t = ready
                ring[k] = exec_t
                k += 1
                if k == depth:
                    k = 0
            self.issue_t = issue_t
            self.exec_t = exec_t
            self._k += target - i
            i = target
        stats.requests_issued += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if fetches:
            stats.dram_read_bytes[tag] += fetches * buf.line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if tracer.enabled:
            tracer.span(
                "load_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def mac_stream_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        top = self.buffer
        buf = top.route(cls)
        addr_list = addrs.tolist()
        # One residency pass against the routed half only (straight
        # into a list -- the per-address loop below consumes it
        # elementwise, so a numpy mask would just round-trip); the
        # scalar reference consults top-level contains(), but the two
        # agree whenever no address is resident in the *other* half.
        slot_of = buf._slot_of
        res_list = list(map(slot_of.__contains__, addr_list))
        if buf is not top:
            other = (
                top.output_buffer
                if buf is top.input_buffer
                else top.input_buffer
            )
            # Split organisation: an address resident in the other half
            # hits the top-level contains() but would miss (and
            # allocate) in the routed half, changing residency mid-batch
            # and invalidating the plan -- replay exactly, one scalar
            # primitive at a time.
            oth_of = other._slot_of
            if oth_of and any(
                o and not r
                for o, r in zip(map(oth_of.__contains__, addr_list), res_list)
            ):
                AccessExecuteEngine.mac_stream_load_batch(self, addrs, cls, tag)
                return
        # Residency is invariant across the batch: hits never allocate
        # and streamed lines are never inserted, so the mask stays true.
        stats = self.stats
        slot_ready = buf._slot_ready
        ods = buf._lru_mte
        cls_arr = buf._slot_cls
        lru = buf.lru
        hit_lat = buf.hit_latency
        store_map = self._store_map
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        exec_t = self.exec_t
        dram = self.dram
        line_bytes = buf.line_bytes
        line_cost = buf._line_cost
        slack = self._stream_slack
        hits = 0
        misses = 0
        forwards = 0
        nk = 0
        fwd = self._forward_active(addr_list)
        for addr, resident in zip(addr_list, res_list):
            if resident:
                slot = ring[k]
                issue = issue_t + 1.0
                if slot > issue:
                    issue = slot
                if fwd and addr in store_map:
                    ready = store_map[addr]
                    if issue > ready:
                        ready = issue
                    forwards += 1
                else:
                    s = slot_of[addr]
                    if lru:
                        ods[cls_arr[s]](s)
                    hits += 1
                    ready = issue + hit_lat
                    sr = slot_ready[s]
                    if sr > ready:
                        ready = sr
                issue_t = issue
                e = exec_t + 1.0
                if ready > e:
                    e = ready
                exec_t = e
                ring[k] = e
                k += 1
                if k == depth:
                    k = 0
                nk += 1
            else:
                # Stream miss: bandwidth only (DRAM.stream_read,
                # inlined; the byte counter is batched below).
                misses += 1
                issue_t += 1.0
                start = dram.next_free
                if issue_t > start:
                    start = issue_t
                end = start + line_cost
                dram.next_free = end
                throttled = end - slack
                if throttled > issue_t:
                    issue_t = throttled
                e = exec_t + 1.0
                if issue_t > e:
                    e = issue_t
                exec_t = e
        self.issue_t = issue_t
        self.exec_t = exec_t
        self._k += nk
        stats.requests_issued += n
        stats.busy_cycles += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
            stats.dram_read_bytes[tag] += misses * line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if tracer.enabled:
            tracer.span(
                "mac_stream_load_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def store_batch(
        self, addrs: np.ndarray, cls: str, tag: str, allocate: bool = True
    ) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        slot_dirty = buf._slot_dirty
        ods = buf._lru_mte
        cls_arr = buf._slot_cls
        mr = buf._max_ready
        insert = buf._insert
        dram = buf.dram
        line_cost = buf._line_cost
        lru = buf.lru
        hit_lat = buf.hit_latency
        fwd = self.forwarding
        store_map = self._store_map
        spaces = self._store_spaces
        ring = self._ring
        depth = self.lsq_depth
        addr_list = addrs.tolist()
        # Stores never advance the backend, so the forwarded ready value
        # (scalar: ``_record_store(addr, self.exec_t)``) is constant.
        exec_t = self.exec_t
        hits = 0
        misses = 0
        posted = 0
        i = 0
        # Lazy epoch attempts with a decline budget; see
        # :meth:`mac_load_batch` (stores have no all-hit lane).  Hit
        # runs ride `_hit_run_epoch`; write-allocate miss runs ride
        # `_store_epoch` (no-allocate misses stream flat).
        rounds = 2
        while i < n:
            target = n
            if rounds and n - i >= _EPOCH_MIN:
                if addr_list[i] in slot_of:
                    if n - i >= _HIT_RUN_MIN:
                        consumed = self._hit_run_epoch(
                            buf, addr_list, i, tag, partial=False
                        )
                        if consumed:
                            hits += consumed
                            i += consumed
                            rounds = 2
                            continue
                elif allocate:
                    consumed = self._store_epoch(
                        buf, addr_list, i, cls, tag, partial=False
                    )
                    if consumed:
                        misses += consumed
                        i += consumed
                        rounds = 2
                        continue
                rounds -= 1
                if rounds:
                    j = i + 1
                    if addr_list[i] in slot_of:
                        while j < n and addr_list[j] in slot_of:
                            j += 1
                    else:
                        while j < n and addr_list[j] not in slot_of:
                            j += 1
                    target = j
            k = self._k % depth
            write_t = self.write_t
            for addr in addr_list[i:target]:
                slot = ring[k]
                issue = write_t + 1.0
                if slot > issue:
                    issue = slot
                s = slot_of.get(addr)
                if s is not None:
                    hits += 1
                    slot_dirty[s] = True
                    r = issue + hit_lat
                    if r > slot_ready[s]:
                        slot_ready[s] = r
                        if r > mr:
                            mr = r
                    if lru:
                        ods[cls_arr[s]](s)
                elif allocate:
                    misses += 1
                    insert(issue, addr, cls, True, issue + hit_lat)
                else:
                    # Write-through/no-allocate: DRAM.write, inlined; the
                    # byte counter is batched below.
                    misses += 1
                    posted += 1
                    start = dram.next_free
                    if issue > start:
                        start = issue
                    dram.next_free = start + line_cost
                write_t = issue
                r2 = issue + 1.0
                if exec_t > r2:
                    r2 = exec_t
                ring[k] = r2
                k += 1
                if k == depth:
                    k = 0
                if fwd:
                    if addr in store_map:
                        store_map[addr] = exec_t
                        store_map.move_to_end(addr)
                    else:
                        store_map[addr] = exec_t
                        sp = addr >> _SPACE_BITS
                        spaces[sp] = spaces.get(sp, 0) + 1
            self.write_t = write_t
            self._k += target - i
            i = target
        if fwd:
            # Deferred trim: the surviving window is the last lsq_depth
            # distinct addresses in last-store order either way, and no
            # forwarding lookup happens inside a store batch.
            over = len(store_map) - depth
            if over > 0:
                pop = store_map.popitem
                if len(spaces) == 1:
                    # Every window entry shares one space, so the count
                    # after trimming is the window size itself.
                    for _ in repeat(None, over):
                        pop(last=False)
                    for sp in spaces:
                        spaces[sp] = depth
                else:
                    for _ in repeat(None, over):
                        a, _ = pop(last=False)
                        sp = a >> _SPACE_BITS
                        c = spaces[sp] - 1
                        if c:
                            spaces[sp] = c
                        else:
                            del spaces[sp]
        if mr > buf._max_ready:
            buf._max_ready = mr
        stats.requests_issued += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if posted:
            stats.dram_write_bytes[tag] += posted * buf.line_bytes
        if tracer.enabled:
            tracer.span(
                "store_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def accumulate_store_batch(self, addrs: np.ndarray, tag: str = "partial") -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = getattr(self.buffer, "output_buffer", self.buffer)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        slot_dirty = buf._slot_dirty
        ods = buf._lru_mte
        cls_arr = buf._slot_cls
        mr = buf._max_ready
        insert = buf._insert
        lru = buf.lru
        hit_lat = buf.hit_latency
        counts = buf._class_count
        spilled = buf._spilled_partials
        line_bytes = buf.line_bytes
        stride = stats.PARTIAL_TIMELINE_STRIDE
        timeline = stats.partial_timeline
        fwd = self.forwarding
        store_map = self._store_map
        spaces = self._store_spaces
        ring = self._ring
        depth = self.lsq_depth
        addr_list = addrs.tolist()
        exec_t = self.exec_t
        hits = 0
        misses = 0
        pp = stats.partials_produced
        peak = stats.partial_peak_bytes
        # The partial footprint only changes when a line is inserted,
        # evicted or refetched -- all inside the miss branches below --
        # so it is recomputed there and cached across the hits.
        footprint = (counts[_PARTIAL_IDX] + len(spilled)) * line_bytes
        i = 0
        # Lazy epoch attempts with a decline budget; see
        # :meth:`mac_load_batch`.
        rounds = 2
        while i < n:
            target = n
            if rounds and n - i >= _EPOCH_MIN:
                consumed = 0
                a0 = addr_list[i]
                if a0 in slot_of:
                    if n - i >= _HIT_RUN_MIN:
                        # Hit-run epoch: the epoch reproduces the
                        # per-hit footprint/timeline bookkeeping
                        # against the stats object at the constant
                        # footprint -- sync the locals around it, like
                        # the flat spilled-refetch branch does.
                        stats.partials_produced = pp
                        stats.partial_peak_bytes = peak
                        consumed = self._hit_run_epoch(
                            buf, addr_list, i, tag, partial=True
                        )
                        if consumed:
                            hits += consumed
                            pp = stats.partials_produced
                            peak = stats.partial_peak_bytes
                            i += consumed
                            rounds = 2
                            continue
                elif a0 not in spilled:
                    # The epoch reproduces the per-insert footprint
                    # bookkeeping against the stats object: sync the
                    # locals around it, like the flat spilled-refetch
                    # branch does.
                    stats.partials_produced = pp
                    stats.partial_peak_bytes = peak
                    consumed = self._store_epoch(
                        buf, addr_list, i, CLASS_PARTIAL, tag, partial=True
                    )
                    if consumed:
                        misses += consumed
                        pp = stats.partials_produced
                        peak = stats.partial_peak_bytes
                        footprint = (
                            counts[_PARTIAL_IDX] + len(spilled)
                        ) * line_bytes
                        i += consumed
                        rounds = 2
                        continue
                rounds -= 1
                if rounds:
                    j = i + 1
                    if addr_list[i] in slot_of:
                        while j < n and addr_list[j] in slot_of:
                            j += 1
                    else:
                        while j < n and addr_list[j] not in slot_of:
                            j += 1
                    target = j
            k = self._k % depth
            write_t = self.write_t
            for addr in addr_list[i:target]:
                slot = ring[k]
                issue = write_t + 1.0
                if slot > issue:
                    issue = slot
                pp += 1
                s = slot_of.get(addr)
                if s is not None:
                    hits += 1
                    slot_dirty[s] = True
                    r = issue + hit_lat
                    if r > slot_ready[s]:
                        slot_ready[s] = r
                        if r > mr:
                            mr = r
                    if lru:
                        ods[cls_arr[s]](s)
                    if footprint > peak:
                        peak = footprint
                    if pp % stride == 0:
                        timeline.append((pp, footprint))
                elif addr in spilled:
                    # Spilled partial: demand refetch + re-merge.  The
                    # scalar accumulate bumps partials_produced and reads/
                    # updates the peak itself: sync the locals around it.
                    stats.partials_produced = pp - 1
                    stats.partial_peak_bytes = peak
                    buf.accumulate(issue, addr, tag)
                    peak = stats.partial_peak_bytes
                    footprint = (counts[_PARTIAL_IDX] + len(spilled)) * line_bytes
                else:
                    misses += 1
                    insert(issue, addr, CLASS_PARTIAL, True, issue + hit_lat)
                    footprint = (counts[_PARTIAL_IDX] + len(spilled)) * line_bytes
                    if footprint > peak:
                        peak = footprint
                    if pp % stride == 0:
                        timeline.append((pp, footprint))
                write_t = issue
                r2 = issue + 1.0
                if exec_t > r2:
                    r2 = exec_t
                ring[k] = r2
                k += 1
                if k == depth:
                    k = 0
                if fwd:
                    if addr in store_map:
                        store_map[addr] = exec_t
                        store_map.move_to_end(addr)
                    else:
                        store_map[addr] = exec_t
                        sp = addr >> _SPACE_BITS
                        spaces[sp] = spaces.get(sp, 0) + 1
            self.write_t = write_t
            self._k += target - i
            i = target
        if fwd:
            over = len(store_map) - depth
            if over > 0:
                pop = store_map.popitem
                if len(spaces) == 1:
                    for _ in repeat(None, over):
                        pop(last=False)
                    for sp in spaces:
                        spaces[sp] = depth
                else:
                    for _ in repeat(None, over):
                        a, _ = pop(last=False)
                        sp = a >> _SPACE_BITS
                        c = spaces[sp] - 1
                        if c:
                            spaces[sp] = c
                        else:
                            del spaces[sp]
        if mr > buf._max_ready:
            buf._max_ready = mr
        stats.partials_produced = pp
        stats.partial_peak_bytes = peak
        stats.requests_issued += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if tracer.enabled:
            tracer.span(
                "accumulate_store_batch", t0, self.drain(), "engine",
                {"n": n, "tag": tag},
            )

    def merge_rmw_batch(
        self,
        addrs: np.ndarray,
        cls: str,
        tag: str,
        touched: Set[int],
        track_peak: bool = False,
    ) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        slot_dirty = buf._slot_dirty
        ods = buf._lru_mte
        cls_arr = buf._slot_cls
        mr = buf._max_ready
        insert = buf._insert
        outstanding = buf._outstanding
        read_miss = buf._read_miss
        lru = buf.lru
        hit_lat = buf.hit_latency
        fwd = self.forwarding
        store_map = self._store_map
        spaces = self._store_spaces
        ring = self._ring
        depth = self.lsq_depth
        out_buf = getattr(self.buffer, "output_buffer", self.buffer)
        target_counts = out_buf._class_count
        target_spilled = out_buf._spilled_partials
        target_line_bytes = out_buf.line_bytes
        addr_list = addrs.tolist()
        requests = 0
        busy = 0
        hits = 0
        misses = 0
        fetches = 0
        forwards = 0
        pp = stats.partials_produced
        peak = stats.partial_peak_bytes
        # Cached like in accumulate_store_batch: only the miss branches
        # change the partial footprint.
        footprint = (
            target_counts[_PARTIAL_IDX] + len(target_spilled)
        ) * target_line_bytes
        # Merge epochs defer the caller's per-frame peak check to one
        # check per consumed run, which is exact only while the run's
        # footprint is constant (hit runs) or monotone (partial-class
        # fills); a non-partial merge with peak tracking -- no in-tree
        # caller -- stays on the flat loop.
        epoch_ok = not track_peak or cls == CLASS_PARTIAL
        i = 0
        # Lazy epoch attempts with a decline budget; see
        # :meth:`mac_load_batch`.
        rounds = 2 if epoch_ok else 0
        while i < n:
            target = n
            if rounds and n - i >= _EPOCH_MIN:
                consumed = 0
                a0 = addr_list[i]
                if a0 in touched:
                    if a0 in slot_of:
                        if n - i >= _MERGE_HIT_MIN:
                            consumed, fw = self._merge_hit_epoch(
                                buf, addr_list, i, touched
                            )
                            if consumed:
                                hits += 2 * consumed - fw
                                forwards += fw
                    else:
                        consumed = self._merge_miss_epoch(
                            buf, addr_list, i, cls, tag, touched
                        )
                        if consumed:
                            misses += consumed
                            fetches += consumed
                            hits += consumed
                            footprint = (
                                target_counts[_PARTIAL_IDX]
                                + len(target_spilled)
                            ) * target_line_bytes
                if consumed:
                    requests += 2 * consumed
                    busy += consumed
                    pp += consumed
                    if track_peak and footprint > peak:
                        peak = footprint
                    i += consumed
                    rounds = 2
                    continue
                rounds -= 1
                if rounds:
                    # Flat-chunk to the next frame-shape flip (first
                    # touch vs rmw, resident vs not) before retrying.
                    t_flag = a0 in touched
                    r_flag = a0 in slot_of
                    j = i + 1
                    while j < n:
                        a = addr_list[j]
                        if (a in touched) != t_flag or (a in slot_of) != r_flag:
                            break
                        j += 1
                    target = j
            k = self._k % depth
            issue_t = self.issue_t
            write_t = self.write_t
            exec_t = self.exec_t
            nk = 0
            for addr in addr_list[i:target]:
                pp += 1
                if addr in touched:
                    # rmw = load + alu_op(1) + store.
                    requests += 1
                    slot = ring[k]
                    issue = issue_t + 1.0
                    if slot > issue:
                        issue = slot
                    if fwd and addr in store_map:
                        ready = store_map[addr]
                        if issue > ready:
                            ready = issue
                        forwards += 1
                        probe = True
                        s = None
                    else:
                        probe = False
                        s = slot_of.get(addr)
                        if s is not None:
                            if lru:
                                ods[cls_arr[s]](s)
                            hits += 1
                            ready = issue + hit_lat
                            sr = slot_ready[s]
                            if sr > ready:
                                ready = sr
                        else:
                            misses += 1
                            pending = outstanding.get(addr)
                            if pending is not None:
                                # Secondary miss: merged into the pending
                                # MSHR (the line was evicted while still in
                                # flight, so it is genuinely absent and the
                                # store leg write-allocates).
                                ready = issue + hit_lat
                                if pending > ready:
                                    ready = pending
                            else:
                                fetches += 1
                                ready, issue = read_miss(issue, addr, cls, tag)
                                footprint = (
                                    target_counts[_PARTIAL_IDX] + len(target_spilled)
                                ) * target_line_bytes
                                # The read just allocated the line; the
                                # store leg below reuses it.
                                s = slot_of[addr]
                    issue_t = issue
                    if ready > exec_t:
                        exec_t = ready
                    ring[k] = exec_t
                    k += 1
                    if k == depth:
                        k = 0
                    nk += 1
                    exec_t += 1.0
                    busy += 1
                else:
                    touched.add(addr)
                    probe = True
                    s = None
                # The (write-allocating) store leg, shared by both
                # branches; nothing between the load leg's probe and here
                # can evict, so a line it found (or allocated) is reused.
                requests += 1
                slot = ring[k]
                issue = write_t + 1.0
                if slot > issue:
                    issue = slot
                if probe:
                    s = slot_of.get(addr)
                if s is not None:
                    hits += 1
                    slot_dirty[s] = True
                    r = issue + hit_lat
                    if r > slot_ready[s]:
                        slot_ready[s] = r
                        if r > mr:
                            mr = r
                    if lru:
                        ods[cls_arr[s]](s)
                else:
                    misses += 1
                    insert(issue, addr, cls, True, issue + hit_lat)
                    footprint = (
                        target_counts[_PARTIAL_IDX] + len(target_spilled)
                    ) * target_line_bytes
                write_t = issue
                r2 = issue + 1.0
                if exec_t > r2:
                    r2 = exec_t
                ring[k] = r2
                k += 1
                if k == depth:
                    k = 0
                nk += 1
                if fwd:
                    # Loads probe the window inside this batch, so the trim
                    # must happen per store, exactly as _record_store does.
                    if addr in store_map:
                        store_map[addr] = exec_t
                        store_map.move_to_end(addr)
                    else:
                        store_map[addr] = exec_t
                        sp = addr >> _SPACE_BITS
                        spaces[sp] = spaces.get(sp, 0) + 1
                        if len(store_map) > depth:
                            a, _ = store_map.popitem(last=False)
                            sp = a >> _SPACE_BITS
                            c = spaces[sp] - 1
                            if c:
                                spaces[sp] = c
                            else:
                                del spaces[sp]
                if track_peak and footprint > peak:
                    peak = footprint
            self.issue_t = issue_t
            self.write_t = write_t
            self.exec_t = exec_t
            self._k += nk
            i = target
        if mr > buf._max_ready:
            buf._max_ready = mr
        stats.partials_produced = pp
        stats.requests_issued += requests
        stats.busy_cycles += busy
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if fetches:
            stats.dram_read_bytes[tag] += fetches * buf.line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if track_peak and peak > stats.partial_peak_bytes:
            stats.partial_peak_bytes = peak
        if tracer.enabled:
            tracer.span(
                "merge_rmw_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )


def make_engine(
    kind: str,
    buffer: CacheBuffer,
    dram: DRAM,
    stats: SimStats,
    **kwargs,
) -> AccessExecuteEngine:
    """Build the engine implementation ``kind`` names.

    ``"scalar"`` is the reference model (one Python call per access);
    ``"batched"`` is the cycle-exact vectorized fast path and the
    default of :class:`repro.hymm.config.HyMMConfig`.
    """
    if kind == "scalar":
        return AccessExecuteEngine(buffer, dram, stats, **kwargs)
    if kind == "batched":
        return BatchedAccessExecuteEngine(buffer, dram, stats, **kwargs)
    raise ValueError(f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}")
