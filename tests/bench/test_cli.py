"""Command-line interface for the experiment harness."""

import json

import pytest

from repro.bench.cli import (
    ALL_ORDER,
    EXPERIMENT_KINDS,
    EXPERIMENTS,
    build_parser,
    collect_specs,
    main,
)


class TestParser:
    def test_requires_experiments(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_names_and_flags(self):
        args = build_parser().parse_args(
            ["fig7", "table2", "--datasets", "cora", "--full-scale"]
        )
        assert args.experiments == ["fig7", "table2"]
        assert args.datasets == ["cora"]
        assert args.full_scale

    def test_runtime_flags_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        args = build_parser().parse_args(["fig7"])
        assert args.jobs == 1
        assert args.cache_dir is None
        assert not args.no_cache

    def test_runtime_flags_explicit(self):
        args = build_parser().parse_args(
            ["fig7", "--jobs", "4", "--cache-dir", "/tmp/c", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/c"
        assert args.no_cache

    def test_jobs_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert build_parser().parse_args(["fig7"]).jobs == 3


class TestRegistry:
    def test_all_order_covers_every_experiment(self):
        assert set(ALL_ORDER) == set(EXPERIMENTS)

    def test_every_paper_item_present(self):
        for name in ("table1", "table2", "table3", "fig2", "fig6", "fig7",
                     "fig8", "fig9", "fig10", "fig11"):
            assert name in EXPERIMENTS


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table3" in out

    def test_unknown_experiment(self, capsys):
        assert main(["figure42"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_cheap_table(self, capsys):
        assert main(["table1"]) == 0
        assert "Hybrid" in capsys.readouterr().out

    def test_figure_with_dataset_filter_and_output(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.workloads._FAST_SCALES", {"cora": 0.05}
        )
        assert main(["fig2", "--datasets", "cora", "--output", str(tmp_path)]) == 0
        assert (tmp_path / "fig2.txt").exists()
        assert "CR" in capsys.readouterr().out

    def test_full_scale_sets_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)
        import os
        main(["table1", "--full-scale"])
        assert os.environ.get("REPRO_FULL_SCALE") == "1"
        monkeypatch.delenv("REPRO_FULL_SCALE", raising=False)


class TestSpecCollection:
    def test_every_experiment_has_a_kind_entry(self):
        assert set(EXPERIMENT_KINDS) == set(EXPERIMENTS)

    def test_fig7_specs(self):
        specs = collect_specs(["fig7"], ["cora"])
        assert {s.kind for s in specs} == {"op", "rwp", "hymm"}
        assert all(s.dataset == "cora" for s in specs)

    def test_union_deduplicates(self):
        # fig8/fig9 need the same runs as fig7; fig10 adds op-deferred.
        specs = collect_specs(["fig7", "fig8", "fig9", "fig10"], ["cora"])
        assert {s.kind for s in specs} == {"op", "rwp", "hymm", "op-deferred"}
        assert len(specs) == 4

    def test_tables_need_no_simulations(self):
        assert collect_specs(["table1", "table2", "table3"], ["cora"]) == []


class TestRuntimeIntegration:
    @pytest.fixture(autouse=True)
    def _small(self, monkeypatch):
        from repro.bench.runner import clear_cache

        monkeypatch.setattr(
            "repro.bench.workloads._FAST_SCALES", {"cora": 0.05}
        )
        clear_cache()

    def test_parallel_run_writes_json_and_manifest(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        out = tmp_path / "out"
        code = main([
            "fig7", "--datasets", "cora", "--jobs", "2",
            "--cache-dir", str(cache), "--output", str(out),
        ])
        assert code == 0
        assert (out / "fig7.txt").exists()
        payload = json.loads((out / "fig7.json").read_text())
        assert payload["experiment"] == "fig7"
        assert payload["data"]["total_speedup"]["op"]["CR"] == pytest.approx(1.0)
        manifest = json.loads((out / "run_manifest.json").read_text())
        assert manifest["total"] == 3
        assert manifest["executed"] == 3
        err = capsys.readouterr().err
        assert "[runtime]" in err

    def test_second_invocation_hits_cache(self, tmp_path, capsys):
        from repro.bench.runner import clear_cache

        cache = tmp_path / "cache"
        argv = ["fig7", "--datasets", "cora", "--cache-dir", str(cache)]
        assert main(argv) == 0
        clear_cache()  # fresh process simulation: memo gone, disk warm
        assert main(argv) == 0
        err = capsys.readouterr().err
        assert "3 cache hits (100%)" in err

    def test_no_cache_skips_disk(self, tmp_path):
        from repro.bench.runner import runtime_settings

        out = main(["fig2", "--datasets", "cora", "--no-cache"])
        assert out == 0
        assert runtime_settings()["disk_cache"] is None
