"""Registry of the paper's evaluation datasets (Table II).

Each entry records the published statistics of one PyG dataset; the
loader synthesises a graph matching those statistics (see
``repro.graphs.synthetic`` for why this preserves the evaluation).

``load_dataset(name, scale=...)`` supports proportional down-scaling for
fast tests and benchmarks: node and edge counts shrink by ``scale``
while sparsity ratios, feature length and layer dimension are
preserved.  Every experiment report records the scale used.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.graphs.dataset import GraphDataset
from repro.graphs.synthetic import DEFAULT_ALPHA, power_law_graph, sparse_feature_matrix


@dataclass(frozen=True)
class DatasetSpec:
    """Published statistics of one Table II dataset."""

    name: str
    abbrev: str
    n_nodes: int
    n_edges: int
    adjacency_sparsity: float
    feature_sparsity: float
    feature_length: int
    hidden_dim: int
    alpha: float = DEFAULT_ALPHA

    @property
    def feature_density(self) -> float:
        return 1.0 - self.feature_sparsity


#: Table II of the paper, verbatim statistics.
DATASETS: Dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec("cora", "CR", 2_708, 10_556, 0.9986, 0.9873, 1_433, 16),
        DatasetSpec("amazon-photo", "AP", 7_650, 238_162, 0.9959, 0.6526, 745, 16),
        DatasetSpec("amazon-computers", "AC", 13_752, 491_722, 0.9974, 0.6516, 767, 16),
        DatasetSpec("coauthor-cs", "CS", 18_333, 163_788, 0.9995, 0.9912, 6_805, 16),
        DatasetSpec("coauthor-physics", "PH", 34_493, 495_924, 0.9996, 0.9961, 8_415, 16),
        DatasetSpec("flickr", "FR", 89_250, 899_756, 0.9999, 0.5361, 500, 16),
        DatasetSpec("yelp", "YP", 716_847, 13_954_819, 0.9999, 0.9999, 300, 16),
    ]
}

_ABBREVS = {spec.abbrev.lower(): spec.name for spec in DATASETS.values()}


def dataset_names() -> Tuple[str, ...]:
    """All registry names, in Table II order."""
    return tuple(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a spec by name or Table II abbreviation (case-insensitive)."""
    key = name.lower()
    key = _ABBREVS.get(key, key)
    try:
        return DATASETS[key]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; known: {', '.join(DATASETS)}"
        ) from None


def load_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    feature_length: int = None,
) -> GraphDataset:
    """Synthesise a dataset matching (a scaled version of) its Table II spec.

    Parameters
    ----------
    name:
        Registry name (``"cora"``) or abbreviation (``"CR"``).
    scale:
        Proportional size factor in (0, 1]; nodes and edges both shrink
        by ``scale`` (minimums keep tiny scales usable).
    seed:
        Generator seed (combined with the dataset name so different
        datasets never share structure at the same seed).
    feature_length:
        Optional override of the feature length (rarely needed; the
        combination-phase workload scales with it).
    """
    spec = get_spec(name)
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    n_nodes = max(64, int(round(spec.n_nodes * scale)))
    # Undirected-doubled edge count, kept even and within simple-graph
    # bounds; the floor keeps heavily scaled graphs from degenerating
    # (Cora's true mean degree is ~3.9, so the floor must stay below it).
    n_edges = max(2 * n_nodes, int(round(spec.n_edges * scale)))
    n_edges = min(n_edges, n_nodes * (n_nodes - 1))
    n_edges -= n_edges % 2
    f_len = feature_length if feature_length is not None else spec.feature_length

    # Stable per-dataset seed offset so seeds do not alias across datasets
    # (crc32, not hash(): str hashing is salted per interpreter run).
    base_seed = (zlib.crc32(spec.name.encode()) & 0xFFFF) * 7919 + seed

    adjacency = power_law_graph(
        n_nodes, n_edges, alpha=spec.alpha, seed=base_seed, symmetric=True
    )
    features = sparse_feature_matrix(
        n_nodes, f_len, spec.feature_density, seed=base_seed + 1
    )
    return GraphDataset(
        name=spec.name,
        adjacency=adjacency,
        features=features,
        hidden_dim=spec.hidden_dim,
        scale=scale,
    )
