"""Hit-path benchmark of the sweep service.

The serving story's steady state is "a million cached lookups a day":
almost every submission finds its answer already on disk.  This bench
measures that path end to end -- client connect excluded, protocol
round trip included -- by priming one job into a (sharded) result
cache, then timing repeated warm submissions of the identical spec
against a live server.

Results append to the repo-root ``BENCH_serve.json`` trajectory (same
idiom as ``BENCH_sim.json``): one entry per invocation keyed by git SHA
and date, with p50/p90/p99 client-observed latency, served requests per
second, the server's own cache-probe percentiles from ``/metrics``, and
a comparison against the most recent earlier entry with the same
workload signature.

By default the bench self-hosts a :class:`~repro.serve.server.
ServerThread` over a temporary sharded cache; ``--host``/``--port``
target an already-running server instead (the spec still needs to be
primed there first).
"""

from __future__ import annotations

import datetime
import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.serve.client import ServeClient
from repro.serve.server import ServeSettings, ServerThread, percentiles

#: Trajectory schema of ``BENCH_serve.json``.
TRAJECTORY_SCHEMA = 1


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: Path) -> Dict[str, Any]:
    if not path.exists():
        return {"schema": TRAJECTORY_SCHEMA, "runs": []}
    doc = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or "runs" not in doc:
        raise ValueError(f"{path}: not a BENCH_serve trajectory")
    return doc


def previous_matching(
    runs: List[Dict[str, Any]], workload: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Most recent earlier run with the same workload signature."""
    signature = ("dataset", "kind", "scale", "n_layers", "seed", "requests")
    for run in reversed(runs):
        prev = run.get("workload", {})
        if all(prev.get(key) == workload.get(key) for key in signature):
            return run
    return None


def time_hitpath(
    client: ServeClient, spec_dict: Dict[str, Any], requests: int
) -> List[float]:
    """Client-observed milliseconds per warm submit, one per request."""
    samples: List[float] = []
    for _ in range(requests):
        t0 = time.perf_counter()
        response = client.submit(spec_dict, wait=True)
        elapsed_ms = (time.perf_counter() - t0) * 1000.0
        if response.get("cache") != "hit":
            raise RuntimeError(
                "hit-path bench got a cache miss "
                f"(source={response.get('source')!r}); prime the spec first"
            )
        samples.append(elapsed_ms)
    return samples


def run_bench(
    dataset: str = "cora",
    kind: str = "hymm",
    scale: Optional[float] = None,
    n_layers: int = 1,
    seed: int = 0,
    requests: int = 200,
    host: Optional[str] = None,
    port: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """One full bench run; returns the trajectory entry (not yet
    appended).  ``host``/``port`` switch from self-hosted to an external
    server."""
    from repro.bench.runner import job_spec
    from repro.runtime.cache import ShardedResultCache

    spec = job_spec(dataset, kind, scale=scale, n_layers=n_layers, seed=seed)
    spec_dict = spec.to_dict()

    def measure(client: ServeClient) -> Dict[str, Any]:
        prime = client.submit(spec_dict, wait=True)
        if prime.get("status") != "done":
            raise RuntimeError(
                f"prime submit did not complete: {prime.get('error')}"
            )
        t0 = time.perf_counter()
        samples = time_hitpath(client, spec_dict, requests)
        elapsed = time.perf_counter() - t0
        server_metrics = client.metrics()
        return {
            "prime_source": prime.get("source"),
            "client_ms": {
                key: round(value, 4)
                for key, value in percentiles(samples).items()
            },
            "requests_per_second": round(requests / elapsed, 1),
            "server_hitpath_ms": server_metrics.get("hitpath_ms", {}),
            "cache": server_metrics.get("cache", {}),
        }

    if host is not None and port is not None:
        with ServeClient(host, port) as client:
            measured = measure(client)
        served_by = f"{host}:{port}"
    else:
        cache = ShardedResultCache(cache_dir)
        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                measured = measure(client)
        served_by = "self-hosted"

    return {
        "sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%d"
        ),
        "served_by": served_by,
        "workload": {
            "dataset": dataset,
            "kind": kind,
            "scale": spec.scale,
            "n_layers": n_layers,
            "seed": seed,
            "requests": requests,
        },
        "results": measured,
    }


def attach_vs_previous(run: Dict[str, Any], prev: Dict[str, Any]) -> None:
    """Cross-PR comparison on p50 client latency (old/new: >1 = faster
    now)."""
    old_p50 = prev.get("results", {}).get("client_ms", {}).get("p50")
    new_p50 = run["results"]["client_ms"].get("p50")
    comparison: Dict[str, Any] = {
        "sha": prev.get("sha", "unknown"),
        "date": prev.get("date", ""),
    }
    if old_p50 and new_p50:
        comparison["p50_speedup"] = round(old_p50 / new_p50, 3)
    run["vs_previous"] = comparison


def bench_hitpath_main(
    dataset: str,
    kind: str,
    scale: Optional[float],
    n_layers: int,
    seed: int,
    requests: int,
    host: Optional[str],
    port: Optional[int],
    output: Path,
    dry_run: bool = False,
) -> Dict[str, Any]:
    """CLI entry: run, report, append to the trajectory (unless
    ``dry_run``)."""
    run = run_bench(
        dataset=dataset, kind=kind, scale=scale, n_layers=n_layers,
        seed=seed, requests=requests, host=host, port=port,
    )
    trajectory = load_trajectory(output)
    prev = previous_matching(trajectory["runs"], run["workload"])
    if prev is not None:
        attach_vs_previous(run, prev)
    client_ms = run["results"]["client_ms"]
    print(
        f"hit path ({run['workload']['dataset']}/{run['workload']['kind']}, "
        f"{requests} requests, {run['served_by']}): "
        f"p50={client_ms.get('p50', 0):.3f}ms "
        f"p90={client_ms.get('p90', 0):.3f}ms "
        f"p99={client_ms.get('p99', 0):.3f}ms "
        f"({run['results']['requests_per_second']:.0f} req/s)"
    )
    speedup = run.get("vs_previous", {}).get("p50_speedup")
    if speedup is not None:
        print(
            f"vs previous entry {run['vs_previous']['sha']}: "
            f"p50 {speedup:.2f}x"
        )
    if not dry_run:
        trajectory["runs"].append(run)
        output.write_text(
            json.dumps(trajectory, indent=1) + "\n", encoding="utf-8"
        )
        print(
            f"appended run {run['sha']} to {output} "
            f"({len(trajectory['runs'])} entries)"
        )
    return run
