"""Roofline analysis: internal consistency bounds on every dataflow."""

import pytest

from repro import (
    GCNModel,
    HyMMAccelerator,
    OPAccelerator,
    RWPAccelerator,
    load_dataset,
)
from repro.analysis import analyze_run
from repro.baselines import CWPAccelerator


@pytest.fixture(scope="module")
def runs():
    model = GCNModel(load_dataset("amazon-photo", scale=0.05, seed=7), n_layers=1, seed=8)
    return [
        cls().run_inference(model)
        for cls in (RWPAccelerator, OPAccelerator, CWPAccelerator, HyMMAccelerator)
    ]


@pytest.fixture(scope="module")
def pressured_runs():
    """Same graph under buffer pressure, where locality differs."""
    from repro.hymm import HyMMConfig

    model = GCNModel(
        load_dataset("amazon-photo", scale=0.1, seed=7, feature_length=128),
        n_layers=1,
        seed=8,
    )
    small = 32 * 1024
    return {
        "rwp": RWPAccelerator(
            HyMMConfig(dmb_bytes=small, unified_buffer=False)
        ).run_inference(model),
        "op": OPAccelerator(
            HyMMConfig(dmb_bytes=small, unified_buffer=False)
        ).run_inference(model),
        "hymm": HyMMAccelerator(HyMMConfig(dmb_bytes=small)).run_inference(model),
    }


def test_no_run_beats_its_roofline(runs):
    """The simulator's hardest invariant: attained cycles can never be
    below max(compute bound, bandwidth bound)."""
    for result in runs:
        report = analyze_run(result)
        assert result.stats.cycles >= report.compute_bound - 1
        assert result.stats.cycles >= report.bandwidth_bound - 1


def test_efficiency_in_unit_interval(runs):
    for result in runs:
        report = analyze_run(result)
        assert 0.0 < report.efficiency <= 1.0


def test_bottleneck_labels(runs):
    for result in runs:
        report = analyze_run(result)
        assert report.bottleneck in ("compute", "memory")
        if report.bottleneck == "compute":
            assert report.compute_bound >= report.bandwidth_bound


def test_slack_nonnegative(runs):
    for result in runs:
        assert analyze_run(result).slack_cycles >= -1


def test_hymm_highest_arithmetic_intensity(pressured_runs):
    """HyMM's whole point: more FLOPs per DRAM byte than the baselines
    once the working set exceeds the buffer."""
    intensities = {
        name: analyze_run(r).arithmetic_intensity
        for name, r in pressured_runs.items()
    }
    assert intensities["hymm"] == max(intensities.values())


def test_lane_width_defaults_to_config(runs):
    result = runs[0]
    assert (
        analyze_run(result).arithmetic_intensity
        == analyze_run(result, lane_width=16).arithmetic_intensity
    )
