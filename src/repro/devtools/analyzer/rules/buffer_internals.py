"""Rule ``buffer-internals``: the slot arena is the buffer's business.

:class:`repro.sim.buffer.CacheBuffer` stores its state as a
preallocated slot arena -- parallel per-slot arrays, per-class
slot-keyed LRU OrderedDicts, a FIFO MSHR file and one addr->slot map.
That layout is a performance representation, not an interface: it has
changed once already (dict-of-``_Line`` objects -> slot arena) and may
change again, and every field update carries invariants (class counts,
LRU membership, the ``_max_ready`` watermark) that only the buffer's
own methods and the batched engine's audited fast paths maintain.

Kernel or baseline code reaching into those fields would couple model
code to the representation *and* bypass the invariant maintenance --
a silent way to corrupt eviction order or miss accounting without any
equivalence test noticing.  The public surface (``read``, ``write``,
``accumulate``, ``classify_batch``, ``contains``, ``flush``,
``invalidate``, ``reclassify``, ``occupancy_by_class``,
``resident_lines``, ``evict_priority``) covers every legitimate use.

Scope mirrors the ``batch-api`` rule: compute kernels and baseline
accelerators.  ``repro.sim.engine`` is deliberately outside the scope
-- the batched engine's flat loops are the audited fast path and hoist
these fields by design.

A second, stricter scope covers replay-mode code
(:mod:`repro.sim.replay` and the run loop in :mod:`repro.hymm.base`):
there *any* arena access -- reads included -- is flagged, because
applying a recorded trace must be read-only over the arena by
construction, with state flowing only through the public
``snapshot_state``/``restore_state`` pair.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.analyzer.core import Finding, Project, Rule, register

#: Private slot-arena state of :class:`repro.sim.buffer.CacheBuffer`.
#: Kept in sync with the buffer implementation; the rule's own test
#: cross-checks this set against the live class.
ARENA_FIELDS = {
    "_slot_of",
    "_slot_cls",
    "_slot_dirty",
    "_slot_ready",
    "_slot_addr",
    "_lru_ods",
    "_lru_mte",
    "_free_slots",
    "_class_count",
    "_mshr_fifo",
    "_outstanding",
    "_spilled_partials",
    "_max_ready",
    "_evict_ctx",
    "_evict_order",
    "_line_cost",
    "_read_latency",
    "_size",
    "_mask_scratch",
}

#: Private methods that are likewise representation, not interface.
ARENA_METHODS = {
    "_insert",
    "_read_miss",
    "_acquire_mshr",
    "_touch_slot",
    "_update_partial_peak",
    "_plan_victims",
    "_commit_epoch",
    "_commit_hit_epoch",
}


@register
class BufferInternalsRule(Rule):
    name = "buffer-internals"
    description = (
        "kernels and baselines must not touch CacheBuffer's private "
        "slot-arena fields; use the public read/write/classify API"
    )
    default_severity = "error"
    default_options = {
        "scope": [
            "repro.hymm.kernels",
            "repro.baselines",
        ],
        # Replay-mode code: applying a recorded trace must be read-only
        # over the arena *by construction* -- state flows exclusively
        # through the public snapshot_state/restore_state pair, never
        # through arena fields, so a replayed phase cannot corrupt the
        # invariants the live paths maintain.  Any arena touch here is
        # flagged, reads included.
        "replay_scope": [
            "repro.sim.replay",
            "repro.hymm.base",
        ],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        private = ARENA_FIELDS | ARENA_METHODS
        for mod in project.in_package(*tuple(self.options["scope"])):
            for receiver, node in _arena_accesses(mod.tree, private):
                kind = "method" if node.attr in ARENA_METHODS else "field"
                yield self.finding(
                    project, mod, node,
                    f"access to CacheBuffer private slot-arena {kind} "
                    f"{receiver}.{node.attr}: the arena layout is a "
                    f"representation, not an interface -- go through the "
                    f"public buffer API",
                    symbol=f"{receiver}.{node.attr}",
                )
        for mod in project.in_package(*tuple(self.options["replay_scope"])):
            for receiver, node in _arena_accesses(mod.tree, private):
                yield self.finding(
                    project, mod, node,
                    f"arena access {receiver}.{node.attr} in replay-mode "
                    f"code: trace replay must stay read-only over the "
                    f"buffer arena -- restore state only through the "
                    f"public snapshot_state/restore_state pair",
                    symbol=f"{receiver}.{node.attr}",
                )


def _arena_accesses(tree: ast.AST, private: set):
    """Yield ``(receiver, node)`` for every attribute access to a
    private arena name on a buffer-looking receiver."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Attribute):
            continue
        if node.attr not in private:
            continue
        receiver = _receiver_chain(node.value)
        if receiver is None or not _looks_like_buffer(receiver):
            continue
        yield receiver, node


def _looks_like_buffer(receiver: str) -> bool:
    """Kernels and baselines reach the buffer through names containing
    ``buf`` (``buf``, ``buffer``, ``self.buffer``, ``dmb.buffer``,
    ``top_buf``); an unrelated object with a ``_size`` attribute under
    a different name is not worth flagging."""
    return "buf" in receiver.lower()


def _receiver_chain(node: ast.AST) -> "str | None":
    """Dotted receiver of an attribute access (``ctx.buffer`` for
    ``ctx.buffer._slot_of``); ``None`` for computed receivers."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
