"""Property-based whole-system invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import (
    GCNModel,
    HyMMAccelerator,
    HyMMConfig,
    OPAccelerator,
    RWPAccelerator,
    reference_inference,
)
from repro.graphs import GraphDataset
from repro.graphs.synthetic import power_law_graph, sparse_feature_matrix


@st.composite
def random_workload(draw):
    n = draw(st.integers(8, 48))
    max_edges = n * (n - 1)
    e = draw(st.integers(0, min(160, max_edges)))
    e -= e % 2
    f_len = draw(st.integers(4, 24))
    density = draw(st.floats(0.05, 0.9))
    seed = draw(st.integers(0, 500))
    adjacency = power_law_graph(n, e, seed=seed)
    features = sparse_feature_matrix(n, f_len, density, seed=seed + 1)
    ds = GraphDataset("prop", adjacency, features, hidden_dim=16)
    return GCNModel(ds, n_layers=1, seed=seed + 2)


@settings(max_examples=15, deadline=None)
@given(random_workload())
def test_all_dataflows_compute_the_same_matrix(model):
    """Whatever the graph, every dataflow must produce the oracle result."""
    ref = reference_inference(model.dataset, model.weight_list)[-1]
    for acc in (RWPAccelerator(), OPAccelerator(), HyMMAccelerator()):
        out = acc.run_inference(model).outputs[-1]
        np.testing.assert_allclose(out, ref, rtol=1e-2, atol=1e-3)


@settings(max_examples=10, deadline=None)
@given(random_workload(), st.integers(6, 64))
def test_buffer_size_never_changes_results(model, kb):
    """Cycle counts move with the DMB size; values never do."""
    ref = HyMMAccelerator(HyMMConfig()).run_inference(model).outputs[-1]
    small = HyMMAccelerator(HyMMConfig(dmb_bytes=kb * 1024)).run_inference(model)
    np.testing.assert_allclose(small.outputs[-1], ref, rtol=1e-2, atol=1e-3)


@st.composite
def random_config(draw):
    """A random-but-valid hardware configuration."""
    return HyMMConfig(
        n_pes=draw(st.sampled_from([4, 8, 16, 32])),
        dmb_bytes=draw(st.sampled_from([1, 4, 16, 64])) * 1024,
        lsq_entries=draw(st.sampled_from([2, 16, 128])),
        mshr_entries=draw(st.sampled_from([1, 4, 16])),
        threshold_fraction=draw(st.sampled_from([0.05, 0.2, 0.6])),
        resident_fraction=draw(st.sampled_from([0.25, 0.75, 1.0])),
        near_memory_accumulator=draw(st.booleans()),
        op_first=draw(st.booleans()),
        unified_buffer=draw(st.booleans()),
        forwarding=draw(st.booleans()),
        lru=draw(st.booleans()),
    )


@settings(max_examples=15, deadline=None)
@given(random_workload(), random_config())
def test_hardware_config_never_changes_results(model, config):
    """Fuzz the whole configuration space: any valid hardware changes
    only *when* things happen, never *what* is computed."""
    ref = reference_inference(model.dataset, model.weight_list)[-1]
    result = HyMMAccelerator(config).run_inference(model)
    np.testing.assert_allclose(result.outputs[-1], ref, rtol=1e-2, atol=1e-3)
    assert result.stats.cycles >= result.stats.busy_cycles


@settings(max_examples=10, deadline=None)
@given(random_workload())
def test_cycle_accounting_invariants(model):
    """Busy cycles never exceed total cycles; utilisation and hit rate
    stay in [0, 1]; DRAM byte counts are line-aligned."""
    for acc in (RWPAccelerator(), OPAccelerator(), HyMMAccelerator()):
        stats = acc.run_inference(model).stats
        assert 0 < stats.cycles
        assert stats.busy_cycles <= stats.cycles
        assert 0.0 <= stats.alu_utilization() <= 1.0
        assert 0.0 <= stats.hit_rate() <= 1.0
        assert stats.dram_total_bytes() >= 0
