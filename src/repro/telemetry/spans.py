"""Wall-clock spans in the Chrome-trace schema PR 5 validates.

:mod:`repro.obs` traces *simulated* cycles; this module traces *host*
time -- the other clock.  Both emit the same Chrome trace-event JSON
(``repro.obs.schema.validate_trace`` accepts either), distinguished by
``cat`` (``"host"`` here vs ``"phase"``/``"sim"`` there) and by the
document metadata ``clock`` field.  Each span carries the bound
correlation ID in its ``args``, which is the join key ``repro.obs
diff`` uses to line a job's host-time spans up against its
simulated-time trace.

The recorder is explicitly installed (serve ``--span-file``, obs CLI)
or absent; with no recorder, :func:`span` is a no-op context manager
-- two attribute loads on the hit path, no timestamps taken.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from .logs import current_correlation_id

#: Category stamped on every wall-clock event (simulated-time traces
#: use "phase"/"sim"/...).
HOST_CATEGORY = "host"


class SpanRecorder:
    """Collects wall-clock trace events; thread-safe appends.

    Timestamps are microseconds relative to recorder creation (Chrome
    trace ``ts`` must be >= 0 and the viewer only cares about deltas);
    the absolute epoch anchor lands in the document metadata so two
    recordings can still be aligned.
    """

    def __init__(self, pid: int = 0) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._epoch_s = time.time()
        self._origin = time.perf_counter()
        self.pid = pid if pid else os.getpid()

    # ------------------------------------------------------------------
    def _now_us(self) -> float:
        return (time.perf_counter() - self._origin) * 1e6

    def _emit(self, event: Dict[str, Any]) -> None:
        corr_id = current_correlation_id()
        if corr_id:
            event.setdefault("args", {})["corr_id"] = corr_id
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(self, name: str, **args: Any) -> Iterator[None]:
        """A complete ("X") event around the block, duration measured
        with ``perf_counter``."""
        start = self._now_us()
        try:
            yield
        finally:
            end = self._now_us()
            event: Dict[str, Any] = {
                "name": name,
                "cat": HOST_CATEGORY,
                "ph": "X",
                "ts": round(start, 3),
                "dur": round(max(0.0, end - start), 3),
                "pid": self.pid,
                "tid": threading.get_ident() % 1_000_000,
            }
            if args:
                event["args"] = dict(args)
            self._emit(event)

    def instant(self, name: str, **args: Any) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "cat": HOST_CATEGORY,
            "ph": "i",
            "s": "t",
            "ts": round(self._now_us(), 3),
            "pid": self.pid,
            "tid": threading.get_ident() % 1_000_000,
        }
        if args:
            event["args"] = dict(args)
        self._emit(event)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def trace_dict(self, **metadata: Any) -> Dict[str, Any]:
        """The Chrome-trace document (validates under repro.obs.schema)."""
        with self._lock:
            events = [dict(e) for e in self._events]
        events.sort(key=lambda e: (e["ts"], e["name"]))
        meta: Dict[str, Any] = {
            "clock": "wall",
            "epoch_s": round(self._epoch_s, 6),
        }
        meta.update(metadata)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": meta,
        }

    def to_json(self, **metadata: Any) -> str:
        import json

        return json.dumps(self.trace_dict(**metadata), indent=2, sort_keys=True)

    def write(self, path: str, **metadata: Any) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(**metadata))
            fh.write("\n")


# ----------------------------------------------------------------------
# Process-global recorder: absent by default (spans cost nothing), set
# by entry points that want a wall-clock trace out.

_recorder: Optional[SpanRecorder] = None


def install_recorder(recorder: Optional[SpanRecorder]) -> Optional[SpanRecorder]:
    """Install (or, with None, remove) the process recorder; returns
    the previous one so tests can restore it."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


def active_recorder() -> Optional[SpanRecorder]:
    return _recorder


@contextmanager
def span(name: str, **args: Any) -> Iterator[None]:
    """Record a wall-clock span if a recorder is installed; otherwise
    a no-op (the telemetry-off contract: no clock reads, no objects)."""
    rec = _recorder
    if rec is None:
        yield
        return
    with rec.span(name, **args):
        yield


def instant(name: str, **args: Any) -> None:
    rec = _recorder
    if rec is not None:
        rec.instant(name, **args)
