"""Over/under-fire tests for the interprocedural rules.

Every violation in a fixture must be reported at exactly its marked
line, and every deliberately-clean variant must stay silent.  The
before/after class at the bottom locks in the motivating gap: the
intraprocedural ``serve-hygiene`` rule reports *zero* findings on a
module whose handlers block the event loop through sync helpers, and
``transitive-blocking`` catches both.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.analyzer.core import Project, run_rules
from repro.devtools.analyzer.rules.await_atomicity import AwaitAtomicityRule
from repro.devtools.analyzer.rules.determinism import DeterminismRule
from repro.devtools.analyzer.rules.loop_affinity import LoopAffinityRule
from repro.devtools.analyzer.rules.obs_hygiene import ObsHygieneRule
from repro.devtools.analyzer.rules.serve_hygiene import ServeHygieneRule
from repro.devtools.analyzer.rules.transitive_blocking import (
    TransitiveBlockingRule,
)

FIXTURES = Path(__file__).parent / "fixtures"


def load_fixtures(*name_pairs):
    """Load several fixture files under pretend dotted module names."""
    paths = {FIXTURES / f: m for f, m in name_pairs}
    return Project.load(sorted(paths), root=FIXTURES, module_names=paths)


def line_of(filename: str, snippet: str, occurrence: int = 1) -> int:
    text = (FIXTURES / filename).read_text(encoding="utf-8")
    seen = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if snippet in line:
            seen += 1
            if seen == occurrence:
                return lineno
    raise AssertionError(f"{snippet!r} (occurrence {occurrence}) not in {filename}")


def by_line(findings):
    return {f.line for f in findings}


# ----------------------------------------------------------------------
# await-atomicity
# ----------------------------------------------------------------------
class TestAwaitAtomicityRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixtures(
            ("atomicity_violations.py", "repro.serve.atomicity_fixture")
        )
        return run_rules(project, [AwaitAtomicityRule()])

    def test_every_finding_location(self, findings):
        expected = {
            line_of("atomicity_violations.py", "self._jobs[key] = record  # VIOLATION"),
            line_of("atomicity_violations.py", "self._tickets[key] = object()"),
            line_of("atomicity_violations.py", "self._bump()  # VIOLATION"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "await-atomicity" for f in findings)

    def test_alias_check_is_tracked(self, findings):
        # ``entry = self._jobs.get(key); if entry is None:`` counts as a
        # check of self._jobs even though the test reads the alias.
        store = line_of(
            "atomicity_violations.py", "self._jobs[key] = record  # VIOLATION"
        )
        [f] = [f for f in findings if f.line == store]
        assert "self._jobs" in f.message
        assert "await" in f.message

    def test_interprocedural_store_is_attributed(self, findings):
        bump = line_of("atomicity_violations.py", "self._bump()  # VIOLATION")
        [f] = [f for f in findings if f.line == bump]
        assert "self.count" in f.message

    def test_clean_variants_stay_silent(self, findings):
        clean = {
            line_of("atomicity_violations.py", "act before the await"),
            line_of("atomicity_violations.py", "re-validated after the await"),
            line_of("atomicity_violations.py", "self.count += 1", occurrence=2),
            line_of("atomicity_violations.py", "self.count += 1", occurrence=3),
        }
        assert by_line(findings) & clean == set()


# ----------------------------------------------------------------------
# loop-affinity
# ----------------------------------------------------------------------
class TestLoopAffinityRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixtures(
            ("affinity_violations.py", "repro.serve.affinity_fixture")
        )
        return run_rules(project, [LoopAffinityRule()])

    def test_only_the_shared_unlocked_counter_fires(self, findings):
        expected = {line_of("affinity_violations.py", "self.lookups += 1")}
        assert by_line(findings) == expected
        [f] = findings
        assert f.rule == "loop-affinity"
        assert f.symbol == "StatsTracker.lookups"

    def test_message_names_both_sides(self, findings):
        [f] = findings
        # The fix requires seeing the thread entry and the loop reader.
        assert "probe" in f.message
        assert "snapshot" in f.message

    def test_sanctioned_patterns_stay_silent(self, findings):
        clean = {
            # Lock-guarded store, loopsafe-scheduled callback, and a
            # thread-private attribute with no loop-side reader.
            line_of("affinity_violations.py", "self.safe_updates += 1"),
            line_of("affinity_violations.py", "self.finished += 1"),
            line_of("affinity_violations.py", "self.scratch = key"),
        }
        assert by_line(findings) & clean == set()


# ----------------------------------------------------------------------
# transitive-blocking
# ----------------------------------------------------------------------
class TestTransitiveBlockingRule:
    @pytest.fixture()
    def findings(self):
        project = load_fixtures(
            ("transitive_violations.py", "repro.serve.transitive_fixture")
        )
        return run_rules(project, [TransitiveBlockingRule()])

    def test_every_finding_location(self, findings):
        expected = {
            line_of("transitive_violations.py", "deep_helper()  # VIOLATION"),
            line_of("transitive_violations.py", "return read_config(path)"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "transitive-blocking" for f in findings)

    def test_message_renders_the_full_chain(self, findings):
        sleep_line = line_of(
            "transitive_violations.py", "deep_helper()  # VIOLATION"
        )
        [f] = [f for f in findings if f.line == sleep_line]
        # The handler never mentions time.sleep; the chain must.
        assert "handle_sleep -> deep_helper -> nap_helper -> time.sleep" in f.message
        assert "asyncio.to_thread" in f.message

    def test_offloaded_and_pure_handlers_stay_silent(self, findings):
        clean = {
            line_of("transitive_violations.py", "asyncio.to_thread(read_config"),
            line_of("transitive_violations.py", "return pure_helper(value)"),
        }
        assert by_line(findings) & clean == set()


# ----------------------------------------------------------------------
# serve-hygiene before/after: the gap transitive-blocking closes
# ----------------------------------------------------------------------
class TestHelperHiddenBlockingGap:
    @pytest.fixture()
    def project(self):
        return load_fixtures(
            ("transitive_violations.py", "repro.serve.transitive_fixture")
        )

    def test_serve_hygiene_misses_helper_hidden_blocking(self, project):
        # Before: no async body blocks *directly*, so the lexical rule
        # is blind to the module even though two handlers freeze the loop.
        assert run_rules(project, [ServeHygieneRule()]) == []

    def test_transitive_blocking_catches_what_it_misses(self, project):
        findings = run_rules(project, [TransitiveBlockingRule()])
        assert by_line(findings) == {
            line_of("transitive_violations.py", "deep_helper()  # VIOLATION"),
            line_of("transitive_violations.py", "return read_config(path)"),
        }


# ----------------------------------------------------------------------
# determinism: interprocedural escape pass
# ----------------------------------------------------------------------
class TestDeterminismEscapes:
    @pytest.fixture()
    def findings(self):
        project = load_fixtures(
            ("det_escape_violations.py", "repro.sim.det_escape_fixture"),
            ("det_escape_helper.py", "repro.util.det_helper"),
        )
        return run_rules(project, [DeterminismRule()])

    def test_escapes_fire_at_the_call_site(self, findings):
        expected = {
            line_of("det_escape_violations.py", "started = stamp()"),
            line_of("det_escape_violations.py", "stamp_indirect()"),
        }
        assert by_line(findings) == expected
        assert all(f.rule == "determinism" for f in findings)
        assert all(f.path.endswith("det_escape_violations.py") for f in findings)

    def test_helper_body_is_not_flagged_directly(self, findings):
        # The helper is outside the determinism scope: only calls into
        # it from scope code count.
        assert not any(f.path.endswith("det_escape_helper.py") for f in findings)

    def test_message_carries_the_witness_chain(self, findings):
        deep = line_of("det_escape_violations.py", "stamp_indirect()")
        [f] = [f for f in findings if f.line == deep]
        assert "stamp_indirect -> stamp -> time.time" in f.message

    def test_pure_helper_call_is_clean(self, findings):
        assert line_of("det_escape_violations.py", "return pure(config)") not in by_line(
            findings
        )


# ----------------------------------------------------------------------
# obs-hygiene: transitive unguarded emission
# ----------------------------------------------------------------------
class TestObsHygieneTransitive:
    @pytest.fixture()
    def findings(self):
        project = load_fixtures(
            ("obs_escape_violations.py", "repro.hymm.obs_escape_fixture"),
            ("obs_escape_helper.py", "repro.util.trace_helper"),
            ("obs_escape_audited.py", "repro.sim.audited_emitter"),
        )
        return run_rules(project, [ObsHygieneRule()])

    def test_guarded_call_to_unguarded_helper_fires(self, findings):
        # Guarding the *call* does not guard the helper's emission; the
        # guard has to sit at the emission site itself.
        expected = {
            line_of("obs_escape_violations.py", 'emit_unguarded(tracer, "spmm"')
        }
        assert by_line(findings) == expected
        [f] = findings
        assert f.rule == "obs-hygiene"
        assert "emit_unguarded" in f.message
        assert "emits-trace" in f.message

    def test_self_guarded_helper_and_audited_path_are_clean(self, findings):
        clean = {
            line_of("obs_escape_violations.py", "emit_guarded(tracer"),
            line_of("obs_escape_violations.py", "engine_emit(tracer"),
        }
        assert by_line(findings) & clean == set()
