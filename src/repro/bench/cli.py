"""Command-line interface for the experiment harness.

Usage::

    python -m repro.bench all                 # every table and figure
    python -m repro.bench fig7 fig11          # specific experiments
    python -m repro.bench fig7 --datasets cora amazon-photo
    python -m repro.bench table2 --full-scale
    python -m repro.bench list                # what's available

Each experiment prints its table and, with ``--output DIR``, also
writes ``<experiment>.txt`` files.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
from typing import Callable, Dict, List, Optional

from repro.bench import figures, tables
from repro.bench.workloads import BENCH_DATASETS


def _table_text(fn: Callable) -> Callable[[Optional[List[str]]], str]:
    def run(datasets):
        out = fn()
        return out if isinstance(out, str) else out["text"]

    return run


def _figure_text(fn: Callable) -> Callable[[Optional[List[str]]], str]:
    def run(datasets):
        kwargs = {"datasets": datasets} if datasets else {}
        return fn(**kwargs)["text"]

    return run


EXPERIMENTS: Dict[str, Callable] = {
    "table1": _table_text(tables.table1),
    "table2": _table_text(tables.table2),
    "table3": _table_text(tables.table3),
    "fig2": _figure_text(figures.fig2_degree_distribution),
    "fig6": _figure_text(figures.fig6_storage_overhead),
    "fig7": _figure_text(figures.fig7_speedup),
    "fig8": _figure_text(figures.fig8_alu_utilization),
    "fig9": _figure_text(figures.fig9_hit_rate),
    "fig10": _figure_text(figures.fig10_partial_outputs),
    "fig11": _figure_text(figures.fig11_dram_breakdown),
}

#: Run order for "all" (cheap first; Figs. 7-11 share memoised runs).
ALL_ORDER = (
    "table1", "table3", "table2", "fig2", "fig6",
    "fig7", "fig8", "fig9", "fig10", "fig11",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the HyMM paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (e.g. fig7 table2), 'all', or 'list'",
    )
    parser.add_argument(
        "--datasets",
        nargs="+",
        metavar="NAME",
        help=f"restrict figure experiments to these datasets "
             f"(default: all of {', '.join(BENCH_DATASETS)})",
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="run at paper scale (sets REPRO_FULL_SCALE=1; slow)",
    )
    parser.add_argument(
        "--output",
        metavar="DIR",
        help="also write each experiment's text to DIR/<name>.txt",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if "list" in args.experiments:
        print("Available experiments:")
        for name in ALL_ORDER:
            print(f"  {name}")
        return 0

    if args.full_scale:
        os.environ["REPRO_FULL_SCALE"] = "1"

    names = list(ALL_ORDER) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(ALL_ORDER)}", file=sys.stderr)
        return 2

    out_dir = pathlib.Path(args.output) if args.output else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    for name in names:
        text = EXPERIMENTS[name](args.datasets)
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
        if out_dir:
            (out_dir / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
