"""Cycle-accounting simulation framework.

This package is the substrate under every simulated dataflow.  The
model is *cycle-accurate at vector-operation granularity*: the paper's
PE array (16 single-precision MACs, Table III) performs one
scalar x 64-byte-vector multiply-accumulate per cycle, so one sparse
non-zero processed against one dense row is the natural unit of both
compute and memory traffic.

Components
----------
* :class:`repro.sim.memory.DRAM` -- off-chip memory with finite
  bandwidth (64 GB/s at 1 GHz = 64 B/cycle, Section IV) and fixed access
  latency; shared bandwidth makes streams and random accesses contend
  naturally.
* :class:`repro.sim.buffer.CacheBuffer` -- an on-chip SRAM buffer with
  64 B lines, class-aware priority eviction (W evicted before XW before
  partial outputs, Section IV-D), LRU within a class, MSHRs that merge
  duplicate outstanding misses, and a near-memory accumulator for
  merging partial outputs in place.
* :class:`repro.sim.engine.AccessExecuteEngine` -- a decoupled
  access/execute pipeline: the frontend (SMQ feeding the LSQ) issues one
  memory request per cycle and may run up to ``lsq_depth`` requests
  ahead of the backend (the PE array), which consumes operands in order
  at one vector op per cycle.  Store-to-load forwarding matches the
  paper's LSQ (Section IV-B).
* :class:`repro.sim.stats.SimStats` -- the counters every experiment
  reads: cycles, ALU-busy cycles, DRAM bytes by traffic tag, buffer
  hits/misses, LSQ forwards, partial-output footprint.
"""

from repro.sim.stats import SimStats
from repro.sim.memory import DRAM, DRAMConfig
from repro.sim.buffer import CacheBuffer, CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL
from repro.sim.engine import (
    ENGINE_KINDS,
    AccessExecuteEngine,
    BatchedAccessExecuteEngine,
    make_engine,
)

__all__ = [
    "SimStats",
    "DRAM",
    "DRAMConfig",
    "CacheBuffer",
    "CLASS_W",
    "CLASS_XW",
    "CLASS_OUT",
    "CLASS_PARTIAL",
    "AccessExecuteEngine",
    "BatchedAccessExecuteEngine",
    "ENGINE_KINDS",
    "make_engine",
]
