"""Energy model (extension beyond the paper's area-only Table III).

The paper compares against GCNAX, whose headline is energy efficiency,
but reports only area; this module adds the standard back-of-envelope
energy accounting used across the accelerator literature (Horowitz
ISSCC'14 figures, scaled): per-operation energies for MACs, on-chip
SRAM accesses and off-chip DRAM transfers, composed with a simulated
run's counters.

All per-op constants are in picojoules at ~7 nm-class logic; DRAM
energy is node-independent (it is dominated by the interface).  These
are order-of-magnitude figures -- the interesting output is the
*relative* energy of the dataflows, which is dominated by the DRAM
term the paper's Fig. 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.hymm.base import RunResult

#: Energy per 32-bit MAC (multiply + add), pJ.
MAC_PJ = 0.9
#: Energy per byte read/written in a ~256 KB SRAM, pJ.
SRAM_PJ_PER_BYTE = 0.12
#: Energy per byte moved over the DRAM interface, pJ (LPDDR-class).
DRAM_PJ_PER_BYTE = 15.0


@dataclass(frozen=True)
class EnergyReport:
    """Energy of one simulated inference, joule-denominated."""

    compute_pj: float
    sram_pj: float
    dram_pj: float

    @property
    def total_pj(self) -> float:
        return self.compute_pj + self.sram_pj + self.dram_pj

    @property
    def total_uj(self) -> float:
        return self.total_pj / 1e6

    def breakdown(self) -> Dict[str, float]:
        """Component shares (fractions of total)."""
        total = self.total_pj or 1.0
        return {
            "compute": self.compute_pj / total,
            "sram": self.sram_pj / total,
            "dram": self.dram_pj / total,
        }


def energy_of_run(result: RunResult, lane_width: int = 16) -> EnergyReport:
    """Estimate the energy of one simulated inference.

    * compute: every busy PE-array cycle is ``lane_width`` MACs;
    * SRAM: every buffer hit or miss moves one 64-byte line through the
      DMB (misses additionally fill it), and LSQ forwards move a line
      within the LSQ (charged as SRAM too);
    * DRAM: the byte counters the simulator already keeps.
    """
    stats = result.stats
    line = result.config.line_bytes
    compute = stats.busy_cycles * lane_width * MAC_PJ
    buffer_ops = (
        sum(stats.buffer_hits.values())
        + 2 * sum(stats.buffer_misses.values())  # fill + read
        + stats.lsq_forwards
    )
    sram = buffer_ops * line * SRAM_PJ_PER_BYTE
    dram = stats.dram_total_bytes() * DRAM_PJ_PER_BYTE
    return EnergyReport(compute_pj=compute, sram_pj=sram, dram_pj=dram)


def energy_efficiency_gflops_per_watt(
    result: RunResult, clock_ghz: float = 1.0, lane_width: int = 16
) -> float:
    """Achieved GFLOPS/W for one run (2 FLOPs per MAC)."""
    report = energy_of_run(result, lane_width)
    seconds = result.stats.cycles / (clock_ghz * 1e9)
    if seconds <= 0 or report.total_pj <= 0:
        return 0.0
    flops = stats_flops(result, lane_width)
    watts = (report.total_pj * 1e-12) / seconds
    return (flops / seconds) / 1e9 / watts


def stats_flops(result: RunResult, lane_width: int = 16) -> float:
    """Useful floating-point operations of a run (2 per MAC lane-cycle)."""
    return 2.0 * result.stats.busy_cycles * lane_width
