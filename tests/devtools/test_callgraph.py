"""Call graph and effect engine: golden edges on fixtures, plus
spot-checks against the real ``src/`` tree so resolution keeps working
on the code the interprocedural rules actually audit."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.devtools.analyzer.callgraph import (
    KIND_CALL,
    KIND_LOOPSAFE,
    KIND_THREAD,
    get_callgraph,
)
from repro.devtools.analyzer.core import Project
from repro.devtools.analyzer.effects import (
    BLOCKS_IO,
    EMITS_TRACE,
    MUTATES_NONLOCAL,
    READS_WALL_CLOCK,
    SLEEPS,
    get_effects,
)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).parent.parent.parent / "src"


def load(*name_pairs):
    paths = {FIXTURES / f: m for f, m in name_pairs}
    return Project.load(sorted(paths), root=FIXTURES, module_names=paths)


def edges(graph, caller, kind=None):
    return {
        s.callee
        for s in graph.sites(caller)
        if s.callee is not None and (kind is None or s.kind == kind)
    }


class TestFixtureGraph:
    """Golden edge set over the transitive/affinity fixtures."""

    @pytest.fixture()
    def graph(self):
        project = load(
            ("transitive_violations.py", "repro.serve.transitive_fixture"),
            ("affinity_violations.py", "repro.serve.affinity_fixture"),
        )
        return get_callgraph(project)

    def test_module_function_calls_resolve(self, graph):
        t = "repro.serve.transitive_fixture"
        assert edges(graph, f"{t}.deep_helper", KIND_CALL) == {
            f"{t}.nap_helper"
        }
        assert (
            f"{t}.deep_helper"
            in edges(graph, f"{t}.TransitiveServer.handle_sleep", KIND_CALL)
        )

    def test_to_thread_makes_thread_edges_not_call_edges(self, graph):
        t = "repro.serve.transitive_fixture"
        offloaded = f"{t}.TransitiveServer.handle_offloaded"
        assert edges(graph, offloaded, KIND_THREAD) == {f"{t}.read_config"}
        assert edges(graph, offloaded, KIND_CALL) == set()

    def test_typed_attribute_receiver_resolves_methods(self, graph):
        a = "repro.serve.affinity_fixture"
        # self.tracker is typed via the __init__ parameter annotation.
        assert edges(graph, f"{a}.AffinityServer.metrics", KIND_CALL) == {
            f"{a}.StatsTracker.snapshot"
        }
        assert edges(graph, f"{a}.AffinityServer.handle", KIND_THREAD) == {
            f"{a}.StatsTracker.probe",
            f"{a}.StatsTracker.probe_locked",
            f"{a}.StatsTracker.worker",
        }

    def test_call_soon_threadsafe_is_loopsafe(self, graph):
        a = "repro.serve.affinity_fixture"
        assert edges(graph, f"{a}.StatsTracker.worker", KIND_LOOPSAFE) == {
            f"{a}.StatsTracker._finish"
        }

    def test_thread_reachability_stops_at_loopsafe(self, graph):
        a = "repro.serve.affinity_fixture"
        reachable = graph.thread_reachable("repro.serve")
        assert f"{a}.StatsTracker.probe" in reachable
        assert f"{a}.StatsTracker.worker" in reachable
        assert f"{a}.StatsTracker._finish" not in reachable
        assert f"{a}.StatsTracker.snapshot" not in reachable

    def test_async_flag_and_reverse_edges(self, graph):
        t = "repro.serve.transitive_fixture"
        assert graph.functions[f"{t}.TransitiveServer.handle_pure"].is_async
        assert not graph.functions[f"{t}.pure_helper"].is_async
        assert f"{t}.deep_helper" in graph.callers[f"{t}.nap_helper"]


class TestFixtureEffects:
    @pytest.fixture()
    def project(self):
        return load(
            ("transitive_violations.py", "repro.serve.transitive_fixture"),
            (
                "obs_escape_helper.py",
                "repro.util.trace_helper",
            ),
        )

    def test_direct_and_transitive_blocking(self, project):
        effects = get_effects(project)
        t = "repro.serve.transitive_fixture"
        assert SLEEPS in effects.of(f"{t}.nap_helper").direct
        deep = effects.of(f"{t}.deep_helper")
        assert SLEEPS in deep.all
        assert SLEEPS not in deep.direct  # inherited, not performed
        assert BLOCKS_IO in effects.of(f"{t}.read_config").direct
        assert not effects.of(f"{t}.pure_helper").all

    def test_thread_references_do_not_propagate_effects(self, project):
        effects = get_effects(project)
        t = "repro.serve.transitive_fixture"
        offloaded = effects.of(f"{t}.TransitiveServer.handle_offloaded")
        assert BLOCKS_IO not in offloaded.all

    def test_witness_chain_reaches_the_operation(self, project):
        effects = get_effects(project)
        t = "repro.serve.transitive_fixture"
        chain = effects.render_chain(f"{t}.deep_helper", SLEEPS)
        assert chain == "deep_helper -> nap_helper -> time.sleep"

    def test_guarded_emission_is_effect_free(self, project):
        effects = get_effects(project)
        h = "repro.util.trace_helper"
        assert EMITS_TRACE in effects.of(f"{h}.emit_unguarded").direct
        assert EMITS_TRACE not in effects.of(f"{h}.emit_guarded").all


class TestSrcSpotChecks:
    """The graph must keep resolving the real serve/runtime stack."""

    @pytest.fixture(scope="class")
    def project(self):
        return Project.load([SRC], root=SRC.parent)

    def test_cache_probe_is_a_thread_entry(self, project):
        graph = get_callgraph(project)
        entries = graph.thread_entries("repro.serve")
        assert "repro.serve.server.SweepServer._cache_lookup" in entries
        assert "repro.serve.server.SweepServer._run_batch" in entries

    def test_sharded_cache_load_is_thread_reachable(self, project):
        graph = get_callgraph(project)
        reachable = graph.thread_reachable("repro.serve")
        # self.cache: Optional[ResultCache] fans out to the subclass
        # override, two annotation-driven hops from the to_thread site.
        assert "repro.runtime.cache.ResultCache.load" in reachable
        assert "repro.runtime.cache.ShardedResultCache.load" in reachable
        assert "repro.runtime.cache.ShardedResultCache._adopt_flat" in reachable

    def test_cache_load_effects(self, project):
        effects = get_effects(project)
        fx = effects.of("repro.runtime.cache.ResultCache.load")
        assert BLOCKS_IO in fx.direct  # open()
        assert MUTATES_NONLOCAL in fx.direct  # self.hits += 1

    def test_async_handlers_carry_no_wall_clock_into_sim(self, project):
        effects = get_effects(project)
        # The simulator entry point must not inherit wall-clock reads.
        fx = effects.of("repro.hymm.runner.run_job")
        assert READS_WALL_CLOCK not in fx.all
