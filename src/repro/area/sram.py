"""SRAM/CAM area curves (CACTI-style, calibrated to Table III at 7 nm).

CACTI's area for small-to-medium SRAM arrays is well approximated by a
fixed periphery overhead plus a per-kilobyte cell cost.  The two
coefficients below are fitted to the paper's two SRAM data points:

* SMQ, 16 KB single-ported -> 0.008 mm^2
* DMB, 256 KB             -> 0.077 mm^2

which gives ``area(kb) = 0.0034 + 2.875e-4 * kb`` and lands exactly on
both.  The LSQ is content-addressable (every load searches the store
addresses), so it carries a CAM overhead factor calibrated to its
Table III entry (128 x 68 B = 8.5 KB -> 0.009 mm^2).
"""

from __future__ import annotations

#: Fixed periphery (decoders, sense amps) per array, mm^2 at 7 nm.
SRAM_BASE_MM2 = 0.0034
#: Cell area per kilobyte, mm^2 at 7 nm.
SRAM_PER_KB_MM2 = 2.875e-4
#: CAM overhead over plain SRAM (match lines + comparators).
CAM_FACTOR = 1.541


def sram_area_mm2(kilobytes: float) -> float:
    """Area of one SRAM array at 7 nm (CACTI-style linear model)."""
    if kilobytes < 0:
        raise ValueError("kilobytes must be non-negative")
    if kilobytes == 0:
        return 0.0
    return SRAM_BASE_MM2 + SRAM_PER_KB_MM2 * kilobytes


def cam_area_mm2(kilobytes: float) -> float:
    """Area of a content-addressable array (LSQ) at 7 nm."""
    return CAM_FACTOR * sram_area_mm2(kilobytes)
