"""Dataflow kernels: the SpDeMM execution schedules of every engine.

Each kernel walks a sparse operand in its dataflow's order, drives the
decoupled access/execute engine (timing), and performs the actual
arithmetic (functional result).  The same kernels implement both HyMM's
phases and the homogeneous baselines, because the paper evaluates all
dataflows on the same memory hierarchy.

Kernels
-------
``combination_rwp``
    Row-wise product over a sparse feature matrix (GROW, G-CoD and
    HyMM's combination, Table I).
``combination_op``
    Outer product over CSC features (GCNAX's combination).
``combination_dense``
    Dense-input combination for layers past the first.
``aggregation_rwp``
    Row-wise product aggregation (GROW; HyMM regions 2 and 3).
``aggregation_op``
    Outer-product aggregation with three partial-merge modes:
    ``"dmb"`` (HyMM's near-memory accumulator), ``"pe"`` (read-modify-
    write through the PE array, the GCNAX-proxy), and ``"deferred"``
    (append partials now, merge in a separate pass -- the classic
    OuterSpace organisation, used for the Figure 10 comparison).
``aggregation_hybrid``
    HyMM's schedule: OP over the degree-sorted region-1 tiles first,
    then RWP over the remaining rows (Section III's execution order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Union

import numpy as np

from repro.graphs.partition import RegionPlan
from repro.hymm.config import HyMMConfig
from repro.hymm.dmb import AddressMap, DenseMatrixBuffer, SplitBufferPair
from repro.hymm.pe import PEArray
from repro.hymm.smq import SparseMatrixQueue
from repro.sim.buffer import CLASS_OUT, CLASS_PARTIAL, CLASS_W, CLASS_XW
from repro.sim.engine import AccessExecuteEngine
from repro.sparse import CSCMatrix, CSRMatrix
from repro.sparse.coo import VALUE_DTYPE

#: Eviction order while a combination runs: the weight rows are the
#: reused operand, so the buffer sheds freshly written XW lines first
#: (the unified DMB's dynamic space management, Section III).
COMBINATION_PRIORITY = (CLASS_XW, CLASS_OUT, CLASS_PARTIAL, CLASS_W)

#: Eviction order while an aggregation runs -- the paper's stated order:
#: W first, then XW, retaining (partial) outputs (Section IV-D).
AGGREGATION_PRIORITY = (CLASS_W, CLASS_XW, CLASS_OUT, CLASS_PARTIAL)

MERGE_MODES = ("dmb", "pe", "deferred")


def _row_line_addrs(base: int, rows: np.ndarray, lpr: int) -> np.ndarray:
    """Line addresses of dense rows ``rows`` (``lpr`` lines each), in
    the row-major order the scalar kernels visit them (row by row, line
    within row ascending)."""
    starts = base + rows.astype(np.int64) * lpr
    if lpr == 1:
        return starts
    return (starts[:, None] + np.arange(lpr, dtype=np.int64)).reshape(-1)


@dataclass
class KernelContext:
    """Everything a kernel needs: hardware models plus the layer index."""

    config: HyMMConfig
    engine: AccessExecuteEngine
    buffer: Union[DenseMatrixBuffer, SplitBufferPair]
    amap: AddressMap
    pe: PEArray
    smq: SparseMatrixQueue
    layer: int = 0


# ----------------------------------------------------------------------
# Combination kernels (XW = X @ W)
# ----------------------------------------------------------------------
def combination_rwp(
    ctx: KernelContext, features: CSRMatrix, weights: np.ndarray
) -> np.ndarray:
    """Row-wise-product combination over a sparse feature matrix."""
    h = weights.shape[1]
    lpr = ctx.config.lines_per_row(h)
    # Extra PE passes per non-zero when the array is narrower than the row.
    extra = max(0, ctx.config.compute_passes(h) - lpr)
    n = features.shape[0]
    xw = np.zeros((n, h), dtype=VALUE_DTYPE)
    ctx.buffer.evict_priority = COMBINATION_PRIORITY

    engine = ctx.engine
    stream, mac_local = engine.stream, engine.mac_local
    mac_load_batch, store_batch = engine.mac_load_batch, engine.store_batch
    w_base = ctx.amap.w_addr(ctx.layer, 0, h)
    xw_base = ctx.amap.xw_addr(ctx.layer, 0, h)
    weights32 = weights.astype(VALUE_DTYPE, copy=False)
    line_offsets = np.arange(lpr, dtype=np.int64)

    for entry in ctx.smq.iter_csr(features):
        stream(entry.stream_bytes, "X")
        idx = entry.indices
        mac_load_batch(_row_line_addrs(w_base, idx, lpr), CLASS_W, "W")
        if extra:
            mac_local(extra * idx.size)
        xw[entry.pointer] = ctx.pe.rwp_row(entry.values, weights32[idx])
        store_batch(xw_base + entry.pointer * lpr + line_offsets, CLASS_XW, "XW")
    return xw


def combination_dense(
    ctx: KernelContext, dense_in: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Combination for dense layer inputs (H from the previous layer).

    The input row is fetched once (it lives at the previous layer's
    output addresses), then each of its elements drives one vector MAC
    against the matching weight row.
    """
    n, width_in = dense_in.shape
    h = weights.shape[1]
    lpr_out = ctx.config.lines_per_row(h)
    extra = max(0, ctx.config.compute_passes(h) - lpr_out)
    lpr_in = ctx.config.lines_per_row(width_in)
    ctx.buffer.evict_priority = COMBINATION_PRIORITY

    engine = ctx.engine
    load_batch, store_batch = engine.load_batch, engine.store_batch
    mac_load_batch = engine.mac_load_batch
    in_base = ctx.amap.out_addr(ctx.layer - 1, 0, width_in)
    w_base = ctx.amap.w_addr(ctx.layer, 0, h)
    xw_base = ctx.amap.xw_addr(ctx.layer, 0, h)
    in_offsets = np.arange(lpr_in, dtype=np.int64)
    out_offsets = np.arange(lpr_out, dtype=np.int64)
    # Every row touches every weight line, in the same ascending order.
    w_addrs = w_base + np.arange(width_in * lpr_out, dtype=np.int64)

    xw = (
        dense_in.astype(VALUE_DTYPE) @ weights.astype(VALUE_DTYPE)
    ).astype(VALUE_DTYPE)
    for i in range(n):
        load_batch(in_base + i * lpr_in + in_offsets, CLASS_XW, "H")
        mac_load_batch(w_addrs, CLASS_W, "W")
        if extra:
            engine.mac_local(extra * width_in)
        store_batch(xw_base + i * lpr_out + out_offsets, CLASS_XW, "XW")
    return xw


def combination_op(
    ctx: KernelContext,
    features_csc: CSCMatrix,
    weights: np.ndarray,
    merge_mode: str = "pe",
) -> np.ndarray:
    """Outer-product combination (the GCNAX-style schedule).

    Walks feature *columns*: weight row ``W[f]`` is loaded once and held
    stationary while the column's non-zeros scatter partial products
    into XW rows, merged per ``merge_mode``.
    """
    _check_merge_mode(merge_mode)
    h = weights.shape[1]
    lpr = ctx.config.lines_per_row(h)
    passes = ctx.config.compute_passes(h)
    n = features_csc.shape[0]
    xw = np.zeros((n, h), dtype=np.float64)
    ctx.buffer.evict_priority = COMBINATION_PRIORITY

    engine = ctx.engine
    w_base = ctx.amap.w_addr(ctx.layer, 0, h)
    xw_base = ctx.amap.xw_addr(ctx.layer, 0, h)
    weights32 = weights.astype(VALUE_DTYPE, copy=False)
    # One dtype conversion per kernel invocation, sliced per entry.
    weights64 = weights32.astype(np.float64)
    values64 = features_csc.values.astype(np.float64)
    deferred = _DeferredPartials(ctx) if merge_mode == "deferred" else None
    touched = set()
    line_offsets = np.arange(lpr, dtype=np.int64)

    for entry in ctx.smq.iter_csc(features_csc):
        engine.stream(entry.stream_bytes, "X")
        f = entry.pointer
        # Weight rows arrive in ascending-f order: sequential stream.
        engine.mac_stream_load_batch(
            w_base + f * lpr + line_offsets, CLASS_W, "W"
        )
        count = entry.indices.size * max(lpr, passes)
        if count > lpr:
            engine.mac_local(count - lpr)
        _merge_partials(
            ctx, entry.indices, xw_base, lpr, merge_mode, deferred, touched
        )
        xw[entry.indices] += (
            values64[entry.lo:entry.hi][:, None] * weights64[f][None, :]
        )

    if merge_mode == "deferred":
        deferred.finalize(len(touched) * lpr, tag="XW")
    else:
        # Resident partial XW lines become ordinary XW data for the
        # aggregation that follows; spilled ones already live in DRAM.
        ctx.buffer.reclassify(CLASS_PARTIAL, CLASS_XW, engine.issue_t)
        ctx.buffer.drop_spilled_partials()
    return xw.astype(VALUE_DTYPE)


# ----------------------------------------------------------------------
# Aggregation kernels (AXW = A_hat @ XW)
# ----------------------------------------------------------------------
def aggregation_rwp(
    ctx: KernelContext,
    adj_csr: CSRMatrix,
    xw: np.ndarray,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    extra_pointers: int = 1,
) -> np.ndarray:
    """Row-wise-product aggregation (GROW; HyMM's regions 2 and 3).

    Output rows finish one at a time (output-stationary in the PEs) and
    stream to DRAM write-through -- they are not reused this phase, so
    they take no buffer space (the dynamic-allocation argument of
    Section III).
    """
    h = xw.shape[1]
    lpr = ctx.config.lines_per_row(h)
    extra = max(0, ctx.config.compute_passes(h) - lpr)
    if out is None:
        out = np.zeros((adj_csr.shape[0] + row_offset, h), dtype=VALUE_DTYPE)
    ctx.buffer.evict_priority = AGGREGATION_PRIORITY

    engine = ctx.engine
    stream = engine.stream
    mac_load_batch, store_batch = engine.mac_load_batch, engine.store_batch
    xw_base = ctx.amap.xw_addr(ctx.layer, 0, h)
    out_base = ctx.amap.out_addr(ctx.layer, 0, h)
    line_offsets = np.arange(lpr, dtype=np.int64)

    for entry in ctx.smq.iter_csr(adj_csr, extra_pointers):
        stream(entry.stream_bytes, "A")
        idx = entry.indices
        mac_load_batch(_row_line_addrs(xw_base, idx, lpr), CLASS_XW, "XW")
        if extra:
            engine.mac_local(extra * idx.size)
        i = entry.pointer + row_offset
        out[i] = ctx.pe.rwp_row(entry.values, xw[idx])
        store_batch(
            out_base + i * lpr + line_offsets, CLASS_OUT, "AXW", allocate=False
        )
    return out


def aggregation_op(
    ctx: KernelContext,
    adj_csc: CSCMatrix,
    xw: np.ndarray,
    out: Optional[np.ndarray] = None,
    row_offset: int = 0,
    merge_mode: str = "dmb",
    extra_pointers: int = 1,
    finalize: bool = True,
    accum: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Outer-product aggregation.

    The dense row of each sparse column is loaded once and held
    stationary; each non-zero emits one partial output toward the row it
    names.  Merge behaviour:

    * ``"dmb"`` -- HyMM: the DMB-side accumulator merges same-index
      partials in place; the PE array never stalls on outputs.
    * ``"pe"`` -- GCNAX-proxy: merging is a read-modify-write through
      the PE array (first touch write-allocates without a fetch).
    * ``"deferred"`` -- OuterSpace-style: partials append until the
      buffer overflows to DRAM, then a separate merge pass combines
      them (charged as a sequential re-read plus one adder op per
      partial).

    ``finalize=False`` leaves resident partials in the buffer (HyMM
    flushes per region-1 tile instead).  ``accum`` optionally provides a
    float64 accumulation surface when the caller splits one logical
    output across multiple kernel invocations.
    """
    _check_merge_mode(merge_mode)
    h = xw.shape[1]
    lpr = ctx.config.lines_per_row(h)
    passes = ctx.config.compute_passes(h)
    if out is None:
        out = np.zeros((adj_csc.shape[0] + row_offset, h), dtype=VALUE_DTYPE)
    ctx.buffer.evict_priority = AGGREGATION_PRIORITY

    engine = ctx.engine
    xw_base = ctx.amap.xw_addr(ctx.layer, 0, h)
    out_base = ctx.amap.out_addr(ctx.layer, 0, h)
    deferred = _DeferredPartials(ctx) if merge_mode == "deferred" else None
    touched = set()
    local = accum if accum is not None else np.zeros(out.shape, dtype=np.float64)
    # One dtype conversion per kernel invocation, sliced per entry.
    values64 = adj_csc.values.astype(np.float64)
    xw64 = xw.astype(np.float64)
    line_offsets = np.arange(lpr, dtype=np.int64)

    for entry in ctx.smq.iter_csc(adj_csc, extra_pointers):
        engine.stream(entry.stream_bytes, "A")
        j = entry.pointer
        # XW rows arrive in ascending-column order: the OP engine's
        # defining sequential input stream (Section III).
        engine.mac_stream_load_batch(
            xw_base + j * lpr + line_offsets, CLASS_XW, "XW"
        )
        count = entry.indices.size * max(lpr, passes)
        if count > lpr:
            engine.mac_local(count - lpr)
        rows = entry.indices + row_offset
        _merge_partials(ctx, rows, out_base, lpr, merge_mode, deferred, touched)
        np.add.at(
            local,
            rows,
            values64[entry.lo:entry.hi][:, None] * xw64[j][None, :],
        )

    if merge_mode == "deferred":
        deferred.finalize(len(touched) * lpr, tag="AXW")
    elif finalize:
        finalize_op_partials(ctx)
    if accum is None:
        out += local.astype(VALUE_DTYPE)
    return out


def finalize_op_partials(ctx: KernelContext) -> None:
    """Write resident partial lines back as final outputs and forget
    spill bookkeeping (any spilled line's DRAM copy is already the
    latest value, because re-touches re-fetch and re-merge)."""
    engine = ctx.engine
    end = ctx.buffer.flush(engine.write_t, cls=CLASS_PARTIAL, tag="AXW")
    ctx.buffer.drop_spilled_partials()
    if end > engine.write_t:
        engine.write_t = end


def aggregation_hybrid(
    ctx: KernelContext,
    plan: RegionPlan,
    low_rows_csr: CSRMatrix,
    xw: np.ndarray,
) -> np.ndarray:
    """HyMM's hybrid aggregation over a degree-sorted graph.

    Region-1 tiles (high-degree output rows) run the OP engine with the
    near-memory accumulator (or PE-side merging when the accumulator is
    ablated); each tile's output band fits the DMB by construction, so
    partials are flushed once per tile.  The remaining rows run the RWP
    engine, where the XW rows of the high-degree columns stay hot in
    the buffer.  ``op_first`` (Section III) picks the phase order.
    """
    h = xw.shape[1]
    n = plan.tiled.shape[0]
    out = np.zeros((n, h), dtype=VALUE_DTYPE)
    threshold = plan.threshold
    merge_mode = "dmb" if ctx.config.near_memory_accumulator else "pe"
    # Rows >= threshold span one pointer array per region-2 column band
    # plus region 3's.
    extra_ptrs = max(1, plan.n_region2_tiles + 1)
    tracer = ctx.engine.tracer

    def run_op_tiles() -> None:
        for tile in plan.tiled.tiles_in_region(1):
            t0 = ctx.engine.drain()
            aggregation_op(
                ctx,
                tile.matrix,
                xw,
                out=out,
                row_offset=tile.row_lo,
                merge_mode=merge_mode,
                finalize=True,
            )
            if tracer.enabled:
                tracer.span(
                    "region1.op-tile", t0, ctx.engine.drain(), "region",
                    {
                        "row_lo": int(tile.row_lo),
                        "rows": int(tile.matrix.shape[0]),
                    },
                )

    def run_rwp_rows() -> None:
        if low_rows_csr.shape[0]:
            t0 = ctx.engine.drain()
            aggregation_rwp(
                ctx,
                low_rows_csr,
                xw,
                out=out,
                row_offset=threshold,
                extra_pointers=extra_ptrs,
            )
            if tracer.enabled:
                tracer.span(
                    "region23.rwp-rows", t0, ctx.engine.drain(), "region",
                    {"rows": int(low_rows_csr.shape[0])},
                )

    if ctx.config.op_first:
        run_op_tiles()
        run_rwp_rows()
    else:
        run_rwp_rows()
        run_op_tiles()
    return out


# ----------------------------------------------------------------------
# Partial-output plumbing
# ----------------------------------------------------------------------
def _check_merge_mode(mode: str) -> None:
    if mode not in MERGE_MODES:
        raise ValueError(f"merge_mode must be one of {MERGE_MODES}, got {mode!r}")


def _merge_partials(
    ctx: KernelContext,
    rows: np.ndarray,
    out_base: int,
    lpr: int,
    merge_mode: str,
    deferred: "Optional[_DeferredPartials]",
    touched: Set[int],
) -> None:
    """Route one column's partial outputs to the configured merge path."""
    engine = ctx.engine
    if merge_mode == "deferred":
        deferred.emit(rows.size * lpr)
        touched.update(rows.tolist())
        return
    addrs = _row_line_addrs(out_base, rows, lpr)
    if merge_mode == "dmb":
        engine.accumulate_store_batch(addrs, "partial")
        return
    # "pe": read-modify-write through the PE array; the first touch of a
    # line is a plain write-allocate (there is nothing to read yet).
    # The engine mirrors the accumulator's footprint-peak tracking.
    engine.merge_rmw_batch(addrs, CLASS_PARTIAL, "partial", touched, track_peak=True)


class _DeferredPartials:
    """Append-only partial-output pool for the no-accumulator mode.

    Partials occupy buffer lines until the pool exceeds the DMB's
    capacity, after which the overflow streams to DRAM.  ``finalize``
    models the separate merge pass: spilled partials are re-read
    sequentially, every partial costs one adder cycle, and the merged
    rows are written out.
    """

    def __init__(self, ctx: KernelContext) -> None:
        self.ctx = ctx
        self.capacity = ctx.config.capacity_lines
        self.line_bytes = ctx.config.line_bytes
        self.emitted = 0
        self.resident = 0
        self.spilled = 0

    def emit(self, n: int) -> None:
        stats = self.ctx.engine.stats
        stats.partials_produced += n
        self.emitted += n
        self.resident += n
        if self.resident > self.capacity:
            overflow = self.resident - self.capacity
            nbytes = overflow * self.line_bytes
            self.ctx.engine.dram.write(self.ctx.engine.issue_t, nbytes, "partial")
            stats.partial_spill_bytes += nbytes
            self.spilled += overflow
            self.resident = self.capacity
        footprint = (self.resident + self.spilled) * self.line_bytes
        if footprint > stats.partial_peak_bytes:
            stats.partial_peak_bytes = footprint
        stats.sample_partial_footprint(footprint)

    def finalize(self, n_out_rows: int, tag: str) -> None:
        engine = self.ctx.engine
        if self.spilled:
            end = engine.dram.stream_read(
                engine.issue_t, self.spilled * self.line_bytes, "partial"
            )
            engine.wait_until(end)
        if self.emitted:
            engine.alu_op(self.emitted)
        if n_out_rows:
            engine.dram.write(engine.issue_t, n_out_rows * self.line_bytes, tag)
        self.resident = 0
