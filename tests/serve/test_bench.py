"""Hit-path benchmark: measurement, trajectory append, CLI wiring."""

import json

import pytest

from repro.serve.bench import (
    TRAJECTORY_SCHEMA,
    attach_vs_previous,
    bench_hitpath_main,
    load_trajectory,
    previous_matching,
    run_bench,
)


class TestTrajectory:
    def test_load_missing_file_is_empty(self, tmp_path):
        doc = load_trajectory(tmp_path / "BENCH_serve.json")
        assert doc == {"schema": TRAJECTORY_SCHEMA, "runs": []}

    def test_load_rejects_foreign_shape(self, tmp_path):
        path = tmp_path / "BENCH_serve.json"
        path.write_text('{"something": "else"}')
        with pytest.raises(ValueError, match="trajectory"):
            load_trajectory(path)

    def test_previous_matching_respects_signature(self):
        workload = {
            "dataset": "cora", "kind": "hymm", "scale": 0.1,
            "n_layers": 1, "seed": 0, "requests": 10,
        }
        runs = [
            {"sha": "aaa", "workload": dict(workload)},
            {"sha": "bbb", "workload": dict(workload, requests=99)},
        ]
        assert previous_matching(runs, workload)["sha"] == "aaa"
        assert previous_matching([], workload) is None

    def test_attach_vs_previous_p50_ratio(self):
        run = {"results": {"client_ms": {"p50": 2.0}}}
        prev = {
            "sha": "aaa", "date": "2026-01-01",
            "results": {"client_ms": {"p50": 4.0}},
        }
        attach_vs_previous(run, prev)
        assert run["vs_previous"]["p50_speedup"] == 2.0
        assert run["vs_previous"]["sha"] == "aaa"


class TestRunBench:
    @pytest.fixture(scope="class")
    def entry(self, tmp_path_factory):
        cache_dir = tmp_path_factory.mktemp("serve-bench-cache")
        return run_bench(
            dataset="cora", kind="rwp", scale=0.05, requests=20,
            cache_dir=str(cache_dir),
        )

    def test_entry_shape(self, entry):
        assert entry["served_by"] == "self-hosted"
        assert entry["workload"]["dataset"] == "cora"
        assert entry["workload"]["requests"] == 20
        assert entry["results"]["prime_source"] == "executed"
        assert entry["results"]["requests_per_second"] > 0

    def test_client_latency_percentiles_present(self, entry):
        client_ms = entry["results"]["client_ms"]
        for key in ("p50", "p90", "p99", "max", "mean"):
            assert key in client_ms
            assert client_ms[key] > 0
        assert client_ms["p50"] <= client_ms["max"]

    def test_server_side_hitpath_recorded(self, entry):
        hitpath = entry["results"]["server_hitpath_ms"]
        assert hitpath["count"] == 20
        assert entry["results"]["cache"]["hits"] == 20

    def test_hit_path_meets_latency_target(self, entry):
        # Acceptance: served-lookup p50 under 5ms on the cora workload.
        assert entry["results"]["client_ms"]["p50"] < 5.0


class TestBenchMain:
    def test_appends_and_compares(self, tmp_path, capsys):
        output = tmp_path / "BENCH_serve.json"
        kwargs = dict(
            dataset="cora", kind="rwp", scale=0.05, n_layers=1, seed=0,
            requests=5, host=None, port=None, output=output,
        )
        first = bench_hitpath_main(**kwargs)
        assert "vs_previous" not in first
        doc = json.loads(output.read_text())
        assert doc["schema"] == TRAJECTORY_SCHEMA
        assert len(doc["runs"]) == 1
        second = bench_hitpath_main(**kwargs)
        assert second["vs_previous"]["sha"] == first["sha"]
        doc = json.loads(output.read_text())
        assert len(doc["runs"]) == 2
        out = capsys.readouterr().out
        assert "hit path" in out
        assert "appended run" in out

    def test_dry_run_writes_nothing(self, tmp_path):
        output = tmp_path / "BENCH_serve.json"
        bench_hitpath_main(
            dataset="cora", kind="rwp", scale=0.05, n_layers=1, seed=0,
            requests=3, host=None, port=None, output=output, dry_run=True,
        )
        assert not output.exists()
