"""Golden ``SimStats`` snapshots for every accelerator.

One small seeded dataset runs through HyMM and every baseline; the full
stats dict of each is compared -- exactly, field by field -- against a
checked-in JSON snapshot.  The simulator is deterministic, so *any*
drift in cycle counts, traffic bytes, or hit rates is a behaviour
change that must be either a bug or an intentional model change.

Intentional changes regenerate the snapshot::

    REPRO_UPDATE_GOLDEN=1 python -m pytest tests/integration/test_golden_stats.py

and the diff of ``golden_stats.json`` becomes part of the review.

Both engine implementations are checked against the *same* snapshot:
the batched fast path (the default) and the scalar reference must not
only agree with each other -- they must agree with history.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.bench.runner import ALL_ACCELERATORS
from repro.gcn.model import GCNModel
from repro.graphs import load_dataset
from repro.runtime.execute import make_accelerator

GOLDEN_PATH = Path(__file__).parent / "golden_stats.json"
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN", "") not in ("", "0")

ENGINES = ("batched", "scalar")


@pytest.fixture(scope="module")
def model():
    return GCNModel(load_dataset("cora", scale=0.1, seed=1), n_layers=2, seed=2)


def run_stats(kind: str, engine: str, model) -> dict:
    acc = make_accelerator(kind)
    acc.config = acc.config.with_overrides(engine=engine)
    return acc.run_inference(model).stats.to_dict()


@pytest.fixture(scope="module")
def golden(model):
    if UPDATE:
        snapshot = {
            kind: run_stats(kind, "batched", model) for kind in ALL_ACCELERATORS
        }
        GOLDEN_PATH.write_text(
            json.dumps(snapshot, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
    if not GOLDEN_PATH.is_file():
        pytest.fail(
            f"golden snapshot {GOLDEN_PATH} missing; regenerate with "
            f"REPRO_UPDATE_GOLDEN=1"
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_snapshot_covers_every_accelerator(golden):
    assert sorted(golden) == sorted(ALL_ACCELERATORS)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("kind", ALL_ACCELERATORS)
def test_stats_match_golden(kind, engine, model, golden):
    stats = run_stats(kind, engine, model)
    expected = golden[kind]
    assert sorted(stats) == sorted(expected), (
        f"{kind}/{engine}: stats schema drifted"
    )
    mismatched = {
        key: (stats[key], expected[key])
        for key in expected
        if stats[key] != expected[key]
    }
    assert not mismatched, (
        f"{kind}/{engine} drifted from golden snapshot "
        f"(REPRO_UPDATE_GOLDEN=1 regenerates if intentional): {mismatched}"
    )
