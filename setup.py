"""Legacy shim so `pip install -e .` works on environments without the
`wheel` package (pure-setuptools editable install)."""
from setuptools import setup

setup()
