"""Compressed sparse column (CSC) matrix.

CSC is the format HyMM's outer-product (OP) dataflow consumes (paper
Table I: "CSC (region 1)").  Each column's pointer tells the SMQ which
dense-matrix row to stream; the indices name the output rows whose
partial sums the column updates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.sparse.coo import COOMatrix, INDEX_BYTES, INDEX_DTYPE, VALUE_BYTES, VALUE_DTYPE


@dataclass
class CSCMatrix:
    """Compressed sparse column storage.

    ``indptr`` has ``shape[1] + 1`` entries; column ``j`` owns the slice
    ``indices[indptr[j]:indptr[j+1]]`` / ``values[...]`` with row indices
    sorted ascending within each column.
    """

    shape: tuple
    indptr: np.ndarray
    indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.shape = (int(self.shape[0]), int(self.shape[1]))
        self.indptr = np.asarray(self.indptr, dtype=INDEX_DTYPE)
        self.indices = np.asarray(self.indices, dtype=INDEX_DTYPE)
        self.values = np.asarray(self.values, dtype=VALUE_DTYPE)
        self._validate()

    def _validate(self) -> None:
        n_rows, n_cols = self.shape
        if self.indptr.size != n_cols + 1:
            raise ValueError(
                f"indptr must have {n_cols + 1} entries, got {self.indptr.size}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != self.indices.size:
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if self.indices.size != self.values.size:
            raise ValueError("indices and values must have equal length")
        if self.indices.size and (self.indices.min() < 0 or self.indices.max() >= n_rows):
            raise ValueError("row index out of bounds")

    @property
    def nnz(self) -> int:
        """Number of stored non-zero entries."""
        return int(self.values.size)

    def col(self, j: int) -> "Tuple[np.ndarray, np.ndarray]":
        """Return ``(row_indices, values)`` views of column ``j``."""
        lo, hi = self.indptr[j], self.indptr[j + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def col_nnz(self, j: int) -> int:
        """Non-zero count of column ``j``."""
        return int(self.indptr[j + 1] - self.indptr[j])

    def col_degrees(self) -> np.ndarray:
        """Per-column non-zero counts (the in-degree vector for an adjacency matrix)."""
        return np.diff(self.indptr)

    def iter_cols(self) -> "Iterator[Tuple[int, np.ndarray, np.ndarray]]":
        """Yield ``(col, row_indices, values)`` for every non-empty column."""
        for j in range(self.shape[1]):
            lo, hi = self.indptr[j], self.indptr[j + 1]
            if hi > lo:
                yield j, self.indices[lo:hi], self.values[lo:hi]

    def storage_bytes(self, pointer_bytes: int = INDEX_BYTES) -> int:
        """Bytes for the compressed stream: pointers + indices + values."""
        return (
            self.indptr.size * pointer_bytes
            + self.nnz * INDEX_BYTES
            + self.nnz * VALUE_BYTES
        )

    def to_coo(self) -> COOMatrix:
        """Expand back to canonical COO triplets."""
        cols = np.repeat(
            np.arange(self.shape[1], dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        return COOMatrix(self.shape, self.indices.copy(), cols, self.values.copy())

    def to_dense(self) -> np.ndarray:
        """Materialise as dense ``float32`` (tests / small matrices only)."""
        out = np.zeros(self.shape, dtype=VALUE_DTYPE)
        cols = np.repeat(
            np.arange(self.shape[1], dtype=INDEX_DTYPE), np.diff(self.indptr)
        )
        out[self.indices, cols] = self.values
        return out

    @classmethod
    def from_coo(cls, coo: COOMatrix) -> "CSCMatrix":
        """Compress canonical COO triplets, re-sorting to column-major order."""
        order = np.lexsort((coo.rows, coo.cols))
        rows = coo.rows[order]
        cols = coo.cols[order]
        values = coo.values[order]
        indptr = np.zeros(coo.shape[1] + 1, dtype=INDEX_DTYPE)
        np.add.at(indptr, cols + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(coo.shape, indptr, rows, values)

    def __repr__(self) -> str:
        return f"CSCMatrix(shape={self.shape}, nnz={self.nnz})"
