#!/usr/bin/env python3
"""Design-space exploration: buffer size, tiling threshold, PE count.

Sweeps the key hardware parameters of Section IV around the paper's
design point, pairing each configuration's simulated performance with
its silicon cost from the Table III area model -- the trade-off a
designer adopting HyMM would actually study.

Run:  python examples/design_space_exploration.py
"""

from repro import AreaModel, GCNModel, HyMMAccelerator, HyMMConfig, load_dataset
from repro.bench import format_table


def run(model, config):
    return HyMMAccelerator(config).run_inference(model)


def main() -> None:
    model = GCNModel(
        load_dataset("amazon-photo", scale=0.15, seed=5, feature_length=128),
        n_layers=1,
        seed=6,
    )
    print(f"Workload: {model.dataset}\n")

    print("DMB capacity sweep (performance vs area):")
    rows = []
    for kb in (16, 32, 64, 128, 256):
        cfg = HyMMConfig(dmb_bytes=kb * 1024)
        result = run(model, cfg)
        rows.append([
            f"{kb} KB",
            result.stats.cycles,
            result.stats.dram_total_bytes() / 1024,
            AreaModel(cfg).total_mm2("7nm"),
        ])
    print(format_table(["DMB", "cycles", "DRAM KB", "area mm^2"], rows))

    print("\nTiling-threshold sweep (Section IV-E fixes 20%):")
    rows = []
    for frac in (0.05, 0.1, 0.2, 0.4, 0.8):
        cfg = HyMMConfig(dmb_bytes=32 * 1024, threshold_fraction=frac)
        result = run(model, cfg)
        rows.append([
            f"{int(frac * 100)}%",
            result.stats.cycles,
            result.stats.hit_rate(),
        ])
    print(format_table(["threshold", "cycles", "hit rate"], rows))

    print("\nPE-array width sweep (Table III uses 16 MACs):")
    rows = []
    for pes in (8, 16, 32):
        cfg = HyMMConfig(n_pes=pes)
        result = run(model, cfg)
        rows.append([
            pes,
            result.stats.cycles,
            AreaModel(cfg).report("7nm").components["PE Array"],
        ])
    print(format_table(["PEs", "cycles", "PE area mm^2"], rows))


if __name__ == "__main__":
    main()
