"""Sparse matrix queue (SMQ) -- paper Section IV-A.

The SMQ fetches the compressed sparse operand (pointers, then indices
and values) from off-chip memory into small on-chip stream buffers and
feeds entries to the LSQ/PE pipeline.  Both CSR and CSC share the
pointer+index structure, so one queue handles both; a per-entry flag
says which format (and therefore which dataflow) the entry belongs to.

In the simulator the SMQ's two roles are:

* **traffic accounting** -- every pointer, index and value byte of the
  sparse operand is charged to the DRAM stream (tag ``"A"`` or ``"X"``);
* **latency hiding** -- the stream buffers give the frontend slack
  (see ``smq_buffer_bytes`` in
  :class:`repro.sim.engine.AccessExecuteEngine`), so sequential operand
  fetch only throttles compute when bandwidth itself saturates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.sparse import CSCMatrix, CSRMatrix
from repro.sparse.coo import INDEX_BYTES, VALUE_BYTES

FLAG_CSR = 0
FLAG_CSC = 1


def csr_row_stream_bytes(nnz: int, extra_pointers: int = 1) -> int:
    """Stream bytes one CSR row costs: its pointer(s) plus nnz (index,
    value) pairs.  ``extra_pointers`` accounts for rows that span
    multiple storage tiles (each tile carries its own row pointer)."""
    return extra_pointers * INDEX_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)


def csc_col_stream_bytes(nnz: int, extra_pointers: int = 1) -> int:
    """Stream bytes one CSC column costs (same structure as CSR rows)."""
    return extra_pointers * INDEX_BYTES + nnz * (INDEX_BYTES + VALUE_BYTES)


@dataclass(frozen=True)
class SMQEntry:
    """One group of SMQ entries handed to the pipeline.

    For CSR (flag ``FLAG_CSR``) this is one sparse *row*: ``pointer`` is
    the output row the results accumulate into, ``indices`` name the
    dense rows to load.  For CSC (``FLAG_CSC``) it is one sparse
    *column*: ``pointer`` names the dense row to load, ``indices`` name
    the output rows the partial products scatter to (Section IV-A).
    """

    flag: int
    pointer: int
    indices: np.ndarray
    values: np.ndarray
    stream_bytes: int
    #: Span of this entry in the operand's ``values`` array
    #: (``values is matrix.values[lo:hi]``).  Kernels convert the whole
    #: operand's values to float64 once and slice per entry with these,
    #: instead of calling ``astype`` on every entry.
    lo: int = 0
    hi: int = 0


class SparseMatrixQueue:
    """Iterate a compressed matrix as the SMQ would deliver it."""

    def __init__(self, pointer_buffer_bytes: int = 4 * 1024,
                 index_buffer_bytes: int = 12 * 1024):
        if pointer_buffer_bytes <= 0 or index_buffer_bytes <= 0:
            raise ValueError("SMQ buffer sizes must be positive")
        self.pointer_buffer_bytes = pointer_buffer_bytes
        self.index_buffer_bytes = index_buffer_bytes

    @property
    def buffer_bytes(self) -> int:
        """Total stream-buffer capacity (frontend slack for the engine)."""
        return self.pointer_buffer_bytes + self.index_buffer_bytes

    def iter_csr(
        self, matrix: CSRMatrix, extra_pointers: int = 1
    ) -> Iterator[SMQEntry]:
        """Yield non-empty rows of a CSR operand, with byte costs."""
        indptr = matrix.indptr
        indices = matrix.indices
        values = matrix.values
        for row in range(matrix.shape[0]):
            lo = int(indptr[row])
            hi = int(indptr[row + 1])
            if hi > lo:
                yield SMQEntry(
                    FLAG_CSR,
                    row,
                    indices[lo:hi],
                    values[lo:hi],
                    csr_row_stream_bytes(hi - lo, extra_pointers),
                    lo,
                    hi,
                )

    def iter_csc(
        self, matrix: CSCMatrix, extra_pointers: int = 1
    ) -> Iterator[SMQEntry]:
        """Yield non-empty columns of a CSC operand, with byte costs."""
        indptr = matrix.indptr
        indices = matrix.indices
        values = matrix.values
        for col in range(matrix.shape[1]):
            lo = int(indptr[col])
            hi = int(indptr[col + 1])
            if hi > lo:
                yield SMQEntry(
                    FLAG_CSC,
                    col,
                    indices[lo:hi],
                    values[lo:hi],
                    csc_col_stream_bytes(hi - lo, extra_pointers),
                    lo,
                    hi,
                )

    @staticmethod
    def pointer_stream_bytes(matrix) -> int:
        """Bytes of the pointer array fetched at operand start."""
        return int(matrix.indptr.size) * INDEX_BYTES
