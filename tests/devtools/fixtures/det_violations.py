"""Fixture: every determinism hazard, at known line numbers.

Parsed (never imported) by the analyzer tests; loaded under a module
name inside the rule's scope.  Line numbers are asserted exactly --
keep edits append-only or fix the test.
"""
import random
import time
from datetime import datetime

import numpy as np


def bad_wall_clock():
    started = time.time()              # line 15: wall-clock read
    stamp = datetime.now()             # line 16: wall-clock read
    return started, stamp


def bad_global_rng():
    a = random.random()                # line 21: process-global RNG
    b = np.random.rand(4)              # line 22: legacy global RNG
    np.random.seed(7)                  # line 23: legacy global RNG
    return a, b


def bad_generators():
    g1 = np.random.default_rng()       # line 28: unseeded
    g2 = np.random.default_rng(0xBEEF)  # line 29: literal seed
    g3 = random.Random()               # line 30: unseeded
    return g1, g2, g3


def fine(seed):
    elapsed = time.perf_counter()      # allowed: duration, not wall clock
    rng = np.random.default_rng(seed)  # allowed: seed flows in
    return elapsed, rng


def suppressed():
    return time.time()  # analyzer: allow[determinism] -- fixture suppression
