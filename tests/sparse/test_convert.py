"""Conversion round-trips, including property-based checks against SciPy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    COOMatrix,
    coo_to_csc,
    coo_to_csr,
    csc_to_coo,
    csc_to_csr,
    csr_to_coo,
    csr_to_csc,
    dense_to_coo,
    dense_to_csc,
    dense_to_csr,
)

scipy_sparse = pytest.importorskip("scipy.sparse")


@st.composite
def random_coo(draw):
    """A random small sparse matrix as canonical COO."""
    n_rows = draw(st.integers(1, 12))
    n_cols = draw(st.integers(1, 12))
    nnz = draw(st.integers(0, n_rows * n_cols))
    idx = draw(
        st.lists(
            st.tuples(st.integers(0, n_rows - 1), st.integers(0, n_cols - 1)),
            min_size=nnz,
            max_size=nnz,
        )
    )
    rows = np.array([i for i, _ in idx], dtype=np.int64)
    cols = np.array([j for _, j in idx], dtype=np.int64)
    values = np.arange(1, len(idx) + 1, dtype=np.float32)
    return COOMatrix((n_rows, n_cols), rows, cols, values)


@settings(max_examples=40, deadline=None)
@given(random_coo())
def test_csr_roundtrip(coo):
    assert csr_to_coo(coo_to_csr(coo)).allclose(coo)


@settings(max_examples=40, deadline=None)
@given(random_coo())
def test_csc_roundtrip(coo):
    assert csc_to_coo(coo_to_csc(coo)).allclose(coo)


@settings(max_examples=40, deadline=None)
@given(random_coo())
def test_csr_to_csc_roundtrip(coo):
    csr = coo_to_csr(coo)
    back = csc_to_csr(csr_to_csc(csr))
    assert back.to_coo().allclose(coo)


@settings(max_examples=40, deadline=None)
@given(random_coo())
def test_matches_scipy_csr(coo):
    ours = coo_to_csr(coo)
    ref = scipy_sparse.coo_matrix(
        (coo.values, (coo.rows, coo.cols)), shape=coo.shape
    ).tocsr()
    ref.sort_indices()
    assert ours.indptr.tolist() == ref.indptr.tolist()
    assert ours.indices.tolist() == ref.indices.tolist()
    np.testing.assert_allclose(ours.values, ref.data, rtol=1e-6)


@settings(max_examples=40, deadline=None)
@given(random_coo())
def test_matches_scipy_csc(coo):
    ours = coo_to_csc(coo)
    ref = scipy_sparse.coo_matrix(
        (coo.values, (coo.rows, coo.cols)), shape=coo.shape
    ).tocsc()
    ref.sort_indices()
    assert ours.indptr.tolist() == ref.indptr.tolist()
    assert ours.indices.tolist() == ref.indices.tolist()
    np.testing.assert_allclose(ours.values, ref.data, rtol=1e-6)


def test_dense_to_coo(small_coo):
    assert dense_to_coo(small_coo.to_dense()).allclose(small_coo)


def test_dense_to_csr(small_coo):
    np.testing.assert_allclose(
        dense_to_csr(small_coo.to_dense()).to_dense(), small_coo.to_dense()
    )


def test_dense_to_csc(small_coo):
    np.testing.assert_allclose(
        dense_to_csc(small_coo.to_dense()).to_dense(), small_coo.to_dense()
    )


def test_empty_matrix_roundtrips():
    empty = COOMatrix.empty((4, 4))
    assert csr_to_coo(coo_to_csr(empty)).nnz == 0
    assert csc_to_coo(coo_to_csc(empty)).nnz == 0
