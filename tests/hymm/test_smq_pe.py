"""SMQ stream accounting and the PE array's functional datapaths."""

import numpy as np
import pytest

from repro.hymm import PEArray, SparseMatrixQueue, csc_col_stream_bytes, csr_row_stream_bytes
from repro.hymm.smq import FLAG_CSC, FLAG_CSR
from repro.sparse import coo_to_csc, coo_to_csr


class TestStreamBytes:
    def test_csr_row_cost(self):
        # one pointer + 3 (index, value) pairs
        assert csr_row_stream_bytes(3) == 4 + 3 * 8

    def test_extra_pointers(self):
        assert csr_row_stream_bytes(3, extra_pointers=2) == 8 + 24

    def test_csc_same_structure(self):
        assert csc_col_stream_bytes(5) == csr_row_stream_bytes(5)


class TestSMQ:
    @pytest.fixture
    def smq(self):
        return SparseMatrixQueue()

    def test_buffer_bytes(self, smq):
        assert smq.buffer_bytes == 16 * 1024

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            SparseMatrixQueue(pointer_buffer_bytes=0)

    def test_iter_csr_entries(self, smq, small_coo):
        entries = list(smq.iter_csr(coo_to_csr(small_coo)))
        assert [e.pointer for e in entries] == [0, 1, 2]  # row 3 empty
        assert all(e.flag == FLAG_CSR for e in entries)

    def test_iter_csr_bytes(self, smq, small_coo):
        entries = list(smq.iter_csr(coo_to_csr(small_coo)))
        total = sum(e.stream_bytes for e in entries)
        # 6 nz x 8 bytes + 3 non-empty rows x 4 pointer bytes
        assert total == 6 * 8 + 3 * 4

    def test_iter_csc_entries(self, smq, small_coo):
        entries = list(smq.iter_csc(coo_to_csc(small_coo)))
        assert [e.pointer for e in entries] == [0, 1, 2, 3, 4]
        assert all(e.flag == FLAG_CSC for e in entries)

    def test_entries_carry_values(self, smq, small_coo):
        entry = next(iter(smq.iter_csr(coo_to_csr(small_coo))))
        np.testing.assert_allclose(entry.values, [1.0, 2.0])
        assert entry.indices.tolist() == [0, 2]

    def test_pointer_stream_bytes(self, smq, small_coo):
        assert smq.pointer_stream_bytes(coo_to_csr(small_coo)) == 5 * 4


class TestPEArray:
    @pytest.fixture
    def pe(self):
        return PEArray(16)

    def test_vector_ops_for_width(self, pe):
        assert pe.vector_ops_for_width(16) == 1
        assert pe.vector_ops_for_width(17) == 2
        assert pe.vector_ops_for_width(8) == 1

    def test_lane_utilization(self, pe):
        assert pe.lane_utilization(16) == 1.0
        assert pe.lane_utilization(8) == 0.5

    def test_invalid_width(self, pe):
        with pytest.raises(ValueError):
            pe.vector_ops_for_width(0)

    def test_invalid_pe_count(self):
        with pytest.raises(ValueError):
            PEArray(0)

    def test_rwp_row_matches_dot(self, pe, rng):
        vals = rng.random(5, dtype=np.float32)
        dense = rng.random((5, 16), dtype=np.float32)
        np.testing.assert_allclose(
            pe.rwp_row(vals, dense), vals @ dense, rtol=1e-5
        )

    def test_rwp_empty_row(self, pe):
        out = pe.rwp_row(np.zeros(0, dtype=np.float32), np.zeros((0, 16), np.float32))
        assert out.shape == (16,)
        assert not out.any()

    def test_op_column_outer_product(self, pe, rng):
        vals = rng.random(4, dtype=np.float32)
        row = rng.random(16, dtype=np.float32)
        block = pe.op_column(vals, row)
        assert block.shape == (4, 16)
        np.testing.assert_allclose(block, np.outer(vals, row), rtol=1e-6)
