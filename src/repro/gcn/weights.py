"""Weight initialisation for GCN layers."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.sparse.coo import VALUE_DTYPE


def glorot_weights(fan_in: int, fan_out: int, seed: int = 0) -> np.ndarray:
    """Glorot/Xavier-uniform weight matrix of shape ``(fan_in, fan_out)``.

    Deterministic given the seed; dtype matches the accelerator's
    single-precision datapath (Table III).
    """
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    rng = np.random.default_rng(seed)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out)).astype(VALUE_DTYPE)


def layer_dims(
    feature_length: int, hidden_dim: int, n_layers: int = 2, n_classes: int = None
) -> List[Tuple[int, int]]:
    """Per-layer ``(fan_in, fan_out)`` for an ``n_layers``-deep GCN.

    All hidden layers use ``hidden_dim`` (Table II: 16); the final layer
    emits ``n_classes`` (defaults to ``hidden_dim``, as the paper's
    workload keeps a fixed layer dimension).
    """
    if n_layers < 1:
        raise ValueError("n_layers must be at least 1")
    out_dim = n_classes if n_classes is not None else hidden_dim
    dims: List[Tuple[int, int]] = []
    fan_in = feature_length
    for layer in range(n_layers):
        fan_out = out_dim if layer == n_layers - 1 else hidden_dim
        dims.append((fan_in, fan_out))
        fan_in = fan_out
    return dims
