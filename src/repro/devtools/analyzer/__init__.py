"""AST-based contract checker for the HyMM reproduction.

``python -m repro.devtools.analyzer src/`` parses the tree (never
imports it) and enforces the runtime's standing contracts at lint time:

=====================  ==============================================
Rule                   Contract it protects
=====================  ==============================================
``determinism``        parallel sweeps bit-identical to serial: no
                       wall-clock reads / global or unseeded RNG /
                       literal seeds in simulator packages
``wire-schema``        every dataclass crossing the process/cache
                       boundary round-trips all of its fields
``stats-conservation`` every ``SimStats`` counter has a simulator
                       write site; traffic tags stay in the declared
                       vocabulary
``config-hygiene``     every ``HyMMConfig`` field is consumed --
                       no dead ablation knobs
``mutable-state``      no shared mutable defaults in functions or
                       pool-crossing dataclasses
=====================  ==============================================

See ``docs/static-analysis.md`` for rationale, CLI usage, and how to
add a rule or baseline a finding.
"""

from repro.devtools.analyzer.baseline import Baseline
from repro.devtools.analyzer.core import (
    REGISTRY,
    Finding,
    Project,
    Rule,
    SourceModule,
    make_rules,
    register,
    run_rules,
)

# Importing the rules package registers the built-in rules.
import repro.devtools.analyzer.rules  # noqa: E402,F401  isort: skip

__all__ = [
    "Baseline",
    "Finding",
    "Project",
    "REGISTRY",
    "Rule",
    "SourceModule",
    "make_rules",
    "register",
    "run_rules",
]
