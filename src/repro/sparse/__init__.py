"""Sparse matrix substrate for the HyMM reproduction.

This package implements the compressed sparse formats the accelerator
consumes (COO, CSR, CSC), conversions between them, reference SpMM
kernels used as functional oracles, degree/sparsity statistics (the
inputs to the paper's Figure 2 analysis), and the region-tiled storage
format whose overhead the paper reports in Figure 6.

Everything is built on plain NumPy arrays -- no SciPy dependency -- so
the byte-level storage accounting used by the tiled format matches what
an accelerator would actually keep in DRAM.
"""

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.csc import CSCMatrix
from repro.sparse.convert import (
    coo_to_csr,
    coo_to_csc,
    csr_to_coo,
    csc_to_coo,
    csr_to_csc,
    csc_to_csr,
    dense_to_coo,
    dense_to_csr,
    dense_to_csc,
)
from repro.sparse.spmm import spmm_csr, spmm_csc, spmm_coo
from repro.sparse.stats import (
    DegreeStats,
    degree_stats,
    edge_share_of_top_fraction,
    gini_coefficient,
    sparsity,
)
from repro.sparse.tiled import RegionTiledMatrix, StorageReport

__all__ = [
    "COOMatrix",
    "CSRMatrix",
    "CSCMatrix",
    "coo_to_csr",
    "coo_to_csc",
    "csr_to_coo",
    "csc_to_coo",
    "csr_to_csc",
    "csc_to_csr",
    "dense_to_coo",
    "dense_to_csr",
    "dense_to_csc",
    "spmm_csr",
    "spmm_csc",
    "spmm_coo",
    "DegreeStats",
    "degree_stats",
    "edge_share_of_top_fraction",
    "gini_coefficient",
    "sparsity",
    "RegionTiledMatrix",
    "StorageReport",
]
