"""Rule ``serve-hygiene``: no blocking calls in serve's async handlers.

The sweep server promises that its event loop never blocks: every
cache probe and simulation batch crosses into a worker thread via
``asyncio.to_thread``, so a slow disk or a long-running job cannot
stall the connection handlers, the single-flight table, or the
``/status`` follower streams.  One stray ``time.sleep`` or synchronous
file read inside an ``async def`` silently freezes every connected
client for its duration -- the kind of bug that only shows up under
load.

This rule enforces the contract statically: inside any ``async def``
in scope (``repro.serve`` by default), calls to a blocklist of known
blocking operations are findings:

* ``time.sleep`` (use ``asyncio.sleep``);
* anything rooted at ``subprocess`` (use a worker thread);
* synchronous file I/O: builtin ``open``, ``json.load`` / ``json.dump``
  (the file-object forms; ``loads`` / ``dumps`` are pure CPU and fine),
  blocking ``os`` filesystem calls (``replace`` / ``rename`` /
  ``remove`` / ``unlink``), and ``Path`` convenience I/O
  (``read_text`` / ``write_text`` / ``read_bytes`` / ``write_bytes``
  method calls on any receiver);
* ``socket.create_connection`` and bare ``Connection``-style waits are
  out of scope -- the asyncio streams API replaces them wholesale, and
  serve's client module is synchronous by design.

Only the *nearest* enclosing function matters: a synchronous ``def``
nested inside an ``async def`` (or a sync method of the same class) is
exempt, because that is exactly the shape of an ``asyncio.to_thread``
target.  Names are resolved through the module's import aliases, so
``from time import sleep as nap`` does not evade the rule.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.devtools.analyzer.astutil import import_aliases, resolve_call_target
from repro.devtools.analyzer.core import Finding, Project, Rule, register

#: Fully qualified callables that block the calling thread.
BLOCKING_CALLS = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "open": "move file I/O into a worker via `asyncio.to_thread`",
    "json.load": "read the file in a worker thread, or use json.loads",
    "json.dump": "write the file in a worker thread, or use json.dumps",
    "os.replace": "move file I/O into a worker via `asyncio.to_thread`",
    "os.rename": "move file I/O into a worker via `asyncio.to_thread`",
    "os.remove": "move file I/O into a worker via `asyncio.to_thread`",
    "os.unlink": "move file I/O into a worker via `asyncio.to_thread`",
}

#: Module prefixes whose every call is considered blocking.
BLOCKING_PREFIXES = ("subprocess.",)

#: Blocking convenience-I/O method names (flagged on any receiver --
#: in serve code these are Path methods).
BLOCKING_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
}


@register
class ServeHygieneRule(Rule):
    name = "serve-hygiene"
    description = (
        "repro.serve async handlers must not call blocking operations "
        "(time.sleep, sync file I/O, subprocess); hand off to a worker "
        "thread via asyncio.to_thread"
    )
    default_severity = "error"
    default_options = {
        "scope": ["repro.serve"],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        for mod in project.in_package(*scope):
            aliases = import_aliases(mod.tree)
            for async_fn in _async_functions(mod.tree):
                for call in _calls_owned_by(async_fn):
                    problem = _blocking_problem(call, aliases)
                    if problem is None:
                        continue
                    target, advice = problem
                    yield self.finding(
                        project, mod, call,
                        f"blocking call {target}(...) inside async "
                        f"handler `{async_fn.name}`: {advice}",
                        symbol=target,
                    )


def _async_functions(tree: ast.Module) -> Iterator[ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            yield node


def _calls_owned_by(fn: ast.AsyncFunctionDef) -> Iterator[ast.Call]:
    """Call nodes whose nearest enclosing function is ``fn`` itself.

    Descends the async function's body but stops at nested function
    definitions (sync or async): a nested sync ``def`` is a
    worker-thread target and is exempt here, and a nested ``async def``
    is visited on its own by :func:`_async_functions`.
    """
    stack: list = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_problem(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[tuple]:
    """(resolved target, advice) when ``call`` is on the blocklist."""
    target = resolve_call_target(call.func, aliases)
    if target is not None:
        if target in BLOCKING_CALLS:
            return target, BLOCKING_CALLS[target]
        for prefix in BLOCKING_PREFIXES:
            if target.startswith(prefix) or target == prefix.rstrip("."):
                return target, "run subprocesses in a worker thread"
    if isinstance(call.func, ast.Attribute) and call.func.attr in BLOCKING_METHODS:
        name = target if target is not None else f"<expr>.{call.func.attr}"
        return name, "move file I/O into a worker via `asyncio.to_thread`"
    return None
