"""Whole-project call graph over the :class:`Project` AST model.

The intraprocedural rules stop at a ``def`` boundary; everything in
this module exists so a rule can see *through* one.  The graph is
deliberately conservative: a call whose target cannot be resolved
statically becomes an edge to ``None`` (recorded, never followed), so
an effect can be missed through ``getattr`` tricks but never invented.

Resolution covers the shapes this repo actually uses:

* module-level functions by bare name, and through ``import`` /
  ``from ... import`` aliases (``execute_spec(...)`` after
  ``from repro.runtime.execute import execute_spec``);
* methods through ``self.meth()`` / ``cls.meth()``, including base
  classes resolvable in the project and ``super().meth()``;
* methods through *typed* receivers: an attribute or local whose class
  could be inferred from an annotation (``cache: Optional[ResultCache]``
  flowing into ``self.cache = cache``), a class-level ``AnnAssign``, or
  a direct constructor call (``entry = JobEntry(spec, fp)``).  A call on
  a receiver of an inferred project class also fans out to every
  project subclass that overrides the method, so ``self.cache.load``
  reaches ``ShardedResultCache.load``;
* nested functions (qualified ``outer.inner``), closures included.

Besides plain calls, the builder records *function references* -- a
function object passed as a value -- with an edge kind describing the
execution context the reference implies:

``thread``
    first argument of ``asyncio.to_thread`` / third-party-free
    ``loop.run_in_executor``, ``threading.Thread(target=...)``: the
    referenced function runs on a worker thread;
``loopsafe``
    first argument of ``loop.call_soon_threadsafe(...)``: the
    referenced function runs back on the event loop;
``ref``
    any other function reference (passed as an ordinary argument,
    stored, returned).  A ``ref`` escaping from thread-reachable code
    is assumed to run on that thread -- conservative in exactly the
    direction the loop-affinity rule needs.

:func:`get_callgraph` memoises the built graph (and the effect table
layered on top, see :mod:`repro.devtools.analyzer.effects`) on the
``Project`` instance, so the five interprocedural rules share a single
parse and a single fixpoint per analyzer run.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer.astutil import dotted_name, import_aliases
from repro.devtools.analyzer.core import Project, SourceModule

#: Edge kinds (see module docstring).
KIND_CALL = "call"
KIND_THREAD = "thread"
KIND_LOOPSAFE = "loopsafe"
KIND_REF = "ref"


@dataclass
class FunctionInfo:
    """One function or method in the project."""

    qname: str
    module: SourceModule
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    #: Name of the immediately enclosing class, if this is a method.
    class_name: Optional[str] = None
    is_async: bool = False

    @property
    def name(self) -> str:
        return self.node.name


@dataclass
class ClassInfo:
    """One class definition plus what type inference learned about it."""

    qname: str
    module: SourceModule
    node: ast.ClassDef
    #: Method name -> FunctionInfo qname.
    methods: Dict[str, str] = field(default_factory=dict)
    #: Resolved base-class qnames (project classes only).
    bases: List[str] = field(default_factory=list)
    #: Attribute name -> inferred type name.  Project classes resolve
    #: to their qname; stdlib types keep their dotted name
    #: ("asyncio.Event", "threading.Lock").
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call or function reference inside a function body."""

    caller: str
    #: Resolved project function qname, or None (dynamic / stdlib).
    callee: Optional[str]
    #: Resolved dotted target ("time.sleep", "self.cache.load") for
    #: diagnostics and stdlib blocklists, best effort.
    target: Optional[str]
    node: ast.AST
    kind: str = KIND_CALL


#: Mutable-collection constructors whose result we type as-is.
_STDLIB_TYPES = {
    "asyncio.Event", "asyncio.Queue", "asyncio.Condition", "asyncio.Lock",
    "asyncio.Semaphore", "threading.Event", "threading.Lock",
    "threading.RLock", "threading.Condition", "threading.Thread",
}


def _annotation_type(node: ast.AST) -> Optional[str]:
    """Best-effort dotted type name from an annotation expression.

    Unwraps ``Optional[X]``, ``"X"`` forward references, and
    ``X | None`` unions down to the single interesting name.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        head = dotted_name(node.value)
        if head in ("Optional", "typing.Optional"):
            return _annotation_type(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_type(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_type(node.right)
    name = dotted_name(node)
    if name in (None, "None"):
        return None
    return name


class CallGraph:
    """Functions, classes, and the edges between them."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.calls: Dict[str, List[CallSite]] = {}
        #: Reverse adjacency (callee qname -> caller qnames).
        self.callers: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def sites(self, qname: str) -> List[CallSite]:
        return self.calls.get(qname, [])

    def in_package(self, *prefixes: str) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            mod = info.module.module
            if any(mod == p or mod.startswith(p + ".") for p in prefixes):
                yield info

    def async_functions(self, *prefixes: str) -> Iterator[FunctionInfo]:
        for info in self.in_package(*prefixes):
            if info.is_async:
                yield info

    def subclasses_of(self, class_qname: str) -> Iterator[ClassInfo]:
        for cls in self.classes.values():
            if class_qname in cls.bases:
                yield cls
                yield from self.subclasses_of(cls.qname)

    def method_in_hierarchy(
        self, class_qname: str, method: str
    ) -> Optional[str]:
        """Resolve ``method`` on ``class_qname`` walking project bases."""
        seen: Set[str] = set()
        stack = [class_qname]
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            cls = self.classes.get(qname)
            if cls is None:
                continue
            if method in cls.methods:
                return cls.methods[method]
            stack.extend(cls.bases)
        return None

    def override_targets(self, class_qname: str, method: str) -> List[str]:
        """The method on the class itself plus every subclass override."""
        out: List[str] = []
        base = self.method_in_hierarchy(class_qname, method)
        if base is not None:
            out.append(base)
        for sub in self.subclasses_of(class_qname):
            if method in sub.methods and sub.methods[method] not in out:
                out.append(sub.methods[method])
        return out

    # ------------------------------------------------------------------
    # Thread-reachability (loop-affinity's substrate)
    # ------------------------------------------------------------------
    def thread_entries(self, *prefixes: str) -> Set[str]:
        """Functions handed to worker threads from modules in scope."""
        entries: Set[str] = set()
        for caller, sites in self.calls.items():
            info = self.functions.get(caller)
            if info is None:
                continue
            mod = info.module.module
            if not any(mod == p or mod.startswith(p + ".") for p in prefixes):
                continue
            for site in sites:
                if site.kind == KIND_THREAD and site.callee is not None:
                    entries.add(site.callee)
        return entries

    def thread_reachable(self, *prefixes: str) -> Set[str]:
        """Closure of :meth:`thread_entries` over call and ref edges.

        ``loopsafe`` references are not followed (they run on the event
        loop by construction) and neither are calls *to* async
        functions: an async callee only ever executes on some event
        loop (``asyncio.run`` in the thread body, or it is already a
        bug the rule reports elsewhere).
        """
        return set(self.thread_witness(*prefixes))

    def thread_witness(self, *prefixes: str) -> Dict[str, Optional[str]]:
        """Like :meth:`thread_reachable`, with provenance: maps each
        reachable function to the function it was first reached *from*
        (``None`` for the thread entries themselves), so a rule can
        render the full chain back to the ``to_thread`` hand-off."""
        witness: Dict[str, Optional[str]] = {
            entry: None for entry in sorted(self.thread_entries(*prefixes))
        }
        worklist = list(witness)
        while worklist:
            qname = worklist.pop()
            for site in self.sites(qname):
                if site.kind == KIND_LOOPSAFE or site.callee is None:
                    continue
                callee = self.functions.get(site.callee)
                if callee is None or callee.is_async:
                    continue
                if site.callee not in witness:
                    witness[site.callee] = qname
                    worklist.append(site.callee)
        return witness

    def thread_chain(
        self, qname: str, witness: Dict[str, Optional[str]]
    ) -> List[str]:
        """Entry-first chain from a thread entry down to ``qname``."""
        chain: List[str] = []
        current: Optional[str] = qname
        while current is not None and current not in chain:
            chain.append(current)
            current = witness.get(current)
        chain.reverse()
        return chain

    def related_classes(self, class_qname: str) -> Set[str]:
        """``class_qname`` plus its project ancestors and descendants --
        the set over which an attribute name denotes one storage
        location."""
        related: Set[str] = {class_qname}
        stack = [class_qname]
        while stack:  # ancestors
            cls = self.classes.get(stack.pop())
            if cls is None:
                continue
            for base in cls.bases:
                if base not in related:
                    related.add(base)
                    stack.append(base)
        for sub in self.subclasses_of(class_qname):
            related.add(sub.qname)
        return related

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: Project) -> "CallGraph":
        graph = cls()
        builders = [_ModuleBuilder(graph, mod) for mod in project.modules]
        for builder in builders:
            builder.index()
        graph._link_bases()
        for builder in builders:
            builder.infer_types()
        for builder in builders:
            builder.resolve_calls()
        for caller, sites in graph.calls.items():
            for site in sites:
                if site.callee is not None:
                    graph.callers.setdefault(site.callee, set()).add(caller)
        return graph

    def _link_bases(self) -> None:
        """Second pass: base names recorded by the builders become
        project class qnames where resolvable."""
        for cls_info in self.classes.values():
            resolved: List[str] = []
            for base in cls_info.bases:
                target = _resolve_class_name(self, cls_info.module, base)
                if target is not None:
                    resolved.append(target)
            cls_info.bases = resolved


def _resolve_class_name(
    graph: CallGraph, mod: SourceModule, name: str
) -> Optional[str]:
    """Project class qname for ``name`` as written in ``mod``."""
    local = f"{mod.module}.{name}"
    if local in graph.classes:
        return local
    aliases = import_aliases(mod.tree)
    head, _, rest = name.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return None
    qname = f"{resolved}.{rest}" if rest else resolved
    return qname if qname in graph.classes else None


class _ModuleBuilder:
    """Per-module indexing, type inference, and call resolution."""

    def __init__(self, graph: CallGraph, mod: SourceModule) -> None:
        self.graph = graph
        self.mod = mod
        self.aliases = import_aliases(mod.tree)
        #: Call-site-visible scope: (function qname, enclosing ClassInfo)
        self._scopes: List[Tuple[FunctionInfo, Optional[ClassInfo]]] = []

    # -- pass 1: index every class and function ------------------------
    def index(self) -> None:
        self._index_body(self.mod.tree.body, prefix=self.mod.module, cls=None)

    def _index_body(
        self, body: List[ast.stmt], prefix: str, cls: Optional[ClassInfo]
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{prefix}.{stmt.name}"
                info = FunctionInfo(
                    qname=qname,
                    module=self.mod,
                    node=stmt,
                    class_name=cls.node.name if cls is not None else None,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                )
                self.graph.functions[qname] = info
                if cls is not None:
                    cls.methods[stmt.name] = qname
                # Nested defs: indexed with the parent's qname prefix,
                # but they are not methods of the enclosing class.
                self._index_body(stmt.body, prefix=qname, cls=None)
            elif isinstance(stmt, ast.ClassDef):
                qname = f"{prefix}.{stmt.name}"
                info_cls = ClassInfo(qname=qname, module=self.mod, node=stmt)
                info_cls.bases = [
                    b for b in (dotted_name(base) for base in stmt.bases)
                    if b is not None
                ]
                self.graph.classes[qname] = info_cls
                self._index_body(stmt.body, prefix=qname, cls=info_cls)
            elif isinstance(stmt, (ast.If, ast.Try)):
                # Conditional definitions (TYPE_CHECKING, try/except
                # import guards) still define names worth indexing.
                for sub in ast.iter_child_nodes(stmt):
                    if isinstance(sub, ast.stmt):
                        self._index_body([sub], prefix, cls)

    # -- pass 2: attribute/parameter type inference --------------------
    def infer_types(self) -> None:
        for cls_qname, cls_info in self.graph.classes.items():
            if cls_info.module is not self.mod:
                continue
            self._infer_class_types(cls_info)

    def _infer_class_types(self, cls_info: ClassInfo) -> None:
        for stmt in cls_info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                inferred = self._type_from_annotation(stmt.annotation)
                if inferred is not None:
                    cls_info.attr_types[stmt.target.id] = inferred
        for method_qname in cls_info.methods.values():
            fn = self.graph.functions[method_qname]
            param_types = self._param_types(fn.node)
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == _self_name(fn.node)
                ):
                    continue
                inferred = self._type_of_expr(node.value, param_types)
                if inferred is not None:
                    cls_info.attr_types.setdefault(target.attr, inferred)

    def _param_types(
        self, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Dict[str, str]:
        out: Dict[str, str] = {}
        args = fn.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is None:
                continue
            inferred = self._type_from_annotation(arg.annotation)
            if inferred is not None:
                out[arg.arg] = inferred
        return out

    def _type_from_annotation(self, annotation: ast.AST) -> Optional[str]:
        name = _annotation_type(annotation)
        if name is None:
            return None
        return self._resolve_type_name(name)

    def _resolve_type_name(self, name: str) -> Optional[str]:
        resolved = _resolve_class_name(self.graph, self.mod, name)
        if resolved is not None:
            return resolved
        head, _, rest = name.partition(".")
        full = self.aliases.get(head, head)
        dotted = f"{full}.{rest}" if rest else full
        if dotted in _STDLIB_TYPES:
            return dotted
        return None

    def _type_of_expr(
        self, expr: ast.AST, param_types: Dict[str, str]
    ) -> Optional[str]:
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is not None:
                return self._resolve_type_name(name)
            return None
        if isinstance(expr, ast.Name):
            return param_types.get(expr.id)
        return None

    # -- pass 3: resolve every call and function reference -------------
    def resolve_calls(self) -> None:
        for qname, fn in list(self.graph.functions.items()):
            if fn.module is not self.mod:
                continue
            cls_info = self._class_of(fn)
            sites = list(_FunctionResolver(self, fn, cls_info).run())
            if sites:
                self.graph.calls[qname] = sites

    def _class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        # The class qname is the function qname minus the method name.
        cls_qname = fn.qname.rsplit(".", 1)[0]
        return self.graph.classes.get(cls_qname)


def _self_name(fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> Optional[str]:
    args = fn.args
    ordered = [*args.posonlyargs, *args.args]
    return ordered[0].arg if ordered else None


#: Callables whose first function-valued argument runs on a worker
#: thread (resolved through import aliases where dotted).
_THREAD_DISPATCH = {"asyncio.to_thread"}
#: Attribute names that dispatch their argument to a thread/loop.
_THREAD_METHODS = {"to_thread", "run_in_executor"}
_LOOPSAFE_METHODS = {"call_soon_threadsafe"}


class _FunctionResolver:
    """Resolves the calls of one function body."""

    def __init__(
        self,
        builder: _ModuleBuilder,
        fn: FunctionInfo,
        cls_info: Optional[ClassInfo],
    ) -> None:
        self.builder = builder
        self.graph = builder.graph
        self.mod = builder.mod
        self.fn = fn
        self.cls_info = cls_info
        self.self_name = (
            _self_name(fn.node) if cls_info is not None else None
        )
        self.local_types = builder._param_types(fn.node)
        self._infer_local_types()

    def _infer_local_types(self) -> None:
        for node in self._body_walk():
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    inferred = self._expr_type(node.value)
                    if inferred is not None:
                        self.local_types[target.id] = inferred

    def _expr_type(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Call):
            name = dotted_name(expr.func)
            if name is not None:
                return self.builder._resolve_type_name(name)
            return None
        if isinstance(expr, ast.Attribute):
            chain_type = self._receiver_type(expr)
            return chain_type
        if isinstance(expr, ast.Name):
            return self.local_types.get(expr.id)
        return None

    def _receiver_type(self, node: ast.Attribute) -> Optional[str]:
        """Type of ``<expr>.<attr>`` via inferred attribute tables."""
        base = node.value
        base_type: Optional[str] = None
        if isinstance(base, ast.Name):
            if base.id == self.self_name and self.cls_info is not None:
                base_type = self.cls_info.qname
            else:
                base_type = self.local_types.get(base.id)
        elif isinstance(base, ast.Attribute):
            base_type = self._receiver_type(base)
        if base_type is None:
            return None
        cls = self.graph.classes.get(base_type)
        if cls is None:
            return None
        return cls.attr_types.get(node.attr)

    # ------------------------------------------------------------------
    def _body_walk(self) -> Iterator[ast.AST]:
        """Nodes belonging to this function, not nested definitions."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.fn.node))
        while stack:
            node = stack.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def run(self) -> Iterator[CallSite]:
        for node in self._body_walk():
            if isinstance(node, ast.Call):
                yield from self._resolve_call(node)
            elif isinstance(node, ast.Lambda):
                continue

    # ------------------------------------------------------------------
    def _resolve_call(self, call: ast.Call) -> Iterator[CallSite]:
        target = dotted_name(call.func)
        callees = self._resolve_target(call.func)
        if callees:
            for callee in callees:
                yield CallSite(
                    caller=self.fn.qname, callee=callee, target=target,
                    node=call, kind=KIND_CALL,
                )
        else:
            yield CallSite(
                caller=self.fn.qname, callee=None,
                target=self._resolved_target_str(call.func),
                node=call, kind=KIND_CALL,
            )
        yield from self._reference_sites(call)

    def _resolved_target_str(self, func: ast.AST) -> Optional[str]:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self.builder.aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def _reference_sites(self, call: ast.Call) -> Iterator[CallSite]:
        """Function-valued arguments become thread/loopsafe/ref edges."""
        kind = KIND_REF
        fn_args: List[ast.AST] = []
        dotted = self._resolved_target_str(call.func)
        attr = call.func.attr if isinstance(call.func, ast.Attribute) else None
        if dotted in _THREAD_DISPATCH or attr in _THREAD_METHODS:
            kind = KIND_THREAD
            # run_in_executor(executor, fn, ...): fn is the 2nd arg.
            skip = 1 if attr == "run_in_executor" else 0
            fn_args = call.args[skip:skip + 1]
        elif attr in _LOOPSAFE_METHODS:
            kind = KIND_LOOPSAFE
            fn_args = call.args[:1]
        elif dotted in ("threading.Thread", "Thread") or attr == "Thread":
            kind = KIND_THREAD
            fn_args = [
                kw.value for kw in call.keywords if kw.arg == "target"
            ]
        else:
            fn_args = [
                arg for arg in [*call.args, *[k.value for k in call.keywords]]
                if isinstance(arg, (ast.Name, ast.Attribute))
            ]
        for arg in fn_args:
            for callee in self._resolve_target(arg):
                yield CallSite(
                    caller=self.fn.qname, callee=callee,
                    target=dotted_name(arg), node=arg, kind=kind,
                )

    # ------------------------------------------------------------------
    def _resolve_target(self, func: ast.AST) -> List[str]:
        """Project function qnames a Name/Attribute may refer to."""
        if isinstance(func, ast.Name):
            return self._resolve_name(func.id)
        if isinstance(func, ast.Attribute):
            return self._resolve_attribute(func)
        return []

    def _resolve_name(self, name: str) -> List[str]:
        # Nested function defined in an enclosing scope of this module:
        # try successively shorter prefixes of our own qname.
        prefix = self.fn.qname
        while "." in prefix:
            prefix = prefix.rsplit(".", 1)[0]
            candidate = f"{prefix}.{name}"
            if candidate in self.graph.functions:
                return [candidate]
            if candidate in self.graph.classes:
                return self._constructor_of(candidate)
        resolved = self.builder.aliases.get(name)
        if resolved is not None:
            if resolved in self.graph.functions:
                return [resolved]
            if resolved in self.graph.classes:
                return self._constructor_of(resolved)
        return []

    def _constructor_of(self, cls_qname: str) -> List[str]:
        init = self.graph.method_in_hierarchy(cls_qname, "__init__")
        return [init] if init is not None else []

    def _resolve_attribute(self, func: ast.Attribute) -> List[str]:
        base = func.value
        method = func.attr
        # self.meth() / cls.meth()
        if (
            isinstance(base, ast.Name)
            and base.id in (self.self_name, "cls")
            and self.cls_info is not None
        ):
            return self.graph.override_targets(self.cls_info.qname, method)
        # super().meth()
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
            and self.cls_info is not None
        ):
            for base_qname in self.cls_info.bases:
                resolved = self.graph.method_in_hierarchy(base_qname, method)
                if resolved is not None:
                    return [resolved]
            return []
        # module_alias.func() / module_alias.Class()
        dotted = dotted_name(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            full = self.builder.aliases.get(head)
            if full is not None and rest:
                qname = f"{full}.{rest}"
                if qname in self.graph.functions:
                    return [qname]
                if qname in self.graph.classes:
                    return self._constructor_of(qname)
        # Typed receiver: local / parameter / attribute chain with an
        # inferred project class.
        recv_type: Optional[str] = None
        if isinstance(base, ast.Name):
            recv_type = self.local_types.get(base.id)
            if (
                recv_type is None
                and base.id == self.self_name
                and self.cls_info is not None
            ):
                recv_type = self.cls_info.qname
        elif isinstance(base, ast.Attribute):
            recv_type = self._receiver_type(base)
        if recv_type is not None and recv_type in self.graph.classes:
            return self.graph.override_targets(recv_type, method)
        # ClassName.meth(...) (unbound call through the class).
        if isinstance(base, ast.Name):
            for cls_qname in self._resolve_name(base.id):
                # _resolve_name returned __init__ for classes; recover
                # the class qname.
                owner = cls_qname.rsplit(".", 1)[0]
                resolved = self.graph.method_in_hierarchy(owner, method)
                if resolved is not None:
                    return [resolved]
        return []


def get_callgraph(project: Project) -> CallGraph:
    """The memoised call graph for ``project`` (built once per run)."""
    cache = _analysis_cache(project)
    graph = cache.get("callgraph")
    if graph is None:
        graph = CallGraph.build(project)
        cache["callgraph"] = graph
    return graph


def _analysis_cache(project: Project) -> Dict[str, object]:
    cache = getattr(project, "_analysis_cache", None)
    if cache is None:
        cache = {}
        project._analysis_cache = cache  # type: ignore[attr-defined]
    return cache
