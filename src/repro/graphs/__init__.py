"""Graph dataset substrate.

The paper evaluates on seven PyG datasets (Table II).  Those exact
datasets are not redistributable here, so this package synthesises
graphs that match Table II's published statistics -- node count, edge
count, adjacency sparsity, feature sparsity, feature length and layer
dimension -- with power-law degree distributions reproducing the
paper's Figure 2 observation (top 20% of nodes own >70% of edges).

It also implements the preprocessing HyMM relies on: degree sorting
(Table I, with the sorting-cost measurement of Table II) and the GCN
adjacency normalisation, plus the region partitioner that applies the
paper's tiling rules (Section IV-E).
"""

from repro.graphs.dataset import GraphDataset
from repro.graphs.synthetic import (
    power_law_graph,
    sparse_feature_matrix,
    chung_lu_weights,
)
from repro.graphs.registry import (
    DATASETS,
    DatasetSpec,
    dataset_names,
    get_spec,
    load_dataset,
)
from repro.graphs.preprocess import (
    SortResult,
    degree_sort,
    gcn_normalize,
    add_self_loops,
)
from repro.graphs.partition import RegionPlan, plan_regions, tiling_threshold
from repro.graphs.io import (
    save_dataset,
    load_dataset_npz,
    read_edge_list,
    dataset_from_edge_list,
)

__all__ = [
    "GraphDataset",
    "power_law_graph",
    "sparse_feature_matrix",
    "chung_lu_weights",
    "DATASETS",
    "DatasetSpec",
    "dataset_names",
    "get_spec",
    "load_dataset",
    "SortResult",
    "degree_sort",
    "gcn_normalize",
    "add_self_loops",
    "RegionPlan",
    "plan_regions",
    "tiling_threshold",
    "save_dataset",
    "load_dataset_npz",
    "read_edge_list",
    "dataset_from_edge_list",
]
