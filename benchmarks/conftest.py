"""Benchmark-suite plumbing.

Every bench regenerates one table or figure of the paper, prints it,
and writes it to ``benchmarks/results/<name>.txt`` so the artifacts
survive the run.  Simulations are memoised in-process
(``repro.bench.runner``), so benches that read the same runs (Fig. 7,
8, 9, 11) only pay for them once per session.

Executions also record/replay phase traces through the shared trace
tree by default (replay is bit-identical to live simulation), so
re-running a bench after the first session replays instead of
re-simulating.  ``pytest benchmarks --no-replay`` forces every run
fully live -- the escape hatch for timing the simulator itself.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--no-replay",
        action="store_true",
        default=False,
        help="disable phase-trace record/replay; simulate every run live",
    )


def pytest_configure(config: pytest.Config) -> None:
    if config.getoption("--no-replay"):
        from repro.bench.runner import configure_runtime

        configure_runtime(replay=False)


@pytest.fixture(scope="session")
def emit():
    """Print a report block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
