"""Roofline validation of every Fig. 7 run.

Two jobs: (a) a hard consistency check -- no simulated run may finish
faster than max(compute bound, bandwidth bound); (b) a bottleneck map
showing *why* each dataflow performs as it does (HyMM should push runs
toward the compute roof; OP should sit deep in memory-bound territory
on the dense graphs).
"""

from repro.analysis import analyze_run
from repro.bench import format_table
from repro.bench.runner import run_suite
from repro.bench.workloads import BENCH_DATASETS
from repro.graphs.registry import get_spec


def test_roofline_validation(benchmark, emit):
    def run_all():
        headers = ["dataset", "dataflow", "cycles", "compute bound",
                   "bandwidth bound", "bottleneck", "efficiency", "FLOPs/byte"]
        rows, reports = [], {}
        for name in BENCH_DATASETS:
            runs = run_suite(name)
            abbr = get_spec(name).abbrev
            for kind in ("op", "rwp", "hymm"):
                report = analyze_run(runs[kind])
                reports[(abbr, kind)] = (runs[kind], report)
                rows.append([
                    abbr, kind, report.attained_cycles,
                    int(report.compute_bound), int(report.bandwidth_bound),
                    report.bottleneck, report.efficiency,
                    report.arithmetic_intensity,
                ])
        return reports, format_table(headers, rows)

    reports, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("roofline", text)

    for (abbr, kind), (run, report) in reports.items():
        # (a) the consistency bound, for every dataflow on every dataset.
        assert run.stats.cycles >= report.roofline_cycles - 1, (abbr, kind)
        assert 0.0 < report.efficiency <= 1.0, (abbr, kind)

    # (b) HyMM achieves the highest roofline efficiency on the dense
    # graphs (it removes the memory stalls the baselines suffer).
    for abbr in ("AP", "AC"):
        eff = {k: reports[(abbr, k)][1].efficiency for k in ("op", "rwp", "hymm")}
        assert eff["hymm"] >= max(eff.values()) - 1e-9, abbr
