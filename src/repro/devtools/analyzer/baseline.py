"""Baseline (suppression) file: tracked, justified debt.

A baseline is a JSON document listing finding keys that are *known* and
*accepted for now*, each with a mandatory human-written reason::

    {
      "version": 1,
      "findings": [
        {"key": "determinism::src/repro/x.py::time.time",
         "reason": "profiling hook, stripped before results are cached"}
      ]
    }

Keys are line-insensitive (rule + path + symbol), so reformatting a
file does not invalidate its baseline entries.  ``--write-baseline``
emits entries with a placeholder reason that a human is expected to
replace; CI should reject placeholder reasons in review, not
mechanically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.devtools.analyzer.core import Finding

PLACEHOLDER_REASON = "TODO: justify or fix"


@dataclass
class Baseline:
    """Accepted finding keys with their justifications."""

    reasons: Dict[str, str] = field(default_factory=dict)

    def __contains__(self, key: str) -> bool:
        return key in self.reasons

    def __len__(self) -> int:
        return len(self.reasons)

    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Parse a baseline file; raises ValueError on malformed input
        (a broken baseline must fail loudly, not silently allow
        everything)."""
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(data.get("findings"), list):
            raise ValueError(
                f"baseline {path} must be an object with a 'findings' list"
            )
        reasons: Dict[str, str] = {}
        for entry in data["findings"]:
            if not isinstance(entry, dict) or "key" not in entry:
                raise ValueError(
                    f"baseline {path}: every finding needs a 'key' "
                    f"(got {entry!r})"
                )
            reasons[str(entry["key"])] = str(entry.get("reason", ""))
        return cls(reasons=reasons)

    def dump(self, path: Path) -> None:
        entries = [
            {"key": key, "reason": reason}
            for key, reason in sorted(self.reasons.items())
        ]
        path.write_text(
            json.dumps({"version": 1, "findings": entries}, indent=2) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        return cls(
            reasons={f.key(): PLACEHOLDER_REASON for f in findings}
        )

    # ------------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """(new, baselined, stale-keys).

        Stale keys are baseline entries no current finding matches --
        paid-off debt whose entry should be deleted.
        """
        new: List[Finding] = []
        baselined: List[Finding] = []
        seen = set()
        for finding in findings:
            key = finding.key()
            if key in self.reasons:
                baselined.append(finding)
                seen.add(key)
            else:
                new.append(finding)
        stale = sorted(set(self.reasons) - seen)
        return new, baselined, stale
