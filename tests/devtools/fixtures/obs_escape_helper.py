"""Helper module for the obs-hygiene transitive tests.

Loaded as ``repro.util.trace_helper`` -- outside the obs-hygiene scope
*and* outside the audited packages.  ``emit_unguarded`` carries the
``emits-trace`` effect; ``emit_guarded`` guards its own emission and
is effect-free.
"""


def emit_unguarded(tracer, name, cycle):
    tracer.instant(name, cycle)


def emit_guarded(tracer, name, cycle):
    if tracer.enabled:
        tracer.instant(name, cycle)
