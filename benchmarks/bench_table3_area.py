"""Table III: hardware parameters and estimated area (7 nm + 40 nm)."""

import pytest

from repro.bench import tables


def test_table3_area(benchmark, emit):
    result = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
    emit("table3_area", result["text"])
    # The calibrated model must land on the paper's 7 nm column.
    assert result["ours_7nm"]["DMB"] == pytest.approx(0.077, rel=0.05)
    assert result["ours_7nm"]["Total"] == pytest.approx(0.106, abs=0.005)
    # 40 nm via node scaling stays within 10% of the paper's total.
    assert result["ours_40nm"]["Total"] == pytest.approx(3.215, rel=0.10)
