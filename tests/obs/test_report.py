"""Report helpers: PhaseFeed forwarding and manifest cache
effectiveness."""

from repro.obs import NULL_TRACER, PhaseFeed
from repro.obs.report import manifest_cache_effectiveness, manifest_report
from repro.runtime import JobSpec, execute_spec


class TestPhaseFeed:
    def test_forwards_phase_events_only(self):
        seen = []
        feed = PhaseFeed(lambda name, end, args: seen.append((name, end, args)))
        feed.span("layer0", 0, 10, cat="phase", args={"cycles": 10})
        feed.span("batch", 0, 10, cat="engine", args={"cycles": 10})
        feed.instant("drain", 12, cat="phase", args={"cycles": 2})
        feed.instant("prepare", 0, cat="phase")  # no counters: dropped
        feed.counter("occupancy", 5, {"a": 1})
        assert [name for name, _, _ in seen] == ["layer0", "drain"]
        assert seen[0][1] == 10.0
        assert seen[1][2] == {"cycles": 2}

    def test_is_an_enabled_tracer(self):
        feed = PhaseFeed(lambda *a: None)
        assert feed.enabled is True
        assert NULL_TRACER.enabled is False

    def test_live_feed_matches_result_snapshots(self):
        spec = JobSpec(dataset="cora", kind="rwp", scale=0.05)
        rows = []
        feed = PhaseFeed(lambda name, end, args: rows.append((name, args)))
        result = execute_spec(spec, tracer=feed)
        assert [name for name, _ in rows] == list(result.phase_snapshots)
        fed_total = sum(args["cycles"] for _, args in rows)
        assert fed_total == result.stats.cycles


class TestManifestCacheEffectiveness:
    def test_prefers_recorded_aggregates(self):
        doc = {"jobs": [], "cache_hits": 7, "cache_misses": 3}
        assert manifest_cache_effectiveness(doc) == {
            "hits": 7, "misses": 3, "hit_rate": 0.7,
        }

    def test_falls_back_to_counting_statuses(self):
        doc = {
            "jobs": [
                {"status": "cache-hit"},
                {"status": "cache-hit"},
                {"status": "done"},
                {"status": "failed"},
            ]
        }
        assert manifest_cache_effectiveness(doc) == {
            "hits": 2, "misses": 2, "hit_rate": 0.5,
        }

    def test_empty_manifest(self):
        assert manifest_cache_effectiveness({"jobs": []}) == {
            "hits": 0, "misses": 0, "hit_rate": 0.0,
        }

    def test_report_prints_cache_line(self):
        doc = {
            "jobs": [{"label": "a", "status": "cache-hit"}],
            "cache_hits": 1,
            "cache_misses": 0,
        }
        text = manifest_report(doc)
        assert "cache: 1 hit, 0 misses (100% hit rate)" in text
