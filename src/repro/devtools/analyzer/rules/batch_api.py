"""Rule ``batch-api``: kernels must issue engine traffic in batches.

The timing engine has two tiers of primitives:

* scalar per-element calls (``mac_load``, ``load``, ``store``,
  ``accumulate_store``, ``mac_stream_load``, ``rmw``) -- the reference
  model, one Python frame per simulated access;
* vectorised batch calls (``mac_load_batch``, ``store_batch``, ...)
  that take a numpy address array and amortise the interpreter
  overhead across the whole batch.

A scalar primitive invoked inside a ``for``/``while`` loop in kernel or
baseline code re-introduces exactly the per-access overhead the batch
API exists to remove -- and it silently bypasses the
scalar-vs-batched equivalence tests, which only exercise code routed
through the batch entry points.  This rule flags every such call site.

Loop-invariant uses (a single scalar call *outside* any loop, e.g. a
one-off flush address) are deliberately not flagged, and neither are
the ``*_batch`` variants or non-engine methods that happen to share a
name in other namespaces: only attribute calls whose final attribute
matches a scalar primitive name, lexically nested inside a loop body,
are reported.

Scope: the compute kernels and the baseline accelerators
(``options["scope"]``).  The engine's own reference implementations of
the batch primitives (``repro.sim.engine``) legitimately loop over
scalar calls and are outside the scope list.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.analyzer.core import Finding, Project, Rule, register

#: Per-element engine primitives that have a batched counterpart.
SCALAR_PRIMITIVES = {
    "mac_load",
    "mac_stream_load",
    "load",
    "store",
    "accumulate_store",
    "rmw",
}


@register
class BatchApiRule(Rule):
    name = "batch-api"
    description = (
        "no per-element engine primitive calls inside loops in kernel or "
        "baseline code; use the *_batch API"
    )
    default_severity = "error"
    default_options = {
        "scope": [
            "repro.hymm.kernels",
            "repro.baselines",
        ],
    }

    def run(self, project: Project) -> Iterator[Finding]:
        scope = tuple(self.options["scope"])
        for mod in project.in_package(*scope):
            yield from self._walk(project, mod, mod.tree, in_loop=False)

    # ------------------------------------------------------------------
    def _walk(self, project, mod, node: ast.AST, in_loop: bool) -> Iterator[Finding]:
        """Depth-first walk tracking lexical loop nesting.

        A nested function/lambda defined inside a loop body starts a
        fresh ``in_loop=False`` context only for its *signature*; its
        body keeps ``in_loop=True`` because closures created in loops
        (e.g. per-entry callbacks) still run once per iteration in the
        kernels' usage pattern -- and a false positive there is an easy
        inline ``allow`` away.
        """
        for child in ast.iter_child_nodes(node):
            child_in_loop = in_loop
            if isinstance(child, (ast.For, ast.AsyncFor, ast.While)):
                child_in_loop = True
            elif isinstance(child, ast.Call):
                finding = self._check_call(project, mod, child, in_loop)
                if finding is not None:
                    yield finding
            yield from self._walk(project, mod, child, child_in_loop)

    def _check_call(self, project, mod, node: ast.Call, in_loop: bool):
        if not in_loop:
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        name = func.attr
        if name not in SCALAR_PRIMITIVES:
            return None
        # Only engine-shaped receivers: `engine.load(...)`,
        # `ctx.engine.store(...)`, `self.engine.rmw(...)`.  A plain
        # `list.store(...)` on an unrelated object would be noise; the
        # kernels always reach the engine through a name containing
        # "engine".
        receiver = _receiver_chain(func.value)
        if receiver is None or "engine" not in receiver.lower():
            return None
        yield_name = f"{receiver}.{name}"
        return self.finding(
            project, mod, node,
            f"per-element engine primitive {yield_name}() inside a loop: "
            f"issue the whole address array through {name}_batch() so the "
            f"batched fast path (and its equivalence tests) cover it",
            symbol=yield_name,
        )


def _receiver_chain(node: ast.AST) -> "str | None":
    """Dotted receiver of an attribute call (``ctx.engine`` for
    ``ctx.engine.load``); ``None`` for computed receivers."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
