#!/usr/bin/env python3
"""Energy and roofline analysis of the dataflows (extension).

The paper measures DRAM accesses (Fig. 11); this example turns those
byte counts into joules with a Horowitz-style energy model and locates
every run against its compute/bandwidth roofline -- showing that HyMM's
traffic reduction is simultaneously a performance win (it lifts runs to
the compute roof) and an energy win (DRAM bytes dominate the budget).

Run:  python examples/energy_analysis.py
"""

from repro import (
    GCNModel,
    HyMMAccelerator,
    HyMMConfig,
    OPAccelerator,
    RWPAccelerator,
    load_dataset,
)
from repro.analysis import analyze_run
from repro.area.energy import energy_of_run
from repro.bench import format_table


def main() -> None:
    model = GCNModel(
        load_dataset("amazon-photo", scale=0.1, seed=1, feature_length=128),
        n_layers=1,
        seed=2,
    )
    # A 32 KB buffer recreates the paper-scale working-set pressure at
    # this reduced dataset size (see EXPERIMENTS.md on scales).
    small = 32 * 1024
    accelerators = {
        "op": OPAccelerator(HyMMConfig(dmb_bytes=small, unified_buffer=False)),
        "rwp": RWPAccelerator(HyMMConfig(dmb_bytes=small, unified_buffer=False)),
        "hymm": HyMMAccelerator(HyMMConfig(dmb_bytes=small)),
    }

    rows = []
    for name, accelerator in accelerators.items():
        result = accelerator.run_inference(model)
        energy = energy_of_run(result)
        roofline = analyze_run(result)
        rows.append([
            name,
            result.stats.cycles,
            roofline.bottleneck,
            roofline.efficiency,
            roofline.arithmetic_intensity,
            energy.total_uj,
            100 * energy.breakdown()["dram"],
        ])

    print(f"Workload: {model.dataset}\n")
    print(format_table(
        ["dataflow", "cycles", "bottleneck", "roofline eff.",
         "FLOPs/byte", "energy uJ", "DRAM energy %"],
        rows,
    ))
    op_uj, hymm_uj = rows[0][5], rows[2][5]
    print(f"\nHyMM consumes {op_uj / hymm_uj:.1f}x less energy than the "
          f"outer product on this workload; the gap is almost entirely "
          f"the DRAM traffic the hybrid dataflow avoids (Fig. 11).")


if __name__ == "__main__":
    main()
