"""``python -m repro.serve`` CLI: parser wiring and the client-side
subcommands against a live test server."""

import json

import pytest

from repro.runtime import JobSpec, ShardedResultCache
from repro.serve.cli import build_parser, main
from repro.serve.server import ServerThread


@pytest.fixture(scope="module")
def spec():
    return JobSpec(dataset="cora", kind="rwp", scale=0.05)


@pytest.fixture()
def server(tmp_path):
    cache = ShardedResultCache(tmp_path / "cache")
    with ServerThread(cache=cache) as srv:
        yield srv


def endpoint(srv):
    return ["--host", srv.host, "--port", str(srv.port)]


class TestParser:
    def test_every_subcommand_parses(self):
        parser = build_parser()
        for argv in (
            ["serve", "--port", "0"],
            ["submit", "cora", "--kind", "rwp"],
            ["status", "abc", "--follow"],
            ["healthz"],
            ["metrics"],
            ["shutdown"],
            ["bench-hitpath", "--requests", "3"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)

    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSubmitStatus:
    def test_submit_prints_terminal_status(self, server, spec, capsys):
        rc = main(
            ["submit", "cora", "--kind", "rwp", "--scale", "0.05"]
            + endpoint(server)
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "[executed]" in out

    def test_submit_json_round_trips(self, server, capsys):
        rc = main(
            ["submit", "cora", "--kind", "rwp", "--scale", "0.05", "--json"]
            + endpoint(server)
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "done"
        job_id = payload["job_id"]
        rc = main(["status", job_id, "--json"] + endpoint(server))
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["job_id"] == job_id

    def test_status_follow_prints_final(self, server, capsys):
        assert main(
            ["submit", "cora", "--kind", "rwp", "--scale", "0.05", "--json"]
            + endpoint(server)
        ) == 0
        submitted = json.loads(capsys.readouterr().out)
        rc = main(
            ["status", submitted["job_id"], "--follow"] + endpoint(server)
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "done" in out

    def test_healthz_and_metrics(self, server, capsys):
        assert main(["healthz"] + endpoint(server)) == 0
        health = json.loads(capsys.readouterr().out)
        assert health["status"] == "ok"
        assert main(["metrics"] + endpoint(server)) == 0
        metrics = json.loads(capsys.readouterr().out)
        assert "jobs" in metrics

    def test_connection_refused_is_exit_2(self, capsys):
        rc = main(["healthz", "--host", "127.0.0.1", "--port", "1"])
        assert rc == 2
        assert "error" in capsys.readouterr().err
