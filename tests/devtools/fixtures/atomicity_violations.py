"""Fixture for the ``await-atomicity`` rule.

Loaded by the tests under the pretend module name
``repro.serve.atomicity_fixture`` so it falls inside the rule's scope.
Violations are single-flight races: shared ``self`` state checked
before an ``await`` and written after it.  The clean variants register
before the first await, re-validate after it, or use a plain atomic
``+=`` with no preceding check.
"""

import asyncio


class RacyRegistry:
    def __init__(self):
        self._jobs = {}
        self._tickets = {}
        self.count = 0

    async def submit_racy(self, key, spec):
        entry = self._jobs.get(key)
        if entry is None:
            record = await self._probe(spec)
            self._jobs[key] = record  # VIOLATION: check is stale here
        return self._jobs.get(key)

    async def submit_direct_check(self, key):
        if key not in self._tickets:
            await asyncio.sleep(0)
            self._tickets[key] = object()  # VIOLATION: split check-then-act

    async def increment_split(self):
        if self.count == 0:
            await asyncio.sleep(0)
            self._bump()  # VIOLATION: helper stores self.count

    def _bump(self):
        self.count += 1

    async def submit_registered_first(self, key, spec):
        entry = self._jobs.get(key)
        if entry is None:
            entry = {}
            self._jobs[key] = entry  # act before the await: clean
            entry["record"] = await self._probe(spec)
        return entry

    async def submit_revalidated(self, key, spec):
        entry = self._jobs.get(key)
        if entry is None:
            record = await self._probe(spec)
            if key not in self._jobs:  # re-validated after the await
                self._jobs[key] = record
        return self._jobs.get(key)

    async def counters_only(self):
        self.count += 1  # atomic between suspension points: clean
        await asyncio.sleep(0)
        self.count += 1

    async def _probe(self, spec):
        await asyncio.sleep(0)
        return {"spec": spec}
