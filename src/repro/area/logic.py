"""Logic area: MAC units and control (calibrated to Table III at 7 nm)."""

from __future__ import annotations

#: One single-precision MAC at 7 nm: Table III's PE array is 16 MACs at
#: 0.006 mm^2.
MAC_MM2_7NM = 0.006 / 16

#: Controller, interconnect and the DMB-side accumulator ("Others" in
#: Table III).
CONTROL_BASE_MM2_7NM = 0.004


def mac_area_mm2(n_macs: int) -> float:
    """PE-array area at 7 nm."""
    if n_macs < 0:
        raise ValueError("n_macs must be non-negative")
    return MAC_MM2_7NM * n_macs


def control_area_mm2(n_macs: int = 16) -> float:
    """Control/others area at 7 nm; grows mildly with the PE count
    (wider broadcast and reduction fabric)."""
    if n_macs < 0:
        raise ValueError("n_macs must be non-negative")
    return CONTROL_BASE_MM2_7NM * max(1.0, n_macs / 16) ** 0.5
