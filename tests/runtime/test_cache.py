"""ResultCache: hit/miss, corruption recovery, schema invalidation."""

import json

import numpy as np
import pytest

from repro.bench.workloads import make_model
from repro.hymm.base import RunResult
from repro.runtime import JobSpec, ResultCache, default_cache_dir, execute_spec


@pytest.fixture(scope="module")
def spec():
    return JobSpec(dataset="cora", kind="rwp", scale=0.05)


@pytest.fixture(scope="module")
def result(spec):
    return execute_spec(spec)


class TestDefaultLocation:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir().name == "hymm-repro"


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        assert cache.load(spec) is None
        cache.store(spec, result)
        assert cache.contains(spec)
        loaded = cache.load(spec)
        assert loaded is not None
        assert loaded.stats.cycles == result.stats.cycles
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1, "corrupt": 0}

    def test_round_trip_bit_identical(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        loaded = cache.load(spec)
        for ours, theirs in zip(result.outputs, loaded.outputs):
            assert ours.dtype == theirs.dtype
            assert np.array_equal(ours, theirs)
        assert loaded.stats.to_dict() == result.stats.to_dict()
        assert loaded.config == result.config

    def test_distinct_specs_do_not_collide(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        other = JobSpec(dataset="cora", kind="rwp", scale=0.05, seed=1)
        assert cache.load(other) is None

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "a" / "b"
        ResultCache(target)
        assert target.is_dir()


class TestCorruptionRecovery:
    def test_truncated_record_is_evicted_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        path = cache.store(spec, result)
        path.write_text(path.read_text()[: 40])  # simulate a torn write
        assert cache.load(spec) is None
        assert not path.exists()
        assert cache.corrupt == 1
        # The next store repairs the entry.
        cache.store(spec, result)
        assert cache.load(spec) is not None

    def test_garbage_json_is_evicted(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        path = cache.store(spec, result)
        path.write_text('{"fingerprint": "x"}')  # wrong shape
        assert cache.load(spec) is None
        assert cache.corrupt == 1

    def test_result_schema_mismatch_is_a_miss(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        path = cache.store(spec, result)
        record = json.loads(path.read_text())
        record["result"]["schema_version"] = RunResult.SCHEMA_VERSION + 1
        path.write_text(json.dumps(record))
        assert cache.load(spec) is None
        assert not path.exists()


class TestMaintenance:
    def test_clear_and_size(self, tmp_path, spec, result):
        cache = ResultCache(tmp_path)
        cache.store(spec, result)
        assert cache.size() == 1
        assert cache.clear() == 1
        assert cache.size() == 0
        assert cache.load(spec) is None


class TestRunResultSchema:
    def test_from_dict_rejects_other_versions(self, result):
        data = result.to_dict()
        data["schema_version"] = 999
        with pytest.raises(ValueError):
            RunResult.from_dict(data)

    def test_extra_sanitised_idempotently(self, result):
        first = result.to_dict()
        assert RunResult.from_dict(first).to_dict() == first

    def test_hymm_extra_records_dropped_objects(self):
        spec = JobSpec(dataset="cora", kind="hymm", scale=0.05)
        data = execute_spec(spec).to_dict()
        assert "plan" in data["extra"]["_dropped"]
