"""Per-function effect inference over the call graph.

Each function gets a set drawn from a small effect lattice (the
powerset of :data:`EFFECTS`, ordered by inclusion):

=====================  =============================================
Effect                 Meaning
=====================  =============================================
``blocks-io``          synchronous file/socket I/O on the calling
                       thread (``open``, ``json.load``, ``os.replace``,
                       ``Path.read_text``, ...)
``sleeps``             ``time.sleep``
``spawns-subprocess``  anything rooted at ``subprocess``, ``os.system``
``reads-wall-clock``   absolute time reads (``time.time``,
                       ``datetime.now``, ...)
``ambient-entropy``    OS entropy / process-global RNG state
                       (``os.urandom``, ``uuid.uuid4``, unseeded
                       ``default_rng()``, legacy ``numpy.random.*``)
``mutates-nonlocal``   stores reaching outside the local frame:
                       ``global``/``nonlocal`` writes, attribute or
                       subscript stores rooted at a parameter
                       (``self`` included)
``emits-trace``        an *unguarded* Tracer-API emission
                       (``tracer.span(...)`` outside an
                       ``if tracer.enabled:`` guard) -- internally
                       guarded helpers are effect-free by design
=====================  =============================================

Direct effects come from a single AST pass per function; transitive
effects propagate caller-ward over resolved ``call`` edges with a
worklist fixpoint, so cycles (mutual recursion) converge instead of
recursing.  ``thread``/``loopsafe``/``ref`` reference edges do *not*
propagate: handing a blocking function to ``asyncio.to_thread`` is
precisely how serve code is supposed to discharge the effect.

Every transitive effect keeps a witness edge, so a rule can render the
full call chain down to the line that actually performs the effect:
``_handle_submit -> _probe -> ResultCache.load (open)``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.analyzer.astutil import dotted_name, import_aliases
from repro.devtools.analyzer.callgraph import (
    KIND_CALL,
    CallGraph,
    FunctionInfo,
    _analysis_cache,
    get_callgraph,
)
from repro.devtools.analyzer.core import Project

BLOCKS_IO = "blocks-io"
SLEEPS = "sleeps"
SPAWNS_SUBPROCESS = "spawns-subprocess"
READS_WALL_CLOCK = "reads-wall-clock"
AMBIENT_ENTROPY = "ambient-entropy"
MUTATES_NONLOCAL = "mutates-nonlocal"
EMITS_TRACE = "emits-trace"

#: The lattice's atoms, in display order.
EFFECTS = (
    BLOCKS_IO,
    SLEEPS,
    SPAWNS_SUBPROCESS,
    READS_WALL_CLOCK,
    AMBIENT_ENTROPY,
    MUTATES_NONLOCAL,
    EMITS_TRACE,
)

#: Effects that stall an event loop when performed on its thread.
BLOCKING_EFFECTS = frozenset({BLOCKS_IO, SLEEPS, SPAWNS_SUBPROCESS})
#: Effects that break the determinism contract.
NONDETERMINISM_EFFECTS = frozenset({READS_WALL_CLOCK, AMBIENT_ENTROPY})

# ---------------------------------------------------------------------------
# Stdlib blocklists (shared with the intraprocedural rules).
# ---------------------------------------------------------------------------
SLEEP_CALLS = {"time.sleep"}

BLOCKING_IO_CALLS = {
    "open", "io.open",
    "json.load", "json.dump",
    "os.replace", "os.rename", "os.remove", "os.unlink",
    "os.makedirs", "os.mkdir",
    "shutil.copy", "shutil.copyfile", "shutil.move", "shutil.rmtree",
    "socket.create_connection",
    "tempfile.mkstemp", "tempfile.NamedTemporaryFile",
}

#: Blocking convenience-I/O method names on any receiver (Path I/O).
BLOCKING_IO_METHODS = {
    "read_text", "write_text", "read_bytes", "write_bytes",
    "mkdir", "unlink", "rglob", "glob", "exists", "is_file", "is_dir",
}

SUBPROCESS_PREFIXES = ("subprocess.",)
SUBPROCESS_CALLS = {"os.system", "os.popen"}

WALL_CLOCK = {
    "time.time", "time.time_ns", "time.localtime", "time.gmtime",
    "time.ctime", "time.strftime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

AMBIENT = {
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
    "secrets.choice",
}

#: numpy.random attributes that are *not* the legacy global-state API.
NUMPY_RANDOM_OK = {
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937", "RandomState",
}

#: Seedable generator constructors (ambient only when unseeded).
GENERATORS = {"numpy.random.default_rng", "random.Random"}

TRACER_METHODS = {"span", "instant", "counter"}


@dataclass
class Evidence:
    """Where a direct effect is performed."""

    target: str
    node: ast.AST

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 1)


@dataclass
class FunctionEffects:
    """Effect summary of one function."""

    qname: str
    #: effect -> first direct evidence in this function's own body.
    direct: Dict[str, Evidence] = field(default_factory=dict)
    #: Direct plus transitive effects.
    all: Set[str] = field(default_factory=set)
    #: effect -> callee qname the effect was inherited from (absent for
    #: direct effects).
    via: Dict[str, str] = field(default_factory=dict)

    def has(self, *effects: str) -> bool:
        return any(e in self.all for e in effects)


class EffectTable:
    """Effect summaries for every function in a call graph."""

    def __init__(self, graph: CallGraph) -> None:
        self.graph = graph
        self.by_function: Dict[str, FunctionEffects] = {}

    def of(self, qname: str) -> FunctionEffects:
        found = self.by_function.get(qname)
        if found is None:
            found = FunctionEffects(qname=qname)
        return found

    def chain(self, qname: str, effect: str) -> List[str]:
        """Call chain from ``qname`` down to the direct evidence, ending
        with the stdlib target in parentheses-free form.

        ``["a", "b", "c", "time.sleep"]`` reads a -> b -> c which calls
        ``time.sleep``.
        """
        links: List[str] = []
        current: Optional[str] = qname
        seen: Set[str] = set()
        while current is not None and current not in seen:
            seen.add(current)
            links.append(current)
            fx = self.by_function.get(current)
            if fx is None:
                break
            if effect in fx.direct:
                links.append(fx.direct[effect].target)
                break
            current = fx.via.get(effect)
        return links

    def render_chain(self, qname: str, effect: str) -> str:
        graph = self.graph
        parts: List[str] = []
        for link in self.chain(qname, effect):
            info = graph.functions.get(link)
            if info is not None:
                cls = f"{info.class_name}." if info.class_name else ""
                parts.append(f"{cls}{info.name}")
            else:
                parts.append(link)
        return " -> ".join(parts)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: CallGraph) -> "EffectTable":
        table = cls(graph)
        for qname, info in graph.functions.items():
            fx = FunctionEffects(qname=qname)
            for effect, evidence in _direct_effects(info):
                fx.direct.setdefault(effect, evidence)
            fx.all = set(fx.direct)
            table.by_function[qname] = fx

        # Caller-ward fixpoint over resolved call edges.
        worklist = [q for q, fx in table.by_function.items() if fx.all]
        while worklist:
            callee = worklist.pop()
            callee_fx = table.by_function[callee]
            for caller in graph.callers.get(callee, ()):
                caller_fx = table.by_function.get(caller)
                if caller_fx is None:
                    continue
                if not _has_call_edge(graph, caller, callee):
                    continue
                added = False
                for effect in callee_fx.all:
                    if effect not in caller_fx.all:
                        caller_fx.all.add(effect)
                        caller_fx.via[effect] = callee
                        added = True
                if added:
                    worklist.append(caller)
        return table


def _has_call_edge(graph: CallGraph, caller: str, callee: str) -> bool:
    return any(
        site.callee == callee and site.kind == KIND_CALL
        for site in graph.sites(caller)
    )


# ---------------------------------------------------------------------------
# Direct-effect extraction
# ---------------------------------------------------------------------------
def _direct_effects(info: FunctionInfo) -> Iterator[Tuple[str, Evidence]]:
    aliases = import_aliases(info.module.tree)
    parents = _parent_map(info.node)
    declared_nonlocal: Set[str] = set()
    params = _param_names(info.node)
    for node in _own_nodes(info.node):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared_nonlocal.update(node.names)
        elif isinstance(node, ast.Call):
            yield from _call_effects(node, aliases)
            if _is_unguarded_trace(node, parents):
                yield EMITS_TRACE, Evidence(
                    dotted_name(node.func) or "tracer", node
                )
        elif isinstance(node, (ast.Attribute, ast.Name)) and isinstance(
            node.ctx, ast.Load
        ):
            target = _resolve_imported(node, aliases)
            if target in WALL_CLOCK:
                yield READS_WALL_CLOCK, Evidence(target, node)
            elif target in AMBIENT:
                yield AMBIENT_ENTROPY, Evidence(target, node)
            elif target is not None:
                head, _, attr = target.rpartition(".")
                if head == "random" and attr not in ("Random", "SystemRandom"):
                    yield AMBIENT_ENTROPY, Evidence(target, node)
                elif head == "numpy.random" and attr not in NUMPY_RANDOM_OK:
                    yield AMBIENT_ENTROPY, Evidence(target, node)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target_node in targets:
                root = _store_root(target_node)
                if root is None:
                    continue
                if root in params or root in declared_nonlocal:
                    name = dotted_name(target_node) or root
                    yield MUTATES_NONLOCAL, Evidence(name, node)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            if node.id in declared_nonlocal:
                yield MUTATES_NONLOCAL, Evidence(node.id, node)


def _call_effects(
    call: ast.Call, aliases: Dict[str, str]
) -> Iterator[Tuple[str, Evidence]]:
    target = _resolve_imported(call.func, aliases)
    bare = dotted_name(call.func)
    # `open(...)` needs no import; treat bare builtins directly.
    name = target if target is not None else bare
    if name is not None:
        if name in SLEEP_CALLS:
            yield SLEEPS, Evidence(name, call)
            return
        if name in BLOCKING_IO_CALLS:
            yield BLOCKS_IO, Evidence(name, call)
            return
        if name in SUBPROCESS_CALLS or any(
            name.startswith(p) or name == p.rstrip(".")
            for p in SUBPROCESS_PREFIXES
        ):
            yield SPAWNS_SUBPROCESS, Evidence(name, call)
            return
        if name in WALL_CLOCK:
            yield READS_WALL_CLOCK, Evidence(name, call)
            return
        if name in AMBIENT:
            yield AMBIENT_ENTROPY, Evidence(name, call)
            return
        if name in GENERATORS and not call.args and not call.keywords:
            yield AMBIENT_ENTROPY, Evidence(f"{name}()", call)
            return
        head, _, attr = name.rpartition(".")
        if head == "random" and attr not in ("Random", "SystemRandom"):
            yield AMBIENT_ENTROPY, Evidence(name, call)
            return
        if head == "numpy.random" and attr not in NUMPY_RANDOM_OK:
            yield AMBIENT_ENTROPY, Evidence(name, call)
            return
    if (
        isinstance(call.func, ast.Attribute)
        and call.func.attr in BLOCKING_IO_METHODS
        and _is_pathlike_receiver(call.func.value)
    ):
        label = bare or f"<expr>.{call.func.attr}"
        yield BLOCKS_IO, Evidence(label, call)


def _is_pathlike_receiver(node: ast.AST) -> bool:
    """Heuristic: convenience-I/O methods count as blocking when the
    receiver looks like a filesystem path (``Path(...)``, ``*path*``,
    ``*dir*``, ``*file*`` names) -- matching the serve-hygiene rule's
    intent without flagging e.g. ``frame.read_text`` on unrelated
    objects."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func) or ""
        return name.split(".")[-1] in ("Path", "PurePath", "PosixPath")
    dotted = dotted_name(node)
    if dotted is None:
        return True  # computed receiver: stay conservative
    tail = dotted.split(".")[-1].lower()
    return any(hint in tail for hint in ("path", "dir", "file"))


def _parent_map(fn: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(fn):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _is_unguarded_trace(
    call: ast.Call, parents: Dict[ast.AST, ast.AST]
) -> bool:
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in TRACER_METHODS:
        return False
    receiver = dotted_name(func.value)
    if receiver is None or "tracer" not in receiver.lower():
        return False
    current: Optional[ast.AST] = parents.get(call)
    while current is not None:
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            return True
        if isinstance(current, (ast.If, ast.IfExp)) and any(
            isinstance(sub, ast.Attribute) and sub.attr == "enabled"
            for sub in ast.walk(current.test)
        ):
            return False
        current = parents.get(current)
    return True


def _own_nodes(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes of ``fn``'s own body, not nested definitions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _param_names(fn: ast.AST) -> Set[str]:
    if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return set()
    args = fn.args
    names = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}
    if args.vararg is not None:
        names.add(args.vararg.arg)
    if args.kwarg is not None:
        names.add(args.kwarg.arg)
    return names


def _store_root(node: ast.AST) -> Optional[str]:
    """Root Name of an Attribute/Subscript store target."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _resolve_imported(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Fully qualified name whose head was actually imported (mirrors
    the determinism rule: local variables named ``time`` never
    false-positive)."""
    dotted = dotted_name(node)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved = aliases.get(head)
    if resolved is None:
        return None
    return f"{resolved}.{rest}" if rest else resolved


def get_effects(project: Project) -> EffectTable:
    """The memoised effect table for ``project``."""
    cache = _analysis_cache(project)
    table = cache.get("effects")
    if table is None:
        table = EffectTable.build(get_callgraph(project))
        cache["effects"] = table
    return table
