"""Experiment harness: regenerates every table and figure of the paper.

Each public function returns structured rows/series *and* a formatted
text table, so the pytest benches in ``benchmarks/`` and the scripts in
``examples/`` share one implementation.  Simulation results are memoised
per (dataset, scale, accelerator, config) within a process, so the four
figure benches that read the same runs (Fig. 7/8/9/11) only simulate
once.
"""

from repro.bench.workloads import (
    BENCH_DATASETS,
    bench_scale,
    full_scale_requested,
    make_model,
)
from repro.bench.runner import (
    clear_cache,
    configure_runtime,
    job_spec,
    run_accelerator,
    run_suite,
    run_sweep,
)
from repro.bench.report import format_table, render_series
from repro.bench import tables, figures

__all__ = [
    "BENCH_DATASETS",
    "bench_scale",
    "full_scale_requested",
    "make_model",
    "run_accelerator",
    "run_suite",
    "run_sweep",
    "job_spec",
    "configure_runtime",
    "clear_cache",
    "format_table",
    "render_series",
    "tables",
    "figures",
]
