"""GraphDataset container validation and summaries."""

import pytest

from repro.graphs import GraphDataset
from repro.graphs.synthetic import power_law_graph, sparse_feature_matrix
from repro.sparse import COOMatrix, coo_to_csr


def _features(n, f=32, density=0.25, seed=0):
    return sparse_feature_matrix(n, f, density, seed=seed)


class TestValidation:
    def test_valid_construction(self, tiny_dataset):
        assert tiny_dataset.n_nodes == 48

    def test_rectangular_adjacency_rejected(self):
        adj = COOMatrix.empty((4, 5))
        with pytest.raises(ValueError, match="square"):
            GraphDataset("bad", adj, _features(4))

    def test_feature_row_mismatch_rejected(self):
        adj = power_law_graph(10, 20, seed=0)
        with pytest.raises(ValueError, match="features"):
            GraphDataset("bad", adj, _features(11))

    def test_nonpositive_hidden_dim_rejected(self):
        adj = power_law_graph(10, 20, seed=0)
        with pytest.raises(ValueError, match="hidden_dim"):
            GraphDataset("bad", adj, _features(10), hidden_dim=0)


class TestProperties:
    def test_edge_count(self, tiny_dataset):
        assert tiny_dataset.n_edges == tiny_dataset.adjacency.nnz

    def test_feature_length(self, tiny_dataset):
        assert tiny_dataset.feature_length == 32

    def test_sparsities_in_range(self, tiny_dataset):
        assert 0.0 <= tiny_dataset.adjacency_sparsity <= 1.0
        assert 0.0 <= tiny_dataset.feature_sparsity <= 1.0

    def test_feature_sparsity_value(self):
        adj = power_law_graph(10, 20, seed=0)
        feats = coo_to_csr(COOMatrix.empty((10, 4)))
        ds = GraphDataset("x", adj, feats)
        assert ds.feature_sparsity == 1.0

    def test_summary_keys(self, tiny_dataset):
        summary = tiny_dataset.summary()
        for key in ("name", "n_nodes", "n_edges", "top20_edge_share", "scale"):
            assert key in summary

    def test_repr(self, tiny_dataset):
        assert "tiny" in repr(tiny_dataset)
