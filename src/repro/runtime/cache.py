"""Persistent on-disk result cache keyed by job fingerprint.

Layout (one JSON record per simulated point, flat under the cache
directory)::

    <cache_dir>/
        <fingerprint>.json      # {"fingerprint", "spec", "result", ...}
        manifests/              # sweep manifests (written by the CLI)

Invalidation rules:

* the fingerprint already encodes the job schema version and the
  ``repro`` package version, so upgrading either simply stops hitting
  old records;
* a record whose embedded ``RunResult`` schema version no longer
  matches the code is treated as a miss and evicted;
* unreadable/corrupt records (truncated writes, bad JSON, missing
  keys) are evicted on first touch and counted in
  :attr:`ResultCache.corrupt` -- a damaged cache degrades to cold, it
  never fails a run.

Writes go through a same-directory temp file + ``os.replace`` so a
concurrent reader (or a killed writer) can never observe a partial
record.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time
from typing import Dict, Optional

from repro.hymm.base import RunResult
from repro.runtime.job import SCHEMA_VERSION, JobSpec


def default_cache_dir() -> pathlib.Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/hymm-repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path.home() / ".cache" / "hymm-repro"


class ResultCache:
    """Disk-backed map ``JobSpec fingerprint -> RunResult``."""

    def __init__(self, cache_dir: "Optional[os.PathLike[str]]" = None) -> None:
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else default_cache_dir()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: Counters since construction (surfaced in manifests).
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def _path(self, fingerprint: str) -> pathlib.Path:
        return self.cache_dir / f"{fingerprint}.json"

    def contains(self, spec: JobSpec) -> bool:
        return self._path(spec.fingerprint()).exists()

    def load(self, spec: JobSpec) -> Optional[RunResult]:
        """The cached result for ``spec``, or ``None`` (miss).

        Records that cannot be parsed or no longer match the current
        result schema are evicted and reported as misses.
        """
        path = self._path(spec.fingerprint())
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            result = RunResult.from_dict(record["result"])
        except FileNotFoundError:
            self.misses += 1
            return None
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            self.corrupt += 1
            self.misses += 1
            self._evict(path)
            return None
        self.hits += 1
        return result

    def store(self, spec: JobSpec, result: RunResult) -> pathlib.Path:
        """Atomically persist one result; returns the record path."""
        fingerprint = spec.fingerprint()
        path = self._path(fingerprint)
        record = {
            "fingerprint": fingerprint,
            "schema_version": SCHEMA_VERSION,
            "created_unix": time.time(),
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=self.cache_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh)
            os.replace(tmp_name, path)
        except BaseException:
            self._evict(pathlib.Path(tmp_name))
            raise
        self.stores += 1
        return path

    # ------------------------------------------------------------------
    @staticmethod
    def _evict(path: pathlib.Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every record; returns how many were removed."""
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            self._evict(path)
            removed += 1
        return removed

    def size(self) -> int:
        """Number of records currently on disk."""
        return sum(1 for _ in self.cache_dir.glob("*.json"))

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
        }
