"""Job execution: turn a :class:`JobSpec` into a :class:`RunResult`.

These are the only functions worker processes run, so they are plain
module-level callables (picklable by reference) and they import the
bench workload layer lazily to keep ``repro.runtime`` importable
without dragging in -- or cyclically re-entering -- ``repro.bench``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.hymm import HyMMAccelerator, HyMMConfig
from repro.hymm.base import AcceleratorBase, RunResult
from repro.obs.tracer import Tracer
from repro.runtime.job import JobSpec


def make_accelerator(
    kind: str,
    config: Optional[HyMMConfig] = None,
    sort_mode: Optional[str] = None,
    seed: int = 0,
) -> "AcceleratorBase":
    """Instantiate an accelerator by its report name.

    ``sort_mode`` selects HyMM's preprocessing ("degree", "none",
    "random"); it is an error for any other accelerator.  ``seed``
    (normally ``JobSpec.seed``) seeds any stochastic preprocessing --
    currently HyMM's ``"random"`` relabelling -- so the permutation is
    pinned by the job fingerprint rather than by a constant buried in
    the accelerator.
    """
    from repro.baselines import (
        CWPAccelerator,
        GCoDAccelerator,
        OPAccelerator,
        RWPAccelerator,
        TiledOPAccelerator,
    )

    if kind == "hymm":
        return HyMMAccelerator(
            config if config is not None else HyMMConfig(),
            sort_mode=sort_mode if sort_mode is not None else "degree",
            sort_seed=seed,
        )
    if sort_mode is not None:
        raise ValueError(f"sort_mode is only supported by 'hymm', not {kind!r}")
    if kind == "rwp":
        return RWPAccelerator(config)
    if kind == "op":
        return OPAccelerator(config)
    if kind == "op-deferred":
        return OPAccelerator(config, merge_mode="deferred")
    if kind == "op-tiled":
        return TiledOPAccelerator(config)
    if kind == "gcod":
        return GCoDAccelerator(config)
    if kind == "cwp":
        return CWPAccelerator(config)
    raise ValueError(f"unknown accelerator kind {kind!r}")


def _trace_session() -> Optional[object]:
    """A fresh :class:`repro.sim.replay.TraceSession` when the
    ``REPRO_TRACE_REPLAY`` environment variable names a trace
    directory, else ``None`` (replay off, the default).

    Opt-in by env var so every execution path -- serial runner, pool
    workers, the serve front end -- can enable phase replay without a
    signature change anywhere in between; replay is bit-identical to
    live simulation (see :mod:`repro.sim.replay`), so flipping it on
    never changes a result, only how fast it is produced.
    """
    import os

    trace_dir = os.environ.get("REPRO_TRACE_REPLAY")
    if not trace_dir:
        return None
    from repro.runtime.cache import TraceStore
    from repro.sim.replay import TraceSession

    return TraceSession(TraceStore(trace_dir))


def execute_spec(spec: JobSpec, tracer: Optional[Tracer] = None) -> RunResult:
    """Run one job in this process, returning the live result
    (including non-serialisable ``extra`` entries such as the HyMM
    region plan).

    ``tracer`` (optional) receives the run's simulated-time events --
    the ``python -m repro.obs trace`` entry point.  Tracing never
    changes the result: stats are identical with or without it.
    """
    from repro.bench.workloads import make_model

    model = make_model(
        spec.dataset,
        spec.scale,
        n_layers=spec.n_layers,
        seed=spec.seed,
        feature_length=spec.feature_length,
    )
    accelerator = make_accelerator(
        spec.kind, spec.config, spec.sort_mode, seed=spec.seed
    )
    return accelerator.run_inference(
        model, tracer=tracer, replay_session=_trace_session()
    )


def execute_job(spec: JobSpec) -> Dict[str, object]:
    """Worker entry point: run one job and return its serialised dict.

    Returning the wire form (rather than the live object) keeps the
    pool transport, the disk cache, and serial execution on one code
    path, which is what makes ``n_jobs=4`` bit-identical to serial.
    """
    return execute_spec(spec).to_dict()
