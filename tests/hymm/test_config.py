"""HyMMConfig validation and derived parameters (Table III defaults)."""

import pytest

from repro.hymm import HyMMConfig


class TestDefaults:
    def test_table3_values(self, config):
        assert config.n_pes == 16
        assert config.dmb_bytes == 256 * 1024
        assert config.lsq_entries == 128
        assert config.lsq_entry_bytes == 68
        assert config.smq_pointer_bytes == 4 * 1024
        assert config.smq_index_bytes == 12 * 1024

    def test_paper_policies_on_by_default(self, config):
        assert config.near_memory_accumulator
        assert config.op_first
        assert config.unified_buffer
        assert config.forwarding
        assert config.lru

    def test_capacity_lines(self, config):
        assert config.capacity_lines == 4096

    def test_smq_bytes(self, config):
        assert config.smq_bytes == 16 * 1024

    def test_lanes(self, config):
        assert config.lanes == 16

    def test_peak_gflops_matches_paper(self, config):
        # Section V: "HyMM achieve a performance of 32 GFLOPS".
        assert config.peak_gflops == 32.0

    def test_clock_validated(self):
        with pytest.raises(ValueError):
            HyMMConfig(clock_ghz=0.0)


class TestLinesPerRow:
    def test_sixteen_wide_is_one_line(self, config):
        assert config.lines_per_row(16) == 1

    def test_wider_rows(self, config):
        assert config.lines_per_row(17) == 2
        assert config.lines_per_row(32) == 2
        assert config.lines_per_row(33) == 3

    def test_narrow_rows_still_one(self, config):
        assert config.lines_per_row(1) == 1

    def test_invalid_width(self, config):
        with pytest.raises(ValueError):
            config.lines_per_row(0)


class TestValidation:
    def test_bad_pes(self):
        with pytest.raises(ValueError):
            HyMMConfig(n_pes=0)

    def test_dmb_smaller_than_line(self):
        with pytest.raises(ValueError):
            HyMMConfig(dmb_bytes=32)

    def test_line_value_alignment(self):
        with pytest.raises(ValueError):
            HyMMConfig(line_bytes=30)

    def test_bad_lsq(self):
        with pytest.raises(ValueError):
            HyMMConfig(lsq_entries=0)

    def test_bad_threshold_fraction(self):
        with pytest.raises(ValueError):
            HyMMConfig(threshold_fraction=0.0)

    def test_bad_resident_fraction(self):
        with pytest.raises(ValueError):
            HyMMConfig(resident_fraction=1.5)


class TestOverrides:
    def test_with_overrides_copies(self, config):
        other = config.with_overrides(dmb_bytes=128 * 1024)
        assert other.dmb_bytes == 128 * 1024
        assert config.dmb_bytes == 256 * 1024

    def test_overrides_validate(self, config):
        with pytest.raises(ValueError):
            config.with_overrides(n_pes=-1)

    def test_frozen(self, config):
        with pytest.raises(Exception):
            config.n_pes = 32
