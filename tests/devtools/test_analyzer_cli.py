"""End-to-end tests for ``python -m repro.devtools.analyzer``.

Each test builds a throwaway ``src/repro/...`` tree in tmp_path so the
CLI sees realistic module names, then drives ``cli.main`` directly and
asserts on exit codes and output.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools.analyzer import cli
from repro.devtools.analyzer.baseline import PLACEHOLDER_REASON, Baseline

DIRTY_MODULE = """\
import time


def stamp():
    return time.time()
"""

CLEAN_MODULE = """\
def stamp(now: float) -> float:
    return now
"""


def make_tree(root: Path, source: str) -> Path:
    pkg = root / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (root / "src" / "repro" / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "clock.py").write_text(source, encoding="utf-8")
    return root / "src"


def run_cli(args, capsys):
    code = cli.main([str(a) for a in args])
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, out, _ = run_cli([src], capsys)
        assert code == 0
        assert "0 finding(s)" in out

    def test_error_findings_exit_one(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        code, out, _ = run_cli([src], capsys)
        assert code == 1
        assert "determinism" in out
        assert "clock.py" in out

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, _, err = run_cli([src, "--rules", "no-such-rule"], capsys)
        assert code == 2
        assert "no-such-rule" in err

    def test_syntax_error_is_reported(self, tmp_path, capsys):
        src = make_tree(tmp_path, "def broken(:\n")
        code, _, err = run_cli([src], capsys)
        assert code == 2
        assert "cannot parse" in err


class TestJsonFormat:
    def test_findings_are_machine_readable(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        code, out, _ = run_cli([src, "--format", "json"], capsys)
        assert code == 1
        payload = json.loads(out)
        [finding] = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["line"] == 5
        assert finding["severity"] == "error"
        assert finding["key"].startswith("determinism::")
        assert payload["baselined"] == []
        assert payload["stale_baseline_keys"] == []

    def test_clean_tree_emits_empty_list(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        code, out, _ = run_cli([src, "--format", "json"], capsys)
        assert code == 0
        assert json.loads(out)["findings"] == []


class TestBaseline:
    def test_write_then_check_round_trips(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        baseline = tmp_path / "baseline.json"

        code, _, _ = run_cli([src, "--write-baseline", "--baseline", baseline], capsys)
        assert code == 0
        data = json.loads(baseline.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert all(e["reason"] == PLACEHOLDER_REASON for e in data["findings"])
        assert all(e["key"].startswith("determinism::") for e in data["findings"])

        # Same tree + baseline: the known finding is suppressed.
        code, out, _ = run_cli([src, "--baseline", baseline], capsys)
        assert code == 0
        assert "baselined" in out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        baseline = tmp_path / "baseline.json"
        run_cli([src, "--write-baseline", "--baseline", baseline], capsys)

        # Baseline keys are line-insensitive, so a *different* hazard is
        # needed to register as new (a second time.time() shares the key).
        clock = src / "repro" / "sim" / "clock.py"
        clock.write_text(
            "from datetime import datetime\n" + DIRTY_MODULE
            + "\n\ndef stamp2():\n    return datetime.now()\n",
            encoding="utf-8",
        )
        code, out, _ = run_cli([src, "--baseline", baseline], capsys)
        assert code == 1
        assert "datetime" in out
        assert "baselined" in out  # the original finding stays suppressed

    def test_stale_entries_are_reported(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_MODULE)
        baseline = tmp_path / "baseline.json"
        run_cli([src, "--write-baseline", "--baseline", baseline], capsys)

        (src / "repro" / "sim" / "clock.py").write_text(CLEAN_MODULE, encoding="utf-8")
        code, out, _ = run_cli([src, "--baseline", baseline], capsys)
        assert code == 0
        assert "stale" in out

    def test_malformed_baseline_is_usage_error(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_MODULE)
        baseline = tmp_path / "baseline.json"
        baseline.write_text('{"version": 1, "findings": [{"reason": "no key"}]}', encoding="utf-8")
        code, _, err = run_cli([src, "--baseline", baseline], capsys)
        assert code == 2
        assert "key" in err

    def test_baseline_reasons_survive_rewrite(self, tmp_path):
        b = Baseline(reasons={"determinism::a.py::x": "vetted 2026-08"})
        path = tmp_path / "b.json"
        b.dump(path)
        assert Baseline.load(path).reasons == b.reasons


class TestInlineSuppression:
    def test_allow_comment_silences_finding(self, tmp_path, capsys):
        src = make_tree(
            tmp_path,
            "import time\n\n\ndef stamp():\n"
            "    return time.time()  # analyzer: allow[determinism] -- test\n",
        )
        code, out, _ = run_cli([src], capsys)
        assert code == 0
        assert "0 finding(s)" in out


class TestListRules:
    def test_all_five_rules_registered(self, capsys):
        code, out, _ = run_cli(["--list-rules"], capsys)
        assert code == 0
        for name in (
            "determinism",
            "wire-schema",
            "stats-conservation",
            "config-hygiene",
            "mutable-state",
        ):
            assert name in out
