"""Dense matrix buffer (DMB) wiring: address map, unified buffer, and the
split-buffer ablation (paper Sections III and IV-D).

The DMB is physically :class:`repro.sim.buffer.CacheBuffer`; this module
adds the accelerator-level concerns:

* :class:`AddressMap` -- a flat line-address space with one region per
  logical matrix (W, XW, AXW) per layer, so distinct matrices never
  alias in the buffer;
* :class:`DenseMatrixBuffer` -- the unified buffer of the paper,
  construction from a :class:`repro.hymm.config.HyMMConfig`;
* :class:`SplitBufferPair` -- the prior-accelerator organisation
  ("prior GCN accelerators equip separated buffers for different types
  of matrices"): half the capacity for inputs (W, XW reads), half for
  outputs (AXW, partials).  Used by the unified-buffer ablation bench.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple, Union

import numpy as np

from repro.hymm.config import HyMMConfig
from repro.obs.tracer import Tracer
from repro.sim.buffer import (
    CLASS_OUT,
    CLASS_PARTIAL,
    CLASS_W,
    CLASS_XW,
    CacheBuffer,
    DEFAULT_EVICT_PRIORITY,
)
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats

#: Region ids of the address map (shifted into the high bits).
_SPACE_W = 1
_SPACE_XW = 2
_SPACE_OUT = 3

_SPACE_SHIFT = 40
_LAYER_SHIFT = 32


class AddressMap:
    """Line addresses for the dense matrices of a multi-layer GCN run.

    An address encodes ``(space, layer, row, line-within-row)``; rows of
    a matrix with more than 16 values span consecutive line indices.
    """

    def __init__(self, config: HyMMConfig) -> None:
        self.config = config

    def _addr(self, space: int, layer: int, line_index: int) -> int:
        if layer < 0 or layer >= (1 << (_SPACE_SHIFT - _LAYER_SHIFT)):
            raise ValueError(f"layer {layer} out of range")
        if line_index < 0 or line_index >= (1 << _LAYER_SHIFT):
            raise ValueError(f"line index {line_index} out of range")
        return (space << _SPACE_SHIFT) | (layer << _LAYER_SHIFT) | line_index

    def w_addr(self, layer: int, row: int, width: int, line: int = 0) -> int:
        """Address of line ``line`` of weight row ``row`` (``W[row, :]``)."""
        lpr = self.config.lines_per_row(width)
        return self._addr(_SPACE_W, layer, row * lpr + line)

    def xw_addr(self, layer: int, row: int, width: int, line: int = 0) -> int:
        """Address of line ``line`` of combination-result row ``XW[row, :]``."""
        lpr = self.config.lines_per_row(width)
        return self._addr(_SPACE_XW, layer, row * lpr + line)

    def out_addr(self, layer: int, row: int, width: int, line: int = 0) -> int:
        """Address of line ``line`` of output row ``AXW[row, :]``."""
        lpr = self.config.lines_per_row(width)
        return self._addr(_SPACE_OUT, layer, row * lpr + line)


class DenseMatrixBuffer(CacheBuffer):
    """The paper's unified DMB: one buffer for W, XW, AXW and partials."""

    def __init__(self, config: HyMMConfig, dram: DRAM, stats: SimStats) -> None:
        super().__init__(
            capacity_lines=config.capacity_lines,
            line_bytes=config.line_bytes,
            dram=dram,
            stats=stats,
            hit_latency=config.dmb_hit_latency,
            mshr_entries=config.mshr_entries,
            evict_priority=DEFAULT_EVICT_PRIORITY,
            lru=config.lru,
        )


class SplitBufferPair:
    """Separate input/output buffers (the non-unified ablation).

    Exposes the same access interface as :class:`CacheBuffer`; requests
    route by line class -- W and XW to the input half, AXW and partials
    to the output half.  Each half gets half the capacity, which is the
    hardware cost a fixed partition would pay.
    """

    _INPUT_CLASSES = (CLASS_W, CLASS_XW)

    def __init__(self, config: HyMMConfig, dram: DRAM, stats: SimStats) -> None:
        half = max(1, config.capacity_lines // 2)
        common = dict(
            line_bytes=config.line_bytes,
            dram=dram,
            stats=stats,
            hit_latency=config.dmb_hit_latency,
            mshr_entries=config.mshr_entries,
            lru=config.lru,
        )
        self.input_buffer = CacheBuffer(capacity_lines=half, **common)
        self.output_buffer = CacheBuffer(capacity_lines=half, **common)
        self.line_bytes = config.line_bytes

    def _route(self, cls: str) -> CacheBuffer:
        return self.input_buffer if cls in self._INPUT_CLASSES else self.output_buffer

    # --- CacheBuffer-compatible surface -------------------------------
    @property
    def evict_priority(self) -> Tuple[str, ...]:
        return self.input_buffer.evict_priority

    @evict_priority.setter
    def evict_priority(self, order: Iterable[str]) -> None:
        self.input_buffer.evict_priority = order
        self.output_buffer.evict_priority = order

    def read(self, cycle: float, addr: int, cls: str, tag: str) -> Tuple[float, float]:
        return self._route(cls).read(cycle, addr, cls, tag)

    def write(
        self, cycle: float, addr: int, cls: str, tag: str, allocate: bool = True
    ) -> float:
        return self._route(cls).write(cycle, addr, cls, tag, allocate=allocate)

    def accumulate(self, cycle: float, addr: int, tag: str = CLASS_PARTIAL) -> float:
        return self.output_buffer.accumulate(cycle, addr, tag)

    def flush(self, cycle: float, cls: Optional[str] = None, tag: Optional[str] = None) -> float:
        end = self.input_buffer.flush(cycle, cls=cls, tag=tag)
        return self.output_buffer.flush(end, cls=cls, tag=tag)

    def drop_spilled_partials(self) -> int:
        return self.output_buffer.drop_spilled_partials()

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to both physical halves."""
        self.input_buffer.set_tracer(tracer)
        self.output_buffer.set_tracer(tracer)

    def invalidate(self, cls: str) -> int:
        return self.input_buffer.invalidate(cls) + self.output_buffer.invalidate(cls)

    def reclassify(self, from_cls: str, to_cls: str, cycle: float = 0.0) -> int:
        src_is_input = from_cls in self._INPUT_CLASSES
        dst_is_input = to_cls in self._INPUT_CLASSES
        if src_is_input == dst_is_input:
            return self._route(from_cls).reclassify(from_cls, to_cls, cycle)
        # Crossing the physical split: a fixed-partition design cannot
        # relabel in place, so the data is written back instead -- one
        # of the costs the unified buffer avoids.
        src = self._route(from_cls)
        n = src.resident_lines(from_cls)
        src.flush(cycle, cls=from_cls, tag=to_cls)
        src.drop_spilled_partials()
        return n

    def contains(self, addr: int) -> bool:
        return self.input_buffer.contains(addr) or self.output_buffer.contains(addr)

    def route(self, cls: str) -> CacheBuffer:
        """The physical half requests of class ``cls`` land in (the
        batched engine resolves this once per address batch)."""
        return self._route(cls)

    def classify_batch(self, addrs: np.ndarray) -> np.ndarray:
        """Union residency mask across both halves (batched
        :meth:`contains`; same invariance caveats as the halves')."""
        return self.input_buffer.classify_batch(addrs) | self.output_buffer.classify_batch(addrs)

    def occupancy_by_class(self) -> Dict[str, int]:
        merged = self.input_buffer.occupancy_by_class()
        for cls, lines in self.output_buffer.occupancy_by_class().items():
            merged[cls] = merged.get(cls, 0) + lines
        return merged

    @property
    def size_lines(self) -> int:
        return self.input_buffer.size_lines + self.output_buffer.size_lines

    def snapshot_state(self) -> Dict[str, object]:
        """Snapshot both physical halves (trace replay)."""
        return {
            "input": self.input_buffer.snapshot_state(),
            "output": self.output_buffer.snapshot_state(),
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore both physical halves from :meth:`snapshot_state`."""
        self.input_buffer.restore_state(state["input"])  # type: ignore[arg-type]
        self.output_buffer.restore_state(state["output"])  # type: ignore[arg-type]


def make_buffer(
    config: HyMMConfig, dram: DRAM, stats: SimStats
) -> Union[DenseMatrixBuffer, SplitBufferPair]:
    """Build the buffer organisation the config asks for."""
    if config.unified_buffer:
        return DenseMatrixBuffer(config, dram, stats)
    return SplitBufferPair(config, dram, stats)
