"""Table II: dataset statistics and degree-sorting cost.

Spec columns restate the published numbers; measured columns come from
the synthesised instances at the bench scale.  The sorting-cost column
reproduces the paper's trend (cost grows with graph size; Cora ~0.6 ms
at full scale on the authors' machine).
"""

from repro.bench import tables
from repro.bench.workloads import BENCH_DATASETS


def test_table2_datasets(benchmark, emit):
    result = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
    emit("table2_datasets", result["text"])
    assert len(result["rows"]) == len(BENCH_DATASETS)
    # Sorting cost must grow with graph size overall (first vs last row).
    sort_ms = [row[-1] for row in result["rows"]]
    assert sort_ms[-1] > sort_ms[0]
