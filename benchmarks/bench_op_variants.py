"""Outer-product design points (extension study).

Three ways to organise an OP engine's partial outputs, against HyMM:

* ``op``          -- naive scattered read-modify-write (the paper's proxy);
* ``op-deferred`` -- append-all-partials, merge later (OuterSpace);
* ``op-tiled``    -- output-row tiling so partials always hit on-chip,
                     paying dense-operand re-streaming per band (what
                     GCNAX's loop optimisation actually buys).

The interesting crossover: tiling is excellent while the output fits in
a handful of bands, but its re-streaming traffic grows with the band
count, i.e. with graph size -- exactly the regime where HyMM's hybrid
(which streams the dense operand once) keeps its advantage.
"""

from repro.bench import format_table
from repro.bench.runner import aggregation_cycles, run_suite
from repro.graphs.registry import get_spec

_KINDS = ("op", "op-deferred", "op-tiled", "hymm")
_DATASETS = ("cora", "amazon-photo", "flickr", "yelp")


def test_op_variants(benchmark, emit):
    def run_all():
        headers = ["dataset", "variant", "total cycles", "agg cycles", "DRAM MB"]
        rows, data = [], {}
        for name in _DATASETS:
            runs = run_suite(name, kinds=_KINDS)
            abbr = get_spec(name).abbrev
            data[abbr] = runs
            for kind in _KINDS:
                r = runs[kind]
                rows.append([
                    abbr, kind, r.stats.cycles,
                    int(aggregation_cycles(r)),
                    r.stats.dram_total_bytes() / (1024 * 1024),
                ])
        return data, format_table(headers, rows)

    data, text = benchmark.pedantic(run_all, rounds=1, iterations=1)
    emit("op_variants", text)

    for abbr, runs in data.items():
        # Tiling always beats the naive OP (it removes the thrash).
        assert runs["op-tiled"].stats.cycles < runs["op"].stats.cycles, abbr
        # The deferred organisation always moves the most DRAM bytes.
        assert runs["op-deferred"].stats.dram_total_bytes() == max(
            r.stats.dram_total_bytes() for r in runs.values()
        ), abbr
        # HyMM never loses to the naive OP.
        assert runs["hymm"].stats.cycles <= runs["op"].stats.cycles, abbr
