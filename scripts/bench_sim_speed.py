#!/usr/bin/env python3
"""Wall-clock benchmark of the scalar vs batched timing engines.

Runs every baseline accelerator plus HyMM over the full registry bench
suite under both engine implementations and records the median
wall-clock seconds of each, plus the resulting speedups, as one new
entry in the append-only trajectory ``BENCH_sim.json`` in the
repository root.  Each entry is keyed by git SHA and date, so the
performance history survives across PRs; an entry also reports its
batched-engine speedup against the most recent previous entry with the
same workload signature (the cross-PR regression signal).

The two engines are cycle- and stats-exact by contract (see
``tests/sim/test_engine_equivalence.py``), so the only thing this
measures is simulator throughput: how fast the host executes the same
simulated machine.

Usage::

    PYTHONPATH=src python scripts/bench_sim_speed.py
        [--datasets cora amazon-photo] [--kinds op rwp hymm]
        [--repeats 3] [--output BENCH_sim.json]

    PYTHONPATH=src python scripts/bench_sim_speed.py --smoke

``--smoke`` is the CI guard: a tiny fixed workload, nothing written to
the trajectory, non-zero exit if the batched engine is not faster than
the scalar reference.

Everything is seeded; dataset synthesis and model weights are identical
across engines and repeats, so run-to-run variance is host noise only
(hence the median).
"""

from __future__ import annotations

import argparse
import datetime
import json
import statistics
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.bench.workloads import BENCH_DATASETS, bench_scale, make_model
from repro.runtime.execute import make_accelerator

#: Every accelerator the equivalence tests cover, Table I order-ish.
ALL_KINDS = ("op", "rwp", "cwp", "gcod", "op-deferred", "op-tiled", "hymm")
ENGINES = ("scalar", "batched")
SEED = 0
N_LAYERS = 2

#: The CI smoke workload: small, fast, still exercising eviction
#: pressure and all three dataflow families.
SMOKE_DATASETS = ("cora",)
SMOKE_KINDS = ("op", "rwp", "hymm")
SMOKE_SCALE = 0.5


def time_run(kind: str, engine: str, model) -> float:
    acc = make_accelerator(kind)
    acc.config = acc.config.with_overrides(engine=engine)
    start = time.perf_counter()
    acc.run_inference(model)
    return time.perf_counter() - start


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: Path) -> Dict[str, Any]:
    """Read the trajectory file, migrating the pre-trajectory format
    (one flat report dict) into the first run entry."""
    if not path.exists():
        return {"schema": 2, "runs": []}
    data = json.loads(path.read_text(encoding="utf-8"))
    if "runs" in data:
        return data
    legacy = dict(data)
    legacy.setdefault("sha", "pre-trajectory")
    legacy.setdefault("date", "")
    return {"schema": 2, "runs": [legacy]}


def previous_matching(
    runs: List[Dict[str, Any]], workload: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Most recent earlier run with the same workload signature."""
    signature = ("datasets", "kinds", "n_layers", "seed", "scales")
    for run in reversed(runs):
        prev = run.get("workload", {})
        if all(prev.get(key) == workload.get(key) for key in signature):
            return run
    return None


def bench(
    datasets: List[str],
    kinds: List[str],
    repeats: int,
    scale_override: Optional[float] = None,
) -> Dict[str, Any]:
    scales = {
        name: scale_override if scale_override is not None else bench_scale(name)
        for name in datasets
    }
    run: Dict[str, Any] = {
        "sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d"),
        "workload": {
            "datasets": list(datasets),
            "kinds": list(kinds),
            "scales": scales,
            "n_layers": N_LAYERS,
            "seed": SEED,
            "repeats": repeats,
            "statistic": "median",
        },
        "results": {},
    }
    grand = {engine: 0.0 for engine in ENGINES}
    for name in datasets:
        model = make_model(name, scales[name], N_LAYERS, SEED)
        for kind in kinds:
            medians = {}
            for engine in ENGINES:
                samples = [time_run(kind, engine, model) for _ in range(repeats)]
                medians[engine] = statistics.median(samples)
                grand[engine] += medians[engine]
            entry = {
                "scalar_seconds": round(medians["scalar"], 4),
                "batched_seconds": round(medians["batched"], 4),
                "speedup": round(medians["scalar"] / medians["batched"], 3),
            }
            run["results"][f"{name}/{kind}"] = entry
            print(
                f"{name:20s} {kind:12s} scalar={entry['scalar_seconds']:8.3f}s "
                f"batched={entry['batched_seconds']:8.3f}s "
                f"speedup={entry['speedup']:.2f}x",
                flush=True,
            )
    run["aggregate"] = {
        "scalar_seconds": round(grand["scalar"], 4),
        "batched_seconds": round(grand["batched"], 4),
        "speedup": round(grand["scalar"] / grand["batched"], 3),
    }
    print(
        f"aggregate: scalar={run['aggregate']['scalar_seconds']:.2f}s "
        f"batched={run['aggregate']['batched_seconds']:.2f}s "
        f"speedup={run['aggregate']['speedup']:.2f}x"
    )
    return run


def attach_vs_previous(run: Dict[str, Any], prev: Dict[str, Any]) -> None:
    """Cross-PR comparison: this run's batched engine against the
    previous matching entry's (per result and in aggregate)."""
    per_result = {}
    for key, entry in run["results"].items():
        old = prev.get("results", {}).get(key)
        if old and entry["batched_seconds"] > 0:
            per_result[key] = round(
                old["batched_seconds"] / entry["batched_seconds"], 3
            )
    comparison = {
        "sha": prev.get("sha", "unknown"),
        "date": prev.get("date", ""),
        "batched_speedup": per_result,
    }
    old_agg = prev.get("aggregate", {}).get("batched_seconds")
    new_agg = run["aggregate"]["batched_seconds"]
    if old_agg and new_agg:
        comparison["aggregate_batched_speedup"] = round(old_agg / new_agg, 3)
        print(
            f"vs previous entry {comparison['sha']}: batched engine "
            f"{comparison['aggregate_batched_speedup']:.2f}x faster in aggregate"
        )
    run["vs_previous"] = comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--datasets", nargs="+", default=list(BENCH_DATASETS))
    parser.add_argument(
        "--kinds",
        nargs="+",
        default=list(ALL_KINDS),
        choices=list(ALL_KINDS),
        metavar="KIND",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed workload, no trajectory write; exit 1 unless the "
        "batched engine beats the scalar reference",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
    )
    args = parser.parse_args()

    if args.smoke:
        run = bench(
            list(SMOKE_DATASETS), list(SMOKE_KINDS), repeats=1,
            scale_override=SMOKE_SCALE,
        )
        speedup = run["aggregate"]["speedup"]
        if speedup < 1.0:
            print(
                f"SMOKE FAIL: batched engine slower than scalar "
                f"({speedup:.2f}x)",
                file=sys.stderr,
            )
            sys.exit(1)
        print(f"smoke ok: batched {speedup:.2f}x scalar")
        return

    trajectory = load_trajectory(args.output)
    run = bench(args.datasets, args.kinds, args.repeats)
    prev = previous_matching(trajectory["runs"], run["workload"])
    if prev is not None:
        attach_vs_previous(run, prev)
    trajectory["runs"].append(run)
    args.output.write_text(json.dumps(trajectory, indent=1) + "\n", encoding="utf-8")
    print(f"appended run {run['sha']} to {args.output} "
          f"({len(trajectory['runs'])} entries)")


if __name__ == "__main__":
    main()
