"""Fixture for the determinism rule's interprocedural escape pass.

Loaded as ``repro.sim.det_escape_fixture`` together with
``det_escape_helper.py`` (as ``repro.util.det_helper``).  Calling an
out-of-scope helper that reads wall-clock time is a finding at the
call site; the pure helper is clean, and the helper's own body -- out
of scope -- is never flagged directly.
"""

from repro.util.det_helper import pure, stamp, stamp_indirect


def simulate_with_timestamp(config):
    started = stamp()  # VIOLATION: escape to wall-clock helper
    return config, started


def simulate_deep_timestamp(config):
    return config, stamp_indirect()  # VIOLATION: two hops down


def simulate_pure(config):
    return pure(config)  # clean
