"""Off-chip DRAM model.

The paper assumes 64 GB/s of off-chip bandwidth (Section IV).  At the
accelerator's 1 GHz clock (32 GFLOPS over 16 two-op MACs, Table III)
that is 64 bytes -- exactly one buffer line -- per cycle.

The model is a single shared bandwidth channel plus a fixed access
latency:

* every access occupies the channel for ``ceil(bytes / bytes_per_cycle)``
  cycles starting no earlier than both the request time and the time the
  channel frees up -- so streamed and random traffic from all engines
  contend for the same bytes;
* reads complete ``latency_cycles`` after their data finishes
  transferring; writes are posted (fire-and-forget) and only consume
  bandwidth.

``stream_read`` models SMQ-style sequential prefetch streams whose
latency is hidden by buffering: it charges bandwidth but the caller
does not wait for the latency.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping

from repro.sim.stats import SimStats


@dataclass(frozen=True)
class DRAMConfig:
    """Off-chip memory parameters (defaults follow the paper)."""

    #: Peak bandwidth in bytes per accelerator cycle (64 GB/s at 1 GHz).
    bytes_per_cycle: float = 64.0
    #: Access latency in cycles from end of transfer to data available.
    latency_cycles: int = 100

    def __post_init__(self) -> None:
        if self.bytes_per_cycle <= 0:
            raise ValueError("bytes_per_cycle must be positive")
        if self.latency_cycles < 0:
            raise ValueError("latency_cycles must be non-negative")

    def cycles_for(self, nbytes: int) -> float:
        """Channel cycles ``nbytes`` occupy.

        The single source of the bandwidth division: :meth:`DRAM._occupy`
        and the batched engine's inlined stream path both use it, so a
        precomputed per-line cost is bit-identical to the per-access
        scalar computation.
        """
        return nbytes / self.bytes_per_cycle

    # ------------------------------------------------------------------
    # Serialisation (nested inside HyMMConfig on the runtime wire)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "bytes_per_cycle": self.bytes_per_cycle,
            "latency_cycles": self.latency_cycles,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DRAMConfig":
        """Inverse of :meth:`to_dict`; rejects unknown fields so schema
        drift surfaces as an error, not a silently-default parameter."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown DRAMConfig fields: {sorted(unknown)}")
        return cls(**dict(data))


class DRAM:
    """Shared-channel DRAM with bandwidth occupancy and read latency."""

    def __init__(self, config: DRAMConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        #: Cycle at which the bandwidth channel next becomes free.
        self.next_free = 0.0

    def _occupy(self, cycle: float, nbytes: int) -> float:
        """Reserve channel time for ``nbytes``; returns transfer-end cycle."""
        start = max(float(cycle), self.next_free)
        self.next_free = start + self.config.cycles_for(nbytes)
        return self.next_free

    def read(self, cycle: float, nbytes: int, tag: str) -> float:
        """Demand read; returns the cycle the data is available on-chip."""
        if nbytes <= 0:
            return float(cycle)
        self.stats.dram_read_bytes[tag] += nbytes
        end = self._occupy(cycle, nbytes)
        return end + self.config.latency_cycles

    def write(self, cycle: float, nbytes: int, tag: str) -> float:
        """Posted write; returns transfer-end (callers normally ignore it)."""
        if nbytes <= 0:
            return float(cycle)
        self.stats.dram_write_bytes[tag] += nbytes
        return self._occupy(cycle, nbytes)

    def stream_read(self, cycle: float, nbytes: int, tag: str) -> float:
        """Sequential prefetch stream: charges bandwidth, hides latency.

        Returns the transfer-end cycle so a caller that outruns the
        stream (consuming faster than bandwidth allows) can throttle.
        """
        if nbytes <= 0:
            return float(cycle)
        self.stats.dram_read_bytes[tag] += nbytes
        return self._occupy(cycle, nbytes)

    @property
    def busy_until(self) -> float:
        """Cycle when all accepted traffic has finished transferring."""
        return self.next_free
