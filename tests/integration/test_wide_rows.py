"""Wide-vector coverage: hidden dimensions beyond one 64-byte line.

Table II uses layer dimension 16 (exactly one line), so the
multi-line-per-row paths (lpr > 1) need their own end-to-end coverage:
every dataflow must stay numerically correct, and byte/cycle accounting
must scale with the line count.
"""

import numpy as np
import pytest

from repro import (
    GCNModel,
    HyMMAccelerator,
    OPAccelerator,
    RWPAccelerator,
    reference_inference,
)
from repro.baselines import CWPAccelerator, TiledOPAccelerator
from repro.graphs import GraphDataset
from repro.graphs.synthetic import power_law_graph, sparse_feature_matrix


def make_wide_model(hidden_dim: int, n_layers: int = 1):
    adjacency = power_law_graph(56, 224, seed=17)
    features = sparse_feature_matrix(56, 48, density=0.25, seed=18)
    dataset = GraphDataset("wide", adjacency, features, hidden_dim=hidden_dim)
    return GCNModel(dataset, n_layers=n_layers, seed=19)


@pytest.mark.parametrize("hidden_dim", [24, 32, 48])
@pytest.mark.parametrize(
    "cls",
    [RWPAccelerator, OPAccelerator, CWPAccelerator, TiledOPAccelerator,
     HyMMAccelerator],
)
def test_wide_rows_correct_on_every_dataflow(hidden_dim, cls):
    model = make_wide_model(hidden_dim)
    ref = reference_inference(model.dataset, model.weight_list)
    result = cls().run_inference(model)
    np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)


def test_wide_rows_two_layers():
    model = make_wide_model(32, n_layers=2)
    ref = reference_inference(model.dataset, model.weight_list)
    result = HyMMAccelerator().run_inference(model)
    np.testing.assert_allclose(result.outputs[-1], ref[-1], rtol=1e-2, atol=1e-3)


def test_wider_rows_cost_proportionally_more():
    """Doubling the vector width (1 line -> 2 lines) roughly doubles
    both the aggregation compute and the output traffic."""
    narrow = HyMMAccelerator().run_inference(make_wide_model(16))
    wide = HyMMAccelerator().run_inference(make_wide_model(32))
    assert wide.stats.busy_cycles > 1.5 * narrow.stats.busy_cycles
    assert wide.stats.dram_write_bytes["AXW"] > 1.5 * narrow.stats.dram_write_bytes["AXW"]


def test_odd_width_rounds_up_to_lines():
    """A 24-wide row still occupies two full 64-byte lines."""
    r24 = HyMMAccelerator().run_inference(make_wide_model(24))
    r32 = HyMMAccelerator().run_inference(make_wide_model(32))
    assert r24.stats.dram_write_bytes["AXW"] == r32.stats.dram_write_bytes["AXW"]


def test_partials_track_lines_not_rows():
    model = make_wide_model(32)
    result = OPAccelerator().run_inference(model)
    # Each non-zero emits one partial per line of the output row.
    nnz_adj = model.norm_adj.nnz
    nnz_x = model.dataset.features.nnz
    assert result.stats.partials_produced == 2 * (nnz_adj + nnz_x)