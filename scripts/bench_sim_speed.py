#!/usr/bin/env python3
"""Wall-clock benchmark of the simulator timing pipeline.

Runs every baseline accelerator plus HyMM over the full registry bench
suite under three pipelines and records the median wall-clock seconds
of each, plus the resulting speedups, as one new entry in the
append-only trajectory ``BENCH_sim.json`` in the repository root:

* ``scalar`` -- the reference event-at-a-time engine;
* ``batched`` -- the epoch-vectorized engine;
* ``replay`` -- record the phase traces once (batched engine), then
  replay them from the trace store.  This is the steady state of an
  ablation sweep or autotuner run, where later configs share phases
  with an earlier one and skip the buffer model entirely.

Each entry is keyed by git SHA and date, so the performance history
survives across PRs; an entry also reports its batched-engine speedup
against the most recent previous entry with the same workload
signature (the cross-PR regression signal).  Entries without a real
git identity -- the migrated pre-trajectory report (sha
``pre-trajectory``, empty date) -- never serve as comparison anchors.
The aggregate headline ``speedup`` is scalar vs the warm-trace replay
pipeline (the ROADMAP metric); ``batched_speedup`` keeps the cold-run
number honest.

Cold runs are additionally split into *engine* time (wall-clock inside
the access/execute engines' batch methods -- the code the epoch
vectorization actually touches) and everything else (dataset
synthesis, dataflow drivers, host compute).  The split is measured by
timing wrappers around the batch methods of both engine classes, so
``engine_speedup`` per point and ``engine_only_speedup`` in aggregate
isolate the engine win from the fixed driver overhead that dilutes
``batched_speedup``.

All three pipelines are stats-exact by contract (see
``tests/sim/test_engine_equivalence.py`` and
``tests/sim/test_replay.py``), so the only thing this measures is
simulator throughput: how fast the host produces the same simulated
machine's numbers.

Usage::

    PYTHONPATH=src python scripts/bench_sim_speed.py
        [--datasets cora amazon-photo] [--kinds op rwp hymm]
        [--repeats 3] [--output BENCH_sim.json]

    PYTHONPATH=src python scripts/bench_sim_speed.py --smoke

``--smoke`` is the CI guard: a tiny fixed workload, nothing written to
the trajectory, non-zero exit if the batched engine is not faster than
the scalar reference.

Everything is seeded; dataset synthesis and model weights are identical
across engines and repeats, so run-to-run variance is host noise only
(hence the median).
"""

from __future__ import annotations

import argparse
import contextlib
import datetime
import functools
import json
import statistics
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.bench.workloads import BENCH_DATASETS, bench_scale, make_model
from repro.runtime.execute import make_accelerator

#: Every accelerator the equivalence tests cover, Table I order-ish.
ALL_KINDS = ("op", "rwp", "cwp", "gcod", "op-deferred", "op-tiled", "hymm")
ENGINES = ("scalar", "batched")
SEED = 0
N_LAYERS = 2

#: The CI smoke workload: small, fast, still exercising eviction
#: pressure and all three dataflow families.
SMOKE_DATASETS = ("cora",)
SMOKE_KINDS = ("op", "rwp", "hymm")
SMOKE_SCALE = 0.5


#: The batch entry points of both engine classes.  These carry the
#: event-processing work (the singles -- ``mac_local``, ``alu_op``,
#: ``wait_until`` -- are trivial), so time inside them *is* engine
#: time; everything outside is driver/host overhead shared by every
#: engine.
ENGINE_BATCH_METHODS = (
    "mac_load_batch",
    "load_batch",
    "mac_stream_load_batch",
    "store_batch",
    "accumulate_store_batch",
    "merge_rmw_batch",
)


@contextlib.contextmanager
def engine_timer() -> Iterator[Dict[str, float]]:
    """Accumulate wall-clock spent inside the engines' batch methods.

    Patches :data:`ENGINE_BATCH_METHODS` on both engine classes with
    identical timing wrappers and restores them on exit.  Only methods
    defined directly on a class are wrapped (inherited ones are already
    wrapped on the base), and neither engine's batch methods call
    ``super()``, so every call is counted exactly once.  Wrapper cost
    is two ``perf_counter`` reads per *batch* (not per event) --
    negligible against the batch bodies being measured.
    """
    from repro.sim.engine import AccessExecuteEngine, BatchedAccessExecuteEngine

    clock = {"seconds": 0.0}

    def wrap(fn):
        @functools.wraps(fn)
        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return fn(*args, **kwargs)
            finally:
                clock["seconds"] += time.perf_counter() - start

        return timed

    saved = []
    try:
        for cls in (AccessExecuteEngine, BatchedAccessExecuteEngine):
            for name in ENGINE_BATCH_METHODS:
                if name not in cls.__dict__:
                    continue
                original = cls.__dict__[name]
                saved.append((cls, name, original))
                setattr(cls, name, wrap(original))
        yield clock
    finally:
        for cls, name, original in saved:
            setattr(cls, name, original)


def time_run(kind: str, engine: str, model):
    acc = make_accelerator(kind)
    acc.config = acc.config.with_overrides(engine=engine)
    with engine_timer() as clock:
        start = time.perf_counter()
        result = acc.run_inference(model)
        total = time.perf_counter() - start
    return total, clock["seconds"], result


def time_replay_runs(kind: str, model, trace_root, repeats: int):
    """Record the phase traces once (batched engine, untimed beyond
    ``record_seconds``), then time ``repeats`` warm-trace replay runs.

    Raises if any replay run falls back to live simulation -- a silent
    fallback would report simulation time as replay time.
    """
    from repro.runtime.cache import TraceStore
    from repro.sim.replay import TraceSession

    store = TraceStore(trace_root)

    def run_with(session):
        acc = make_accelerator(kind)
        acc.config = acc.config.with_overrides(engine="batched")
        start = time.perf_counter()
        result = acc.run_inference(model, replay_session=session)
        return time.perf_counter() - start, result

    recorder = TraceSession(store)
    record_seconds, _ = run_with(recorder)
    if not recorder.recorded:
        raise RuntimeError(f"{kind}: recording run recorded no phases")
    samples = []
    for _ in range(repeats):
        session = TraceSession(store)
        dt, result = run_with(session)
        if session.recorded or len(session.replayed) != len(recorder.recorded):
            raise RuntimeError(
                f"{kind}: replay run fell back to live simulation "
                f"({len(session.replayed)}/{len(recorder.recorded)} phases replayed)"
            )
        samples.append(dt)
    return record_seconds, samples, result


def profile_run(kind: str, model, top: int = 15) -> None:
    """One batched run under cProfile; prints the ``top`` frames by
    ``tottime`` (the docs/performance.md profiling recipe, codified).
    Runs outside the timing loop, so profiling overhead never taints
    the recorded medians."""
    import cProfile
    import io
    import pstats

    acc = make_accelerator(kind)
    acc.config = acc.config.with_overrides(engine="batched")
    profiler = cProfile.Profile()
    profiler.enable()
    acc.run_inference(model)
    profiler.disable()
    out = io.StringIO()
    pstats.Stats(profiler, stream=out).sort_stats("tottime").print_stats(top)
    print(out.getvalue(), flush=True)


def git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_trajectory(path: Path) -> Dict[str, Any]:
    """Read the trajectory file, migrating the pre-trajectory format
    (one flat report dict) into the first run entry."""
    if not path.exists():
        return {"schema": 2, "runs": []}
    data = json.loads(path.read_text(encoding="utf-8"))
    if "runs" in data:
        return data
    legacy = dict(data)
    legacy.setdefault("sha", "pre-trajectory")
    legacy.setdefault("date", "")
    return {"schema": 2, "runs": [legacy]}


def comparable_identity(run: Dict[str, Any]) -> bool:
    """Whether an entry can anchor a cross-PR comparison.

    The migrated pre-trajectory report carries ``sha:
    "pre-trajectory"`` and an empty ``date`` (and sha resolution can
    fail outside a checkout, leaving ``"unknown"``); such entries are
    measurement provenance, not comparison anchors -- a "vs previous"
    line naming no commit is unactionable.
    """
    sha = run.get("sha") or ""
    return bool(run.get("date")) and sha not in ("", "pre-trajectory", "unknown")


def previous_matching(
    runs: List[Dict[str, Any]], workload: Dict[str, Any]
) -> Optional[Dict[str, Any]]:
    """Most recent earlier run with the same workload signature and a
    real git identity (see :func:`comparable_identity`)."""
    signature = ("datasets", "kinds", "n_layers", "seed", "scales")
    for run in reversed(runs):
        if not comparable_identity(run):
            continue
        prev = run.get("workload", {})
        if all(prev.get(key) == workload.get(key) for key in signature):
            return run
    return None


def bench(
    datasets: List[str],
    kinds: List[str],
    repeats: int,
    scale_override: Optional[float] = None,
    profile: bool = False,
) -> Dict[str, Any]:
    scales = {
        name: scale_override if scale_override is not None else bench_scale(name)
        for name in datasets
    }
    run: Dict[str, Any] = {
        "sha": git_sha(),
        "date": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%d"),
        "workload": {
            "datasets": list(datasets),
            "kinds": list(kinds),
            "scales": scales,
            "n_layers": N_LAYERS,
            "seed": SEED,
            "repeats": repeats,
            "statistic": "median",
        },
        "results": {},
    }
    grand = {engine: 0.0 for engine in ENGINES}
    grand["replay"] = 0.0
    grand_engine = {engine: 0.0 for engine in ENGINES}
    with tempfile.TemporaryDirectory(prefix="bench-traces-") as trace_root:
        for name in datasets:
            model = make_model(name, scales[name], N_LAYERS, SEED)
            for kind in kinds:
                medians = {}
                engine_medians = {}
                result = None
                for engine in ENGINES:
                    samples = []
                    engine_samples = []
                    for _ in range(repeats):
                        dt, engine_dt, result = time_run(kind, engine, model)
                        samples.append(dt)
                        engine_samples.append(engine_dt)
                    medians[engine] = statistics.median(samples)
                    grand[engine] += medians[engine]
                    engine_medians[engine] = statistics.median(engine_samples)
                    grand_engine[engine] += engine_medians[engine]
                record_s, replay_samples, result = time_replay_runs(
                    kind, model, trace_root, repeats
                )
                medians["replay"] = statistics.median(replay_samples)
                grand["replay"] += medians["replay"]
                # Per-dataflow miss rate, from the last run's stats (the
                # pipelines are stats-exact, so any run serves).
                # Attributes each speedup to hit-path vs miss-path work:
                # a low miss rate means the all-hit lanes carry the
                # workload, a high one means the epoch miss path does.
                stats = result.stats
                hits = sum(stats.buffer_hits.values())
                misses = sum(stats.buffer_misses.values())
                lookups = hits + misses
                entry = {
                    "scalar_seconds": round(medians["scalar"], 4),
                    "batched_seconds": round(medians["batched"], 4),
                    "scalar_engine_seconds": round(engine_medians["scalar"], 4),
                    "batched_engine_seconds": round(
                        engine_medians["batched"], 4
                    ),
                    "record_seconds": round(record_s, 4),
                    "replay_seconds": round(medians["replay"], 4),
                    "speedup": round(medians["scalar"] / medians["replay"], 3),
                    "batched_speedup": round(
                        medians["scalar"] / medians["batched"], 3
                    ),
                    "engine_speedup": round(
                        engine_medians["scalar"] / engine_medians["batched"], 3
                    )
                    if engine_medians["batched"] > 0
                    else 0.0,
                    "miss_rate": round(misses / lookups, 4) if lookups else 0.0,
                }
                run["results"][f"{name}/{kind}"] = entry
                print(
                    f"{name:20s} {kind:12s} "
                    f"scalar={entry['scalar_seconds']:8.3f}s "
                    f"batched={entry['batched_seconds']:8.3f}s "
                    f"replay={entry['replay_seconds']:8.3f}s "
                    f"speedup={entry['speedup']:.2f}x "
                    f"(cold {entry['batched_speedup']:.2f}x, "
                    f"engine-only {entry['engine_speedup']:.2f}x) "
                    f"miss_rate={entry['miss_rate']:.3f}",
                    flush=True,
                )
                if profile:
                    print(
                        f"--- profile {name}/{kind} (batched, top 15 tottime) ---"
                    )
                    profile_run(kind, model)
    run["aggregate"] = {
        "scalar_seconds": round(grand["scalar"], 4),
        "batched_seconds": round(grand["batched"], 4),
        "scalar_engine_seconds": round(grand_engine["scalar"], 4),
        "batched_engine_seconds": round(grand_engine["batched"], 4),
        "replay_seconds": round(grand["replay"], 4),
        # Headline (the ROADMAP metric): scalar vs the warm-trace
        # replay pipeline -- what a sweep pays per config once one
        # config has recorded the shared phases.
        "speedup": round(grand["scalar"] / grand["replay"], 3),
        # Cold-run number, kept honest alongside the headline: what a
        # cold run pays end to end, driver overhead included.
        "batched_speedup": round(grand["scalar"] / grand["batched"], 3),
        # Cold-run engine-only number: time inside the batch methods,
        # with the engine-independent driver overhead factored out.
        "engine_only_speedup": round(
            grand_engine["scalar"] / grand_engine["batched"], 3
        )
        if grand_engine["batched"] > 0
        else 0.0,
    }
    print(
        f"aggregate: scalar={run['aggregate']['scalar_seconds']:.2f}s "
        f"batched={run['aggregate']['batched_seconds']:.2f}s "
        f"replay={run['aggregate']['replay_seconds']:.2f}s "
        f"speedup={run['aggregate']['speedup']:.2f}x "
        f"(cold {run['aggregate']['batched_speedup']:.2f}x, "
        f"engine-only {run['aggregate']['engine_only_speedup']:.2f}x)"
    )
    return run


def attach_vs_previous(run: Dict[str, Any], prev: Dict[str, Any]) -> None:
    """Cross-PR comparison: this run's batched engine against the
    previous matching entry's (per result and in aggregate)."""
    per_result = {}
    for key, entry in run["results"].items():
        old = prev.get("results", {}).get(key)
        if old and entry["batched_seconds"] > 0:
            per_result[key] = round(
                old["batched_seconds"] / entry["batched_seconds"], 3
            )
    comparison = {
        "sha": prev.get("sha", "unknown"),
        "date": prev.get("date", ""),
        "batched_speedup": per_result,
    }
    old_agg = prev.get("aggregate", {}).get("batched_seconds")
    new_agg = run["aggregate"]["batched_seconds"]
    if old_agg and new_agg:
        comparison["aggregate_batched_speedup"] = round(old_agg / new_agg, 3)
        print(
            f"vs previous entry {comparison['sha']}: batched engine "
            f"{comparison['aggregate_batched_speedup']:.2f}x faster in aggregate"
        )
    run["vs_previous"] = comparison


def check_regression(path: Path, threshold: float = 0.10) -> int:
    """CI gate over the committed trajectory: the newest entry's
    aggregate speedups -- the replay headline and the cold-run
    engine-only number -- must not fall more than ``threshold`` below
    the most recent earlier entry with the same workload signature.
    Returns a process exit code (0 pass, 1 regression)."""
    trajectory = load_trajectory(path)
    runs = trajectory.get("runs", [])
    if not runs:
        print(f"regression gate: no entries in {path}, nothing to compare")
        return 0
    latest = runs[-1]
    prev = previous_matching(runs[:-1], latest.get("workload", {}))
    if prev is None:
        print("regression gate: no earlier entry with this workload signature")
        return 0
    failed = False
    for metric, label in (
        ("speedup", "aggregate speedup"),
        ("engine_only_speedup", "engine-only aggregate speedup"),
    ):
        new = latest.get("aggregate", {}).get(metric, 0.0)
        old = prev.get("aggregate", {}).get(metric, 0.0)
        if metric not in prev.get("aggregate", {}):
            # Entries predating the engine-only split carry no such
            # column; nothing to regress against.
            print(
                f"regression gate: entry {prev.get('sha')} has no "
                f"{metric}, skipping that comparison"
            )
            continue
        print(
            f"regression gate: {label} {new:.3f}x "
            f"(entry {latest.get('sha')}) vs {old:.3f}x "
            f"(entry {prev.get('sha')})"
        )
        if old > 0 and new < old * (1.0 - threshold):
            print(
                f"REGRESSION: {label} dropped "
                f"{(1.0 - new / old) * 100:.1f}% "
                f"(> {threshold * 100:.0f}% allowed)",
                file=sys.stderr,
            )
            failed = True
    if failed:
        return 1
    print("regression gate: ok")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--datasets", nargs="+", default=list(BENCH_DATASETS))
    parser.add_argument(
        "--kinds",
        nargs="+",
        default=list(ALL_KINDS),
        choices=list(ALL_KINDS),
        metavar="KIND",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny fixed workload, no trajectory write; exit 1 unless the "
        "batched engine beats the scalar reference",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after timing each (dataset, kind), print the top-15 tottime "
        "frames of one batched run (outside the timing loop)",
    )
    parser.add_argument(
        "--check-regression",
        action="store_true",
        help="no benchmarking: compare the newest trajectory entry's "
        "aggregate speedup against the previous same-workload entry and "
        "exit 1 on a >10%% drop (the CI perf gate)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sim.json",
    )
    args = parser.parse_args()

    if args.check_regression:
        sys.exit(check_regression(args.output))

    if args.smoke:
        run = bench(
            list(SMOKE_DATASETS), list(SMOKE_KINDS), repeats=1,
            scale_override=SMOKE_SCALE, profile=args.profile,
        )
        engine_speedup = run["aggregate"]["batched_speedup"]
        if engine_speedup < 1.0:
            print(
                f"SMOKE FAIL: batched engine slower than scalar "
                f"({engine_speedup:.2f}x)",
                file=sys.stderr,
            )
            sys.exit(1)
        # time_replay_runs already hard-fails on any live fallback, so
        # reaching this line also certifies the replay pipeline.
        print(
            f"smoke ok: batched {engine_speedup:.2f}x "
            f"(engine-only {run['aggregate']['engine_only_speedup']:.2f}x), "
            f"replay {run['aggregate']['speedup']:.2f}x scalar"
        )
        return

    trajectory = load_trajectory(args.output)
    run = bench(args.datasets, args.kinds, args.repeats, profile=args.profile)
    prev = previous_matching(trajectory["runs"], run["workload"])
    if prev is not None:
        attach_vs_previous(run, prev)
    trajectory["runs"].append(run)
    args.output.write_text(json.dumps(trajectory, indent=1) + "\n", encoding="utf-8")
    print(f"appended run {run['sha']} to {args.output} "
          f"({len(trajectory['runs'])} entries)")


if __name__ == "__main__":
    main()
