"""Simulated-time tracers: the event sink the simulator reports into.

The clock of every event is the *simulated* cycle count (the decoupled
engine's timelines), not wall time, so a trace of a run is a picture of
the modelled hardware: where the pipeline's cycles went, phase by
phase, tile by tile, batch by batch.

Three implementations share one interface:

:class:`Tracer`
    The protocol-style base.  ``enabled`` is a class attribute the hot
    paths check *before* building event arguments -- the contract that
    makes the default tracer free:  every emission site reads
    ``tracer.enabled`` (one attribute load) and only constructs the
    span/args when it is true.
:class:`NullTracer` / :data:`NULL_TRACER`
    The default.  ``enabled`` is ``False`` and every method is a no-op,
    so a guarded call site performs no allocation and no call at all.
:class:`ChromeTracer`
    Collects events in memory and exports Chrome trace-event JSON
    (the ``traceEvents`` array format), loadable in Perfetto or
    ``chrome://tracing``.  Export is deterministic: given the same
    simulated run, :meth:`ChromeTracer.to_json` returns byte-identical
    output (no wall-clock timestamps, sorted keys).

Event vocabulary (Chrome trace-event phases):

* ``span(name, start, end)`` -> one complete event (``"ph": "X"``) --
  an engine batch, a region tile, an accelerator phase;
* ``instant(name, cycle)`` -> an instant event (``"ph": "i"``) -- a
  buffer invalidation, a spilled-partial refetch;
* ``counter(name, cycle, values)`` -> a counter event (``"ph": "C"``)
  -- e.g. buffer occupancy per line class at a phase boundary.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

#: Categories the simulator emits (the ``cat`` field of every event).
TRACE_CATEGORIES = ("engine", "buffer", "region", "phase", "run")

#: Numeric type of the simulated clock.
Cycle = Union[int, float]


class Tracer:
    """Event sink for simulated-time traces.

    Implementations override the three emission methods; callers MUST
    guard each call with ``if tracer.enabled:`` so the disabled path
    costs one attribute check and nothing else (the ``obs-hygiene``
    analyzer rule enforces this for kernel and accelerator code).
    """

    #: Whether emission sites should build and send events.
    enabled: bool = False

    #: Whether this tracer's output survives phase replay.  Replaying a
    #: recorded phase skips the live simulation, so engine-batch,
    #: buffer, and region events for that phase simply never happen; a
    #: tracer that consumes only the per-phase boundary events (which
    #: the run loop still emits from the recorded deltas) can declare
    #: itself compatible and keep replay enabled.  Full tracers leave
    #: this ``False`` so a traced run never silently produces a
    #: skeleton trace.
    replay_compatible: bool = False

    def span(
        self,
        name: str,
        start: Cycle,
        end: Cycle,
        cat: str = "engine",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """A complete interval ``[start, end]`` in simulated cycles."""

    def instant(
        self,
        name: str,
        cycle: Cycle,
        cat: str = "engine",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """A point event at ``cycle``."""

    def counter(
        self, name: str, cycle: Cycle, values: Mapping[str, Cycle]
    ) -> None:
        """A sampled counter series (one track per key of ``values``)."""


class NullTracer(Tracer):
    """The zero-overhead default: disabled, and every method a no-op."""

    __slots__ = ()

    enabled = False


#: Shared disabled tracer -- the default of every tracing entry point,
#: so "no tracer" never allocates anything.
NULL_TRACER: Tracer = NullTracer()


class PhaseFeed(Tracer):
    """Live per-phase progress feed built on the tracer protocol.

    Forwards every ``cat="phase"`` event that carries counters (the
    spans :meth:`repro.hymm.base.AcceleratorBase.run_inference` emits at
    each phase boundary, plus the ``drain`` instant) to ``on_phase``
    as ``(phase_name, end_cycle, counters)`` -- the feed the serve
    front end streams to ``/status`` followers while a simulation is
    still running.  Everything else (engine batches, buffer events,
    region tiles) is dropped at the cheapest possible point, so the
    overhead over an untraced run is one guarded call per phase.

    The callback runs on the simulating thread; callers bridging into
    an event loop must hand off (e.g. ``loop.call_soon_threadsafe``)
    rather than block.
    """

    __slots__ = ("on_phase",)

    enabled = True
    #: Phase-boundary spans are emitted for replayed phases too (from
    #: the recorded stats deltas), so the feed loses nothing on replay.
    replay_compatible = True

    def __init__(self, on_phase: "Callable[[str, float, Dict[str, Any]], None]") -> None:
        self.on_phase = on_phase

    def span(
        self,
        name: str,
        start: Cycle,
        end: Cycle,
        cat: str = "engine",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if cat == "phase" and args and "cycles" in args:
            self.on_phase(name, float(end), dict(args))

    def instant(
        self,
        name: str,
        cycle: Cycle,
        cat: str = "engine",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if cat == "phase" and args and "cycles" in args:
            self.on_phase(name, float(cycle), dict(args))


class ChromeTracer(Tracer):
    """In-memory collector exporting Chrome trace-event JSON.

    ``ts``/``dur`` carry simulated cycles directly (the JSON format
    nominally uses microseconds; Perfetto renders any unit, and
    ``displayTimeUnit`` is advisory).  ``pid``/``tid`` are fixed -- one
    simulated pipeline -- which keeps traces of the same run
    byte-identical.
    """

    enabled = True

    def __init__(self, pid: int = 0, tid: int = 0) -> None:
        self.pid = pid
        self.tid = tid
        self._events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def span(
        self,
        name: str,
        start: Cycle,
        end: Cycle,
        cat: str = "engine",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": float(start),
            "dur": float(end) - float(start),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def instant(
        self,
        name: str,
        cycle: Cycle,
        cat: str = "engine",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        event: Dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": float(cycle),
            "pid": self.pid,
            "tid": self.tid,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def counter(
        self, name: str, cycle: Cycle, values: Mapping[str, Cycle]
    ) -> None:
        self._events.append(
            {
                "name": name,
                "cat": "counter",
                "ph": "C",
                "ts": float(cycle),
                "pid": self.pid,
                "tid": self.tid,
                "args": {str(k): float(v) for k, v in values.items()},
            }
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @property
    def n_events(self) -> int:
        return len(self._events)

    def trace_dict(
        self, metadata: Optional[Mapping[str, Any]] = None
    ) -> Dict[str, Any]:
        """The full trace document (Chrome trace-event JSON object form).

        ``metadata`` lands under ``otherData`` -- the obs CLI records the
        job spec and the run's ``SimStats`` totals there, which is what
        lets ``repro.obs report`` cross-check per-phase sums against the
        whole-run aggregate.  Callers must keep metadata free of wall
        times so exports stay deterministic.
        """
        doc: Dict[str, Any] = {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ns",
        }
        if metadata:
            doc["otherData"] = dict(metadata)
        return doc

    def to_json(self, metadata: Optional[Mapping[str, Any]] = None) -> str:
        """Deterministic JSON export (sorted keys, fixed separators)."""
        return json.dumps(
            self.trace_dict(metadata), sort_keys=True, separators=(",", ":")
        )

    def write(
        self, path: str, metadata: Optional[Mapping[str, Any]] = None
    ) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(metadata))
            fh.write("\n")
