"""Structured NDJSON logging and correlation-ID propagation."""

import asyncio
import io
import json
import logging
import threading

import pytest

from repro.telemetry.logs import (
    NDJSONFormatter,
    bind_correlation,
    configure_logging,
    correlation_scope,
    current_correlation_id,
    get_logger,
    new_correlation_id,
)


@pytest.fixture(autouse=True)
def clean_correlation():
    bind_correlation(None)
    yield
    bind_correlation(None)


@pytest.fixture()
def stream():
    buf = io.StringIO()
    handler = configure_logging(stream=buf)
    yield buf
    logging.getLogger("repro").removeHandler(handler)


def records(buf):
    return [json.loads(line) for line in buf.getvalue().splitlines()]


class TestCorrelation:
    def test_new_ids_are_16_hex_and_unique(self):
        ids = {new_correlation_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_bind_and_read(self):
        assert current_correlation_id() is None
        bind_correlation("feedface00000001")
        assert current_correlation_id() == "feedface00000001"

    def test_scope_restores(self):
        bind_correlation("outer")
        with correlation_scope("inner") as cid:
            assert cid == "inner"
            assert current_correlation_id() == "inner"
        assert current_correlation_id() == "outer"

    def test_propagates_into_to_thread(self):
        seen = {}

        async def main():
            bind_correlation("feedface00000002")
            await asyncio.to_thread(
                lambda: seen.setdefault("worker", current_correlation_id())
            )

        asyncio.run(main())
        assert seen["worker"] == "feedface00000002"

    def test_threads_do_not_inherit_ambient_binding(self):
        # A raw thread starts from a fresh context copy made at start()
        # time; bind_correlation in the worker must not leak back.
        bind_correlation("parent")
        seen = {}

        def worker():
            bind_correlation("child")
            seen["inner"] = current_correlation_id()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["inner"] == "child"
        assert current_correlation_id() == "parent"


class TestNDJSON:
    def test_record_shape(self, stream):
        log = get_logger("test.shape")
        log.warning("something happened", extra={"detail": 42})
        [doc] = records(stream)
        assert doc["event"] == "something happened"
        assert doc["level"] == "warning"
        assert doc["logger"] == "repro.test.shape"
        assert doc["detail"] == 42
        assert isinstance(doc["ts"], float)
        assert "corr_id" not in doc

    def test_contextvar_corr_id_stamped(self, stream):
        bind_correlation("feedface00000003")
        get_logger("test.corr").warning("hello")
        [doc] = records(stream)
        assert doc["corr_id"] == "feedface00000003"

    def test_record_attr_wins_over_contextvar(self, stream):
        bind_correlation("ambient")
        get_logger("test.corr2").warning(
            "hello", extra={"corr_id": "explicit"}
        )
        [doc] = records(stream)
        assert doc["corr_id"] == "explicit"

    def test_non_serialisable_extra_falls_back_to_repr(self, stream):
        get_logger("test.repr").warning("x", extra={"obj": object()})
        [doc] = records(stream)
        assert "object object" in doc["obj"]

    def test_exception_name_captured(self, stream):
        log = get_logger("test.exc")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            log.exception("failed")
        [doc] = records(stream)
        assert doc["exc"] == "RuntimeError"
        assert doc["level"] == "error"

    def test_lines_are_json_parseable_sorted_keys(self, stream):
        get_logger("test.sort").warning("x", extra={"zz": 1, "aa": 2})
        line = stream.getvalue().splitlines()[0]
        assert line.index('"aa"') < line.index('"zz"')

    def test_formatter_standalone(self):
        record = logging.LogRecord(
            "repro.x", logging.INFO, __file__, 1, "msg %s", ("arg",), None
        )
        doc = json.loads(NDJSONFormatter().format(record))
        assert doc["event"] == "msg arg"


class TestConfiguration:
    def test_reconfigure_replaces_handler(self):
        a, b = io.StringIO(), io.StringIO()
        configure_logging(stream=a)
        handler = configure_logging(stream=b)
        try:
            get_logger("test.swap").warning("only in b")
            assert a.getvalue() == ""
            assert "only in b" in b.getvalue()
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_silent_without_configuration(self, capsys):
        # The NullHandler on the "repro" root keeps unconfigured
        # loggers off stderr (no logging.lastResort spray).
        logging.getLogger("repro.test.silent").warning("quiet")
        captured = capsys.readouterr()
        assert "quiet" not in captured.err

    def test_file_target(self, tmp_path):
        path = tmp_path / "log.ndjson"
        handler = configure_logging(str(path))
        try:
            get_logger("test.file").warning("to disk")
        finally:
            logging.getLogger("repro").removeHandler(handler)
            handler.close()
        [doc] = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert doc["event"] == "to disk"
