"""Pure-NumPy reference GCN inference (the functional oracle)."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.graphs.dataset import GraphDataset
from repro.graphs.preprocess import gcn_normalize
from repro.sparse.coo import VALUE_DTYPE


def relu(x: np.ndarray) -> np.ndarray:
    """Element-wise rectifier, the paper's sigma in Eq. 1."""
    return np.maximum(x, 0.0)


def reference_inference(
    dataset: GraphDataset, weight_list: List[np.ndarray]
) -> List[np.ndarray]:
    """Run full multi-layer GCN inference with dense NumPy matmuls.

    Returns the post-activation output of every layer (ReLU between
    layers, raw logits at the end).  This is intentionally the most
    boring possible implementation: every simulated dataflow must agree
    with it to float tolerance.
    """
    norm = gcn_normalize(dataset.adjacency).to_dense().astype(np.float64)
    h = dataset.features.to_dense().astype(np.float64)
    outputs: List[np.ndarray] = []
    for layer_idx, weights in enumerate(weight_list):
        combined = h @ weights.astype(np.float64)
        aggregated = norm @ combined
        if layer_idx < len(weight_list) - 1:
            aggregated = relu(aggregated)
        h = aggregated
        outputs.append(aggregated.astype(VALUE_DTYPE))
    return outputs
