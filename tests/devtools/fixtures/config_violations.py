"""Fixture: config-hygiene violation -- one dead knob.

``shiny_new_knob`` is validated and serialised but never read by any
model code; ``n_pes`` is consumed.  Never imported, only parsed.
"""
from dataclasses import asdict, dataclass


@dataclass(frozen=True)
class HyMMConfig:
    n_pes: int = 16
    shiny_new_knob: float = 0.5        # line 12: dead knob

    def __post_init__(self):
        # Validation alone must not count as consumption.
        if not 0.0 < self.shiny_new_knob <= 1.0:
            raise ValueError("shiny_new_knob out of range")

    def to_dict(self):
        # Serialisation must not count as consumption either.
        return asdict(self)

    @classmethod
    def from_dict(cls, data):
        return cls(**data)


def build_pe_array(cfg: HyMMConfig) -> list:
    return [0.0] * cfg.n_pes           # consumes n_pes only
