"""The long-lived asyncio sweep server.

Architecture (one process, stdlib only)::

    client conns ──> asyncio stream handlers ──┐
                                               │ single-flight table
                                               │ (fingerprint -> JobEntry)
    sharded ResultCache <── cache probe ───────┤
         (worker thread)                       │ miss
                                               v
                                        asyncio.Queue
                                               │ batched drain
                                               v
                                     SweepExecutor batch
                              (worker thread; process pool when
                               ``workers > 1``, serial + live
                               PhaseFeed progress otherwise)

Single-flight: every job is keyed by its :class:`JobSpec` content-hash
fingerprint.  Submissions of a fingerprint that is already queued,
probing the cache, or executing *attach* to the existing
:class:`JobEntry` instead of enqueueing again -- N concurrent identical
submissions cost one cache probe and at most one execution, and all N
receive the same terminal answer.  Once an entry reaches a terminal
state it stops absorbing submissions: the next identical submission
performs a fresh cache lookup (by then the executed result is on disk),
which is exactly the "million cached lookups a day" hit path
``bench-hitpath`` measures.

Blocking work (cache reads, simulation batches) runs in worker threads
via ``asyncio.to_thread``; the event-loop side never touches the disk
or the simulator, a contract enforced by the ``serve-hygiene`` analyzer
rule.
"""

from __future__ import annotations

import asyncio
import logging
import time
from collections import OrderedDict
from dataclasses import dataclass, replace as dc_replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.hymm.base import RunResult
from repro.obs.tracer import PhaseFeed
from repro.runtime.cache import ResultCache
from repro.runtime.executor import SweepExecutor, SweepResult
from repro.runtime.job import SCHEMA_VERSION, JobSpec
from repro.runtime.manifest import STATUS_FAILED
from repro.sim.replay import TRACE_SCHEMA_VERSION
from repro.telemetry import (
    MetricsRegistry,
    Objective,
    SloTracker,
    bind_correlation,
    correlation_scope,
    get_logger,
    get_registry,
    new_correlation_id,
    render_exposition,
    span,
)
from repro.serve.protocol import (
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    MAX_LINE_BYTES,
    OP_HEALTHZ,
    OP_METRICS,
    OP_SHUTDOWN,
    OP_STATUS,
    OP_SUBMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    SOURCE_CACHE_DISK,
    SOURCE_EXECUTED,
    SOURCE_REGISTRY,
    TERMINAL_STATES,
    decode,
    encode,
    error_payload,
    parse_request,
)

#: Fields of one per-phase progress row (mirrors the counters the
#: accelerator's phase spans carry -- see ``repro.obs``).
PHASE_ROW_FIELDS = (
    "cycles",
    "busy_cycles",
    "dram_read_bytes",
    "dram_write_bytes",
    "buffer_hits",
    "buffer_misses",
)

#: A SweepExecutor-compatible factory (test seam).
ExecutorFactory = Callable[..., SweepExecutor]

_log = get_logger("serve.server")


def percentiles(
    values: List[float], points: Tuple[float, ...] = (50.0, 90.0, 99.0)
) -> Dict[str, float]:
    """Nearest-rank percentiles of ``values`` (e.g. ``{"p50": ...}``).

    Empty input yields an empty dict.  Used for *client-side* sample
    lists (the bench CLI); the server's own ``/metrics`` hit-path
    figures come from the O(buckets) telemetry histogram instead of
    sorting a sample window per scrape.
    """
    if not values:
        return {}
    ordered = sorted(values)
    out: Dict[str, float] = {}
    for point in points:
        rank = max(0, min(len(ordered) - 1, int(round(point / 100.0 * len(ordered))) - 1))
        out[f"p{point:g}"] = ordered[rank]
    out["max"] = ordered[-1]
    out["mean"] = sum(ordered) / len(ordered)
    return out


#: Default service-level objectives the server's /healthz verdict
#: evaluates (rolling 5-minute windows): the cached-lookup hit path
#: stays under 5 ms at p99, and under 1% of submissions end in failure.
DEFAULT_SLOS = (
    Objective(
        name="hitpath-p99",
        kind="latency",
        target=5.0,
        metric="repro_serve_hitpath_ms",
        percentile=99.0,
        window_s=300.0,
    ),
    Objective(
        name="error-rate",
        kind="error_rate",
        target=0.01,
        numerator="repro_serve_jobs_failed_total",
        denominator="repro_serve_submitted_total",
        window_s=300.0,
    ),
)


def phase_rows_from_record(record: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-phase progress rows from a serialised ``RunResult`` dict.

    The same rows :class:`PhaseFeed` streams live, rebuilt from the
    wire form's ``phase_snapshots`` for answers served from the cache
    (end cycles are the running sum of per-phase cycles -- the
    conservation invariant makes that exact).
    """
    rows: List[Dict[str, Any]] = []
    end = 0.0
    snapshots = record.get("phase_snapshots")
    if not isinstance(snapshots, dict):
        return rows
    for name, snap in snapshots.items():
        if not isinstance(snap, dict):
            continue
        row: Dict[str, Any] = {"phase": str(name)}
        for fld in PHASE_ROW_FIELDS:
            value = snap.get(fld, 0)
            row[fld] = sum(value.values()) if isinstance(value, dict) else value
        end += float(row["cycles"])
        row["end_cycle"] = end
        rows.append(row)
    return rows


def phase_row_from_feed(
    name: str, end_cycle: float, args: Mapping[str, Any]
) -> Dict[str, Any]:
    """One progress row from a live :class:`PhaseFeed` callback."""
    row: Dict[str, Any] = {"phase": name}
    for fld in PHASE_ROW_FIELDS:
        row[fld] = args.get(fld, 0)
    row["end_cycle"] = float(end_cycle)
    return row


@dataclass
class ServeSettings:
    """Tunables of one server instance."""

    #: SweepExecutor width for one batch of misses (``1`` = serial
    #: in-thread execution with live per-phase progress; ``>1`` = the
    #: runtime's process pool, progress lands per job at completion).
    workers: int = 1
    #: Most queued misses drained into one SweepExecutor invocation.
    max_batch: int = 8
    #: Bounded retry on worker failure (SweepExecutor semantics).
    retries: int = 1
    #: Optional per-job timeout (pool path only; SweepExecutor
    #: semantics -- best-effort, measured from submission).
    timeout: Optional[float] = None
    #: Terminal jobs kept addressable by ``/status`` (LRU-bounded;
    #: in-flight jobs are never evicted).
    registry_limit: int = 512
    #: Retained for settings compatibility: hit-path latency now lives
    #: in a fixed-bucket telemetry histogram (O(buckets) per scrape, no
    #: window to overflow), so this no longer bounds anything.
    latency_window: int = 4096
    #: Wall-clock telemetry (correlation IDs on jobs/events/records,
    #: structured log emission, span recording).  ``False`` restores
    #: pre-telemetry byte-identical submit/status responses; metrics
    #: counters stay on either way (they are the /metrics payload).
    telemetry: bool = True

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.registry_limit < 1:
            raise ValueError("registry_limit must be >= 1")


class JobEntry:
    """One fingerprint's lifecycle inside the single-flight table."""

    __slots__ = (
        "spec", "fingerprint", "corr_id", "status", "source", "error",
        "submits", "attempts", "wall_seconds", "phases", "events",
        "result_record", "done", "_tick",
    )

    def __init__(
        self,
        spec: JobSpec,
        fingerprint: str,
        corr_id: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.fingerprint = fingerprint
        #: Telemetry correlation ID minted at /submit (None with
        #: telemetry off); stamped on every event/status payload and
        #: carried into workers via ``spec.corr_id``.
        self.corr_id = corr_id
        self.status = JOB_QUEUED
        self.source: Optional[str] = None
        self.error: Optional[str] = None
        #: Submissions answered by this entry (1 + single-flight joins).
        self.submits = 1
        self.attempts = 0
        self.wall_seconds = 0.0
        self.phases: List[Dict[str, Any]] = []
        self.events: List[Dict[str, Any]] = []
        #: Serialised ``RunResult`` (the wire dict) once terminal.
        self.result_record: Optional[Dict[str, Any]] = None
        self.done = asyncio.Event()
        self._tick = asyncio.Event()

    # All mutation happens on the event-loop thread (worker threads
    # bridge through ``loop.call_soon_threadsafe``), so plain lists and
    # a rotating Event are race-free.
    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATES

    def signal(self) -> asyncio.Event:
        """The event the *next* change will set (capture, then await)."""
        return self._tick

    def _rotate(self) -> None:
        tick, self._tick = self._tick, asyncio.Event()
        tick.set()

    def add_event(self, payload: Dict[str, Any]) -> None:
        payload = dict(payload)
        payload["seq"] = len(self.events)
        if self.corr_id is not None:
            payload["corr_id"] = self.corr_id
        self.events.append(payload)
        self._rotate()

    def set_status(self, status: str) -> None:
        self.status = status
        self.add_event({"event": "status", "status": status})
        if status in TERMINAL_STATES:
            self.done.set()

    def add_phase(self, name: str, end_cycle: float, args: Dict[str, Any]) -> None:
        row = phase_row_from_feed(name, end_cycle, args)
        self.phases.append(row)
        self.add_event({"event": "phase", **row})

    def complete(
        self,
        record: Dict[str, Any],
        source: str,
        attempts: int = 0,
        wall_seconds: float = 0.0,
    ) -> None:
        self.result_record = record
        self.source = source
        self.attempts = attempts
        self.wall_seconds = wall_seconds
        if not self.phases:
            for row in phase_rows_from_record(record):
                self.phases.append(row)
        self.set_status(JOB_DONE)

    def fail(self, error: str, attempts: int = 0, wall_seconds: float = 0.0) -> None:
        self.error = error
        self.attempts = attempts
        self.wall_seconds = wall_seconds
        self.set_status(JOB_FAILED)


class ServeMetrics:
    """The server's typed instruments behind ``/metrics``.

    All counters live in the *per-server* :class:`MetricsRegistry`
    (``registry``): two ServerThreads in one test process never bleed
    counts into each other, and a scrape renders this registry plus the
    process-global one (executor/replay instruments).  The legacy plain
    ``metrics.submitted``-style reads remain as properties.

    Hit-path latency is a fixed-exponential-bucket histogram: recording
    a sample is O(log buckets), a scrape summarises O(buckets) -- no
    4096-sample deque copied and sorted on the event loop per scrape,
    and no window silently dropping history on overflow.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._submitted = registry.counter(
            "repro_serve_submitted_total", "Submissions accepted"
        )
        #: Submissions answered by attaching to an in-flight entry.
        self._deduped = registry.counter(
            "repro_serve_deduped_total",
            "Submissions answered by single-flight attach",
        )
        #: Submissions answered straight from the result cache.
        self._cache_served = registry.counter(
            "repro_serve_cache_served_total",
            "Submissions answered from the result cache or job registry",
        )
        #: Cache misses served from the terminal-job registry (only
        #: possible on a cache-less server).
        self._registry_hits = registry.counter(
            "repro_serve_registry_hits_total",
            "Cache misses answered from the terminal-job registry",
        )
        self._executed = registry.counter(
            "repro_serve_jobs_executed_total", "Jobs simulated to completion"
        )
        self._failed = registry.counter(
            "repro_serve_jobs_failed_total", "Jobs that ended in failure"
        )
        self._timeouts = registry.counter(
            "repro_serve_job_timeouts_total", "Jobs that hit the pool timeout"
        )
        self._retries = registry.counter(
            "repro_serve_job_retries_total",
            "Extra attempts beyond the first, summed over jobs",
        )
        self._batches = registry.counter(
            "repro_serve_batches_total", "SweepExecutor batch invocations"
        )
        #: Phase-trace replay accounting over executed jobs: phases
        #: replayed from the trace store vs simulated live and recorded
        #: (folded in from each batch's run manifest).
        self._replay = registry.counter(
            "repro_serve_replay_phases_total",
            "Phases replayed from the trace store vs recorded live",
            labelnames=("mode",),
        )
        self._rss = registry.gauge(
            "repro_serve_peak_rss_kb",
            "Highest per-process peak RSS reported by any batch (KiB)",
        )
        self._seen_rss = False
        self._hitpath = registry.histogram(
            "repro_serve_hitpath_ms",
            "Wall milliseconds to serve a submission from the result cache",
        )
        self._queue_depth = registry.gauge(
            "repro_serve_queue_depth", "Jobs waiting for an executor batch"
        )
        self._in_flight = registry.gauge(
            "repro_serve_in_flight", "Jobs inside the current executor batch"
        )
        self._uptime = registry.gauge(
            "repro_serve_uptime_seconds", "Seconds since the server started"
        )

    # -- legacy plain-int reads --------------------------------------
    @property
    def submitted(self) -> int:
        return int(self._submitted.value)

    @property
    def deduped(self) -> int:
        return int(self._deduped.value)

    @property
    def cache_served(self) -> int:
        return int(self._cache_served.value)

    @property
    def registry_hits(self) -> int:
        return int(self._registry_hits.value)

    @property
    def executed(self) -> int:
        return int(self._executed.value)

    @property
    def failed(self) -> int:
        return int(self._failed.value)

    @property
    def timeouts(self) -> int:
        return int(self._timeouts.value)

    @property
    def retries(self) -> int:
        return int(self._retries.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def replay_hits(self) -> int:
        return int(self._replay.labels("replayed").value)

    @property
    def replay_misses(self) -> int:
        return int(self._replay.labels("recorded").value)

    @property
    def peak_rss_kb(self) -> Optional[int]:
        return int(self._rss.value) if self._seen_rss else None

    # -- mutation ------------------------------------------------------
    def inc_submitted(self) -> None:
        self._submitted.inc()

    def inc_deduped(self) -> None:
        self._deduped.inc()

    def inc_cache_served(self) -> None:
        self._cache_served.inc()

    def inc_registry_hits(self) -> None:
        self._registry_hits.inc()

    def inc_failed(self, n: int = 1) -> None:
        self._failed.inc(n)

    def record_hitpath(self, ms: float) -> None:
        self._hitpath.observe(ms)

    def hitpath_summary(self) -> Dict[str, float]:
        """``{"count": n, "p50": ..., "p90": ..., "p99": ..., "max":
        ..., "mean": ...}`` (just the count when empty)."""
        return self._hitpath.percentile_summary()

    def set_runtime_gauges(self, queue_depth: int, in_flight: int, uptime_s: float) -> None:
        """Refresh point-in-time gauges (called at scrape time)."""
        self._queue_depth.set(queue_depth)
        self._in_flight.set(in_flight)
        self._uptime.set(round(uptime_s, 3))

    def merge_manifest(self, manifest: Any) -> None:
        """Fold one SweepExecutor run manifest into the aggregates."""
        self._batches.inc()
        self._executed.inc(manifest.executed)
        self._failed.inc(manifest.failed)
        self._timeouts.inc(manifest.timeouts)
        self._retries.inc(manifest.retries)
        replay_hits = getattr(manifest, "replay_hits", 0)
        replay_misses = getattr(manifest, "replay_misses", 0)
        if replay_hits:
            self._replay.labels("replayed").inc(replay_hits)
        if replay_misses:
            self._replay.labels("recorded").inc(replay_misses)
        rss = manifest.peak_rss_kb
        if rss is not None:
            self._seen_rss = True
            if rss > self._rss.value:
                self._rss.set(rss)


class SweepServer:
    """The asyncio front end over cache + executor (see module doc)."""

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        settings: Optional[ServeSettings] = None,
        runner: Optional[Callable[[JobSpec], object]] = None,
        executor_factory: Optional[ExecutorFactory] = None,
        trace_root: Optional[str] = None,
    ) -> None:
        self.cache = cache
        self.settings = settings if settings is not None else ServeSettings()
        # Phase-trace replay is on by default: traces live next to the
        # result cache shards (``<cache_dir>/traces``) so the sharded
        # store and the trace tree move together, or under the
        # process-wide default for a cache-less server.  The
        # ``REPRO_TRACE_DIR`` env var still relocates or disables the
        # tree (it wins over the colocated default); ``trace_root``
        # pins it explicitly.  ``None`` after resolution = replay off.
        from repro.runtime.execute import resolve_trace_root

        if trace_root is None:
            cache_dir = getattr(cache, "cache_dir", None)
            preferred = (
                str(cache_dir / "traces") if cache_dir is not None else None
            )
            trace_root = resolve_trace_root(preferred)
        self.trace_root = trace_root
        #: Test seam: forces serial execution through this callable.
        self._runner = runner
        self._executor_factory: ExecutorFactory = (
            executor_factory if executor_factory is not None else SweepExecutor
        )
        #: Per-server instrument namespace: ServerThreads in one test
        #: process must not bleed counts into each other.  Scrapes
        #: export this registry plus the process-global one.
        self.registry = MetricsRegistry()
        self.metrics = ServeMetrics(self.registry)
        self.slo = SloTracker(self.registry, list(DEFAULT_SLOS))
        self._jobs: "OrderedDict[str, JobEntry]" = OrderedDict()
        self._queue: "asyncio.Queue[JobEntry]" = asyncio.Queue()
        self._in_flight = 0
        self._started_monotonic = time.monotonic()
        self._server: Optional[asyncio.AbstractServer] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._stopping = asyncio.Event()
        self.host = ""
        self.port = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_LINE_BYTES
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    def request_stop(self) -> None:
        """Ask the server to exit (thread-safe only via its own loop)."""
        self._stopping.set()

    async def serve_until_stopped(self) -> None:
        """Run until :meth:`request_stop` (or the shutdown op) fires."""
        await self._stopping.wait()
        await self.aclose()

    async def aclose(self) -> None:
        # Claim each handle *before* the first await: a concurrent
        # aclose (request_stop racing an explicit close) then sees None
        # instead of double-cancelling / double-closing a handle whose
        # teardown is already in flight.
        dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.cancel()
            try:
                await dispatcher
            except asyncio.CancelledError:
                pass
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _send(
        self, writer: asyncio.StreamWriter, payload: Dict[str, Any]
    ) -> None:
        writer.write(encode(payload))
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    await self._send(
                        writer, error_payload("request line too long")
                    )
                    break
                if not line:
                    break
                try:
                    request = parse_request(decode(line))
                except ProtocolError as exc:
                    await self._send(writer, error_payload(str(exc)))
                    continue
                await self._route(request, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        if request.op == OP_SUBMIT:
            await self._handle_submit(request, writer)
        elif request.op == OP_STATUS:
            await self._handle_status(request, writer)
        elif request.op == OP_HEALTHZ:
            await self._send(writer, self._healthz_payload())
        elif request.op == OP_METRICS:
            if request.format == "prometheus":
                await self._send(writer, self._prometheus_payload())
            else:
                await self._send(writer, self._metrics_payload())
        elif request.op == OP_SHUTDOWN:
            await self._send(writer, {"ok": True, "stopping": True})
            self.request_stop()

    # ------------------------------------------------------------------
    # /submit
    # ------------------------------------------------------------------
    def _register(self, entry: JobEntry) -> None:
        self._jobs[entry.fingerprint] = entry
        self._jobs.move_to_end(entry.fingerprint)
        if len(self._jobs) <= self.settings.registry_limit:
            return
        for fingerprint in list(self._jobs):
            if len(self._jobs) <= self.settings.registry_limit:
                break
            candidate = self._jobs[fingerprint]
            if candidate.terminal:
                del self._jobs[fingerprint]

    def _cache_lookup(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """Worker-thread cache probe -> serialised result dict."""
        assert self.cache is not None
        result = self.cache.load(spec)
        return None if result is None else result.to_dict()

    async def _handle_submit(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        assert request.spec is not None
        try:
            spec = JobSpec.from_dict(dict(request.spec))
            fingerprint = spec.fingerprint()
        except Exception as exc:  # malformed spec: a client error
            await self._send(
                writer,
                error_payload(f"bad spec: {type(exc).__name__}: {exc}"),
            )
            return
        self.metrics.inc_submitted()
        telemetry = self.settings.telemetry

        prior = self._jobs.get(fingerprint)
        if prior is not None and not prior.terminal:
            # Single-flight: attach to the in-flight entry.
            entry = prior
            entry.submits += 1
            self.metrics.inc_deduped()
            if telemetry and _log.isEnabledFor(logging.INFO):
                _log.info(
                    "submit join",
                    extra={
                        "corr_id": entry.corr_id,
                        "fingerprint": fingerprint,
                        "submits": entry.submits,
                    },
                )
        else:
            # Mint (or adopt the client's) correlation ID for this
            # request and thread it into the spec so pool workers, log
            # records, the manifest JobRecord, and the replay session
            # all carry the same ID.
            corr_id = spec.corr_id
            if corr_id is None and telemetry:
                corr_id = new_correlation_id()
            entry = JobEntry(spec, fingerprint, corr_id=corr_id)
            self._register(entry)
            entry.add_event({"event": "status", "status": JOB_QUEUED})
            with correlation_scope(corr_id):
                record: Optional[Dict[str, Any]] = None
                source = ""
                if self.cache is not None:
                    probe_start = time.perf_counter()
                    with span("serve.cache_probe", job=fingerprint[:12]):
                        record = await asyncio.to_thread(
                            self._cache_lookup, spec
                        )
                    if record is not None:
                        self.metrics.record_hitpath(
                            (time.perf_counter() - probe_start) * 1000.0
                        )
                        source = SOURCE_CACHE_DISK
                if (
                    record is None
                    and prior is not None
                    and prior.status == JOB_DONE
                    and prior.result_record is not None
                ):
                    record = prior.result_record
                    source = SOURCE_REGISTRY
                    self.metrics.inc_registry_hits()
                if record is not None:
                    self.metrics.inc_cache_served()
                    entry.complete(record, source)
                else:
                    # Tag the spec only when it actually travels to a
                    # worker (corr_id is excluded from the fingerprint;
                    # the hit path never needs the copy).
                    if corr_id is not None and entry.spec.corr_id is None:
                        entry.spec = dc_replace(spec, corr_id=corr_id)
                    self._queue.put_nowait(entry)
                if telemetry and _log.isEnabledFor(logging.INFO):
                    _log.info(
                        "submit",
                        extra={
                            "corr_id": corr_id,
                            "fingerprint": fingerprint,
                            "outcome": source or "queued",
                        },
                    )

        if request.wait and not entry.terminal:
            await entry.done.wait()
        await self._send(
            writer, self._status_payload(entry, request.include_result)
        )

    # ------------------------------------------------------------------
    # /status
    # ------------------------------------------------------------------
    async def _handle_status(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> None:
        assert request.job_id is not None
        entry = self._jobs.get(request.job_id)
        if entry is None:
            await self._send(
                writer,
                error_payload(
                    f"unknown job {request.job_id!r}", job_id=request.job_id
                ),
            )
            return
        if not request.follow:
            await self._send(
                writer, self._status_payload(entry, request.include_result)
            )
            return
        seen = 0
        while True:
            signal = entry.signal()
            while seen < len(entry.events):
                event = dict(entry.events[seen])
                event.update({"ok": True, "job_id": entry.fingerprint})
                await self._send(writer, event)
                seen += 1
            if entry.terminal:
                final = self._status_payload(entry, request.include_result)
                final["final"] = True
                await self._send(writer, final)
                return
            await signal.wait()

    # ------------------------------------------------------------------
    # Payloads
    # ------------------------------------------------------------------
    def _status_payload(
        self, entry: JobEntry, include_result: bool
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "ok": True,
            "job_id": entry.fingerprint,
            "label": entry.spec.describe(),
            **(
                {"corr_id": entry.corr_id}
                if entry.corr_id is not None
                else {}
            ),
            "status": entry.status,
            "source": entry.source,
            "submits": entry.submits,
            "attempts": entry.attempts,
            "wall_seconds": entry.wall_seconds,
            "phases": list(entry.phases),
            "error": entry.error,
        }
        if entry.source == SOURCE_EXECUTED:
            payload["cache"] = "miss"
        elif entry.source in (SOURCE_CACHE_DISK, SOURCE_REGISTRY):
            payload["cache"] = "hit"
        else:
            payload["cache"] = None
        record = entry.result_record
        if record is not None:
            stats = record.get("stats")
            payload["result_summary"] = {
                "accelerator": record.get("accelerator"),
                "dataset": record.get("dataset"),
                "cycles": stats.get("cycles") if isinstance(stats, dict) else None,
            }
            if include_result:
                payload["result"] = record
        return payload

    def _healthz_payload(self) -> Dict[str, Any]:
        # The SLO verdict is the load-balancer signal: "ok" only while
        # every declared objective is inside budget over its rolling
        # window, so a degraded instance can actually be shed.
        slo = self.slo.evaluate()
        return {
            "ok": True,
            "status": slo["verdict"],
            "protocol": PROTOCOL_VERSION,
            "versions": {
                "protocol": PROTOCOL_VERSION,
                "job_schema": SCHEMA_VERSION,
                "trace_schema": TRACE_SCHEMA_VERSION,
            },
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": self._queue.qsize(),
            "in_flight": self._in_flight,
            "slo": slo,
        }

    def _metrics_payload(self) -> Dict[str, Any]:
        m = self.metrics
        cache_stats: Dict[str, Any] = {}
        if self.cache is not None:
            cache_stats = dict(self.cache.stats())
            cache_stats["hit_rate"] = round(self.cache.hit_rate, 4)
        hitpath = m.hitpath_summary()
        return {
            "ok": True,
            "uptime_s": round(self.uptime_s, 3),
            "queue_depth": self._queue.qsize(),
            "in_flight": self._in_flight,
            "registry_size": len(self._jobs),
            "jobs": {
                "submitted": m.submitted,
                "deduped": m.deduped,
                "cache_served": m.cache_served,
                "registry_hits": m.registry_hits,
                "executed": m.executed,
                "failed": m.failed,
                "batches": m.batches,
            },
            "cache": cache_stats,
            "replay": {
                "enabled": self.trace_root is not None,
                "hits": m.replay_hits,
                "misses": m.replay_misses,
            },
            # O(buckets) summary out of the telemetry histogram -- no
            # sample window copied/sorted on the event loop per scrape.
            "hitpath_ms": {
                key: round(value, 4) if key != "count" else value
                for key, value in hitpath.items()
            },
            "workers": {
                "pool_jobs": self.settings.workers,
                "max_batch": self.settings.max_batch,
                "timeouts": m.timeouts,
                "retries": m.retries,
                "peak_rss_kb": m.peak_rss_kb,
            },
        }

    def _prometheus_payload(self) -> Dict[str, Any]:
        """``/metrics/prometheus``: text exposition of the per-server
        registry plus the process-global one (executor/replay), carried
        in the JSON reply's ``exposition`` field."""
        self.metrics.set_runtime_gauges(
            self._queue.qsize(), self._in_flight, self.uptime_s
        )
        self.slo.evaluate()  # refresh the burn-rate gauges pre-scrape
        return {
            "ok": True,
            "content_type": "text/plain; version=0.0.4",
            "exposition": render_exposition(self.registry, get_registry()),
        }

    # ------------------------------------------------------------------
    # Dispatch: queue -> SweepExecutor batches
    # ------------------------------------------------------------------
    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while len(batch) < self.settings.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self._in_flight = len(batch)
            for entry in batch:
                entry.set_status(JOB_RUNNING)
            try:
                with span("serve.batch", jobs=len(batch)):
                    sweep = await asyncio.to_thread(
                        self._run_batch, batch, loop
                    )
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # executor blew up: fail the batch
                for entry in batch:
                    entry.fail(f"{type(exc).__name__}: {exc}")
                self.metrics.inc_failed(len(batch))
                if _log.isEnabledFor(logging.WARNING):
                    _log.warning(
                        "batch failed",
                        extra={
                            "jobs": len(batch),
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
            else:
                self._apply_sweep(batch, sweep)
            finally:
                self._in_flight = 0

    def _run_batch(
        self, batch: List[JobEntry], loop: asyncio.AbstractEventLoop
    ) -> SweepResult:
        """Worker thread: one SweepExecutor invocation for the batch."""
        settings = self.settings
        n_jobs = min(settings.workers, len(batch))
        if self._runner is not None:
            executor = self._executor_factory(
                n_jobs=1,
                cache=self.cache,
                retries=settings.retries,
                runner=self._runner,
            )
        elif n_jobs <= 1:
            by_fingerprint = {entry.fingerprint: entry for entry in batch}
            trace_root = self.trace_root

            def traced_runner(spec: JobSpec) -> Dict[str, object]:
                from repro.runtime.execute import (
                    execute_spec,
                    job_trace_session,
                    replay_summary,
                )

                entry = by_fingerprint[spec.fingerprint()]
                # The serial lane bypasses execute_job, so it binds the
                # request's correlation context itself (worker thread).
                bind_correlation(spec.corr_id)

                def on_phase(
                    name: str, end_cycle: float, args: Dict[str, Any]
                ) -> None:
                    try:
                        loop.call_soon_threadsafe(
                            entry.add_phase, name, end_cycle, args
                        )
                    except RuntimeError:
                        pass  # loop shutting down: drop progress, keep the run

                # PhaseFeed is replay-compatible: live phases stream
                # their progress rows as they simulate, replayed phases
                # stream theirs from the recorded deltas -- followers
                # see per-phase progress either way.
                feed = PhaseFeed(on_phase)
                session = (
                    job_trace_session(spec, trace_root)
                    if trace_root is not None
                    else None
                )
                doc = execute_spec(
                    spec, tracer=feed, replay_session=session
                ).to_dict()
                summary = replay_summary(session)
                if summary is not None:
                    doc["replay"] = summary
                return doc

            executor = self._executor_factory(
                n_jobs=1,
                cache=self.cache,
                retries=settings.retries,
                runner=traced_runner,
            )
        else:
            executor = self._executor_factory(
                n_jobs=n_jobs,
                cache=self.cache,
                retries=settings.retries,
                timeout=settings.timeout,
                replay=self.trace_root is not None,
                trace_root=self.trace_root,
            )
        return executor.run([entry.spec for entry in batch])

    def _apply_sweep(self, batch: List[JobEntry], sweep: SweepResult) -> None:
        records = {
            rec.fingerprint: rec for rec in sweep.manifest.records
        }
        for entry in batch:
            result = sweep.results.get(entry.fingerprint)
            rec = records.get(entry.fingerprint)
            attempts = rec.attempts if rec is not None else 0
            wall = rec.wall_seconds if rec is not None else 0.0
            if isinstance(result, RunResult):
                source = (
                    SOURCE_CACHE_DISK
                    if rec is not None and rec.worker == "cache"
                    else SOURCE_EXECUTED
                )
                entry.complete(result.to_dict(), source, attempts, wall)
            else:
                error = rec.error if rec is not None else None
                if rec is not None and rec.status == STATUS_FAILED:
                    entry.fail(error or "job failed", attempts, wall)
                else:
                    entry.fail(error or "job produced no result", attempts, wall)
        self.metrics.merge_manifest(sweep.manifest)


class ServerThread:
    """A sweep server on a daemon thread (tests, self-hosted bench).

    Runs the server's event loop off the caller's thread and hands back
    the bound ``(host, port)`` once accepting::

        with ServerThread(cache=cache) as srv:
            with ServeClient(srv.host, srv.port) as client:
                client.submit(spec_dict)

    Exit (or :meth:`stop`) requests a clean shutdown through the
    server's own loop and joins the thread.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        settings: Optional[ServeSettings] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        runner: Optional[Callable[[JobSpec], object]] = None,
        executor_factory: Optional[ExecutorFactory] = None,
        trace_root: Optional[str] = None,
    ) -> None:
        import threading

        self.server = SweepServer(
            cache=cache,
            settings=settings,
            runner=runner,
            executor_factory=executor_factory,
            trace_root=trace_root,
        )
        self.host = host
        self.port = port
        self._want_host, self._want_port = host, port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            try:
                self.host, self.port = await self.server.start(
                    self._want_host, self._want_port
                )
            finally:
                self._ready.set()
            await self.server.serve_until_stopped()

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface bind errors to start()
            self._error = exc
            self._ready.set()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("server thread did not come up")
        if self._error is not None:
            raise RuntimeError("server thread failed") from self._error
        return self

    def stop(self, timeout: float = 10.0) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self.server.request_stop)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()
