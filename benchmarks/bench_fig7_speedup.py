"""Fig. 7: speedup of the dataflows, normalised to the outer product.

Paper shape: HyMM fastest on every dataset (up to 4.78x over OP at
Amazon-Photo); the row-wise product beats the outer product.  Absolute
factors depend on the memory-system details, but the ordering and the
location of the maximum must reproduce.
"""

from repro.bench import figures


def test_fig7_speedup(benchmark, emit):
    result = benchmark.pedantic(figures.fig7_speedup, rounds=1, iterations=1)
    emit("fig7_speedup", result["text"])
    agg = result["aggregation_speedup"]
    total = result["total_speedup"]
    datasets = list(agg["hymm"])

    # HyMM wins the aggregation SpDeMM on every dataset.
    for abbr in datasets:
        assert agg["hymm"][abbr] >= agg["rwp"][abbr], abbr
        assert agg["hymm"][abbr] > 1.0, abbr

    # RWP is at least as fast as OP in aggregation (GROW vs GCNAX).
    for abbr in datasets:
        assert agg["rwp"][abbr] >= 0.95, abbr

    # Somewhere HyMM's total win over OP is large (paper: 4.78x at AP).
    assert max(total["hymm"].values()) > 2.0
