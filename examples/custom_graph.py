#!/usr/bin/env python3
"""Bring your own graph: run the accelerator on a user-defined dataset.

Builds a graph from a plain edge list (here: a small synthetic social
network generated with networkx if available, else a hand-rolled
preferential-attachment process), attaches random sparse features,
wraps everything in a :class:`repro.GraphDataset`, and compares the
dataflows -- exactly what a user with their own graph data would do.

Run:  python examples/custom_graph.py
"""

import numpy as np

from repro import (
    GCNModel,
    GraphDataset,
    HyMMAccelerator,
    OPAccelerator,
    RWPAccelerator,
)
from repro.bench import format_table
from repro.graphs.synthetic import sparse_feature_matrix
from repro.sparse import COOMatrix, degree_stats


def make_edge_list(n_nodes: int = 600, m: int = 4, seed: int = 7):
    """An undirected preferential-attachment (Barabasi-Albert) edge list."""
    try:
        import networkx as nx

        graph = nx.barabasi_albert_graph(n_nodes, m, seed=seed)
        return list(graph.edges())
    except ImportError:
        rng = np.random.default_rng(seed)
        edges, targets = [], list(range(m))
        for u in range(m, n_nodes):
            for v in set(rng.choice(targets, size=m)):
                edges.append((u, int(v)))
            targets.extend([u] * m + [v for _, v in edges[-m:]])
        return edges


def edge_list_to_dataset(edges, n_nodes: int, feature_length: int = 96) -> GraphDataset:
    """Public-API path from raw edges to an accelerator-ready dataset."""
    src = np.array([u for u, v in edges] + [v for u, v in edges])
    dst = np.array([v for u, v in edges] + [u for u, v in edges])
    adjacency = COOMatrix(
        (n_nodes, n_nodes), src, dst, np.ones(src.size, dtype=np.float32)
    )
    features = sparse_feature_matrix(n_nodes, feature_length, density=0.15, seed=11)
    return GraphDataset("my-social-net", adjacency, features, hidden_dim=16)


def main() -> None:
    n_nodes = 600
    edges = make_edge_list(n_nodes)
    dataset = edge_list_to_dataset(edges, n_nodes)
    stats = degree_stats(dataset.adjacency)
    print(f"Custom dataset: {dataset}")
    print(f"  top-20% edge share: {stats.top20_edge_share:.2f} "
          f"(power-law graphs favour the hybrid dataflow)")

    model = GCNModel(dataset, n_layers=1, seed=0)
    rows = []
    for accelerator in (OPAccelerator(), RWPAccelerator(), HyMMAccelerator()):
        result = accelerator.run_inference(model)
        rows.append([
            result.accelerator,
            result.stats.cycles,
            result.stats.dram_total_bytes() / 1024,
            result.stats.hit_rate(),
        ])
    print()
    print(format_table(["dataflow", "cycles", "DRAM KB", "hit rate"], rows))


if __name__ == "__main__":
    main()
