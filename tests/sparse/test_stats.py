"""Degree / sparsity statistics (the Figure 2 inputs)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse import (
    COOMatrix,
    degree_stats,
    edge_share_of_top_fraction,
    gini_coefficient,
    sparsity,
)
from repro.sparse.stats import degree_cdf


class TestEdgeShare:
    def test_uniform_degrees(self):
        degrees = np.full(10, 4)
        assert edge_share_of_top_fraction(degrees, 0.2) == pytest.approx(0.2)

    def test_single_hub(self):
        degrees = np.array([100] + [0] * 9)
        assert edge_share_of_top_fraction(degrees, 0.1) == pytest.approx(1.0)

    def test_full_fraction_is_one(self):
        degrees = np.array([3, 1, 4, 1, 5])
        assert edge_share_of_top_fraction(degrees, 1.0) == pytest.approx(1.0)

    def test_zero_edges(self):
        assert edge_share_of_top_fraction(np.zeros(5), 0.2) == 0.0

    def test_at_least_one_node_counted(self):
        degrees = np.array([10, 1, 1])
        # fraction so small it rounds to zero nodes -> still counts one
        assert edge_share_of_top_fraction(degrees, 0.01) == pytest.approx(10 / 12)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            edge_share_of_top_fraction(np.ones(3), 0.0)
        with pytest.raises(ValueError):
            edge_share_of_top_fraction(np.ones(3), 1.5)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50),
           st.floats(0.05, 1.0))
    def test_monotone_in_fraction(self, degrees, fraction):
        degrees = np.array(degrees)
        lo = edge_share_of_top_fraction(degrees, fraction / 2 if fraction > 0.1 else 0.05)
        hi = edge_share_of_top_fraction(degrees, fraction)
        if fraction / 2 >= 0.05:
            assert hi >= lo - 1e-12


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(20, 7)) == pytest.approx(0.0, abs=1e-9)

    def test_single_hub_near_one(self):
        degrees = np.array([1000] + [0] * 99)
        assert gini_coefficient(degrees) > 0.95

    def test_empty(self):
        assert gini_coefficient(np.zeros(0)) == 0.0

    def test_all_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_bounded(self, small_graph):
        g = gini_coefficient(small_graph.row_degrees())
        assert 0.0 <= g <= 1.0


class TestDegreeStats:
    def test_counts(self, small_coo):
        s = degree_stats(small_coo, axis="row")
        assert s.n_nodes == 4
        assert s.n_edges == 6
        assert s.min == 0 and s.max == 3

    def test_col_axis(self, small_coo):
        s = degree_stats(small_coo, axis="col")
        assert s.n_nodes == 5
        assert s.max == 2

    def test_bad_axis(self, small_coo):
        with pytest.raises(ValueError):
            degree_stats(small_coo, axis="diag")

    def test_empty_matrix(self):
        s = degree_stats(COOMatrix.empty((0, 0)))
        assert s.n_nodes == 0 and s.n_edges == 0

    def test_power_law_top20(self, small_graph):
        s = degree_stats(small_graph)
        assert s.top20_edge_share > 0.5  # strongly skewed by construction

    def test_sparsity(self, small_coo):
        assert sparsity(small_coo) == pytest.approx(0.7)


class TestDegreeCDF:
    def test_monotone_curve(self, small_graph):
        fr, shares = degree_cdf(small_graph.row_degrees())
        assert np.all(np.diff(shares) >= -1e-12)
        assert shares[-1] == pytest.approx(1.0)

    def test_custom_fractions(self, small_graph):
        fr, shares = degree_cdf(small_graph.row_degrees(), np.array([0.2, 0.5]))
        assert fr.tolist() == [0.2, 0.5]
        assert len(shares) == 2
