"""Decoupled access/execute engine.

Models the HyMM pipeline of SMQ -> LSQ -> PE array (Sections IV-A..C)
at vector-op granularity:

* the **frontend** (SMQ feeding the LSQ) issues one memory request per
  cycle and may run ahead of the backend by up to ``lsq_depth``
  requests -- exactly the latency-hiding role the paper gives the LSQ
  ("while a missed load instruction waits ... subsequent load
  instructions can continue execution");
* the **backend** (the 16-MAC PE array) executes one scalar x vector
  MAC per cycle, in order, waiting when its operand has not arrived;
* **store-to-load forwarding**: a load whose address matches a recent
  store is served from the LSQ without touching the DMB (Section IV-B);
  the forwarding window is the LSQ's 128 entries;
* the sparse operand itself (pointers + indices + values) arrives as an
  SMQ **stream** that charges DRAM bandwidth; the stream can throttle
  the frontend when bandwidth saturates, but its latency is hidden by
  the SMQ's pointer/index buffers.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Set

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.buffer import CLASS_INDEX, CLASS_PARTIAL, CacheBuffer
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats

#: Engine implementations selectable via ``HyMMConfig.engine``.
ENGINE_KINDS = ("scalar", "batched")

#: Address bits below the (space, layer) prefix of
#: :class:`repro.hymm.dmb.AddressMap` addresses.  The batched engine
#: tracks which prefixes currently sit in the forwarding window so a
#: whole load batch over a different matrix can skip the per-address
#: store-map probe.
_SPACE_BITS = 32

_PARTIAL_IDX = CLASS_INDEX[CLASS_PARTIAL]

#: Minimum all-hit prefix length worth routing through the vector lane
#: (below this the numpy setup costs more than the flat loop saves).
_LANE_MIN = 48

#: Exactness gate for the vector lanes: every timeline value must sit
#: on the 2^-16 dyadic grid with magnitude below 2^35.  All simulator
#: cycle values are sums of multiples of 1/64 (DRAM transfer costs) and
#: integers (latencies, per-cycle steps), so in practice every value
#: qualifies; the gate makes the lane *provably* bit-exact -- on-grid
#: bounded operands make every add/max in the recurrence exact real
#: arithmetic, and exact arithmetic makes the closed form identical to
#: the sequential loop.  Any off-grid value falls back to the flat loop.
_LANE_MAG = float(1 << 35)


def _lane_scalar_ok(v: float) -> bool:
    return -_LANE_MAG < v < _LANE_MAG and (v * 65536.0).is_integer()


class AccessExecuteEngine:
    """One in-order decoupled pipeline over a shared memory hierarchy."""

    def __init__(
        self,
        buffer: CacheBuffer,
        dram: DRAM,
        stats: SimStats,
        lsq_depth: int = 128,
        forwarding: bool = True,
        smq_buffer_bytes: int = 16 * 1024,
        start_cycle: float = 0.0,
        tracer: Optional[Tracer] = None,
    ):
        if lsq_depth <= 0:
            raise ValueError("lsq_depth must be positive")
        self.buffer = buffer
        self.dram = dram
        self.stats = stats
        #: Simulated-time event sink; NULL_TRACER (disabled) by default,
        #: so the per-batch cost is one ``enabled`` check.  Tracing never
        #: touches ``stats`` -- cycle counts and counters are identical
        #: whether or not a tracer is attached.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.lsq_depth = lsq_depth
        self.forwarding = forwarding
        # Frontend slack granted by the SMQ's on-chip stream buffers.
        self._stream_slack = smq_buffer_bytes / dram.config.bytes_per_cycle
        #: Frontend load timeline: when the next read request can issue
        #: (the DMB's read queue accepts one request per cycle).
        self.issue_t = float(start_cycle)
        #: Store timeline: the DMB's *write queue* is a separate port
        #: (Fig. 3 shows distinct read/write queues), so stores and
        #: accumulator traffic do not steal load-issue slots.
        self.write_t = float(start_cycle)
        #: Backend timeline: when the PE array finishes its last op.
        self.exec_t = float(start_cycle)
        # Ring of backend completion times, one slot per LSQ entry: the
        # frontend reuses a slot only after the backend consumed it.
        self._ring = [float(start_cycle)] * lsq_depth
        self._k = 0
        # Store-to-load forwarding window (bounded by LSQ depth).
        self._store_map: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------
    # Compute + memory primitives
    # ------------------------------------------------------------------
    def mac_load(self, addr: int, cls: str, tag: str) -> None:
        """One vector MAC whose dense operand is loaded from memory."""
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.issue_t + 1.0, slot)
        forwarded = self.forwarding and addr in self._store_map
        if forwarded:
            ready = max(issue, self._store_map[addr])
            self.stats.lsq_forwards += 1
        else:
            ready, issue = self.buffer.read(issue, addr, cls, tag)
        self.issue_t = issue
        self.exec_t = max(self.exec_t + 1.0, ready)
        self._ring[self._k % self.lsq_depth] = self.exec_t
        self._k += 1
        self.stats.busy_cycles += 1

    def mac_stream_load(self, addr: int, cls: str, tag: str) -> None:
        """One vector MAC whose operand arrives on a *sequential* stream.

        OP-mode engines consume dense rows in ascending order ("The OP
        architecture involves sequential input reads", Section III), so
        a streaming prefetcher fetches them without occupying MSHRs or
        paying per-access latency.  If the line is already on-chip it is
        read from the buffer (a hit); otherwise it streams from DRAM --
        counted as a miss (the data was off-chip) but charged only
        bandwidth.  Streamed lines are not allocated: the PE stationary
        buffer holds them and they have no further reuse this pass.
        """
        if self.buffer.contains(addr):
            self.mac_load(addr, cls, tag)
            return
        self.stats.requests_issued += 1
        self.stats.buffer_misses[tag] += 1
        self.issue_t += 1.0
        end = self.dram.stream_read(self.issue_t, self.buffer.line_bytes, tag)
        throttled = end - self._stream_slack
        if throttled > self.issue_t:
            self.issue_t = throttled
        self.exec_t = max(self.exec_t + 1.0, self.issue_t)
        self.stats.busy_cycles += 1

    def load(self, addr: int, cls: str, tag: str) -> None:
        """Fetch one vector without issuing a MAC (the consuming ALU op
        follows separately, e.g. the add of a PE-side read-modify-write).
        The backend waits for the data but records no busy cycle."""
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.issue_t + 1.0, slot)
        if self.forwarding and addr in self._store_map:
            ready = max(issue, self._store_map[addr])
            self.stats.lsq_forwards += 1
        else:
            ready, issue = self.buffer.read(issue, addr, cls, tag)
        self.issue_t = issue
        self.exec_t = max(self.exec_t, ready)
        self._ring[self._k % self.lsq_depth] = self.exec_t
        self._k += 1

    def mac_local(self, n: int = 1) -> None:
        """``n`` vector MACs on operands already held in the PE
        stationary buffers (no memory request)."""
        self.exec_t += n
        self.stats.busy_cycles += n

    def alu_op(self, n: int = 1) -> None:
        """``n`` PE-array cycles of non-MAC ALU work (e.g. merge adds);
        counts as busy (the adder is doing useful work)."""
        self.exec_t += n
        self.stats.busy_cycles += n

    def wait_until(self, cycle: float) -> None:
        """Stall the backend until ``cycle`` (if it is in the future)."""
        if cycle > self.exec_t:
            self.exec_t = cycle

    def store(self, addr: int, cls: str, tag: str, allocate: bool = True) -> None:
        """Store one result vector through the LSQ into the DMB.

        The store occupies an LSQ slot at issue time but does *not*
        block the frontend until the data exists: the LSQ holds the
        entry and performs the write once the producing op completes
        (the paper's LSQ explicitly decouples stores this way).
        ``allocate=False`` streams it to DRAM (write-through,
        no-allocate) -- used for outputs with no expected reuse.
        """
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.write_t + 1.0, slot)
        # The buffer/DRAM see the request at its (monotone) issue time;
        # the LSQ entry is held until the producing op's data exists.
        self.buffer.write(issue, addr, cls, tag, allocate=allocate)
        self.write_t = issue
        self._ring[self._k % self.lsq_depth] = max(issue + 1.0, self.exec_t)
        self._k += 1
        self._record_store(addr, self.exec_t)

    def accumulate_store(self, addr: int, tag: str = "partial") -> None:
        """Emit one partial output to the DMB's near-memory accumulator.

        The add happens at the buffer, not in the PE array, so the
        backend does not stall; the request still occupies an LSQ slot
        and the DMB's write queue.
        """
        self.stats.requests_issued += 1
        slot = self._ring[self._k % self.lsq_depth]
        issue = max(self.write_t + 1.0, slot)
        self.buffer.accumulate(issue, addr, tag)
        self.write_t = issue
        self._ring[self._k % self.lsq_depth] = max(issue + 1.0, self.exec_t)
        self._k += 1
        self._record_store(addr, self.exec_t)

    def rmw(self, addr: int, cls: str, tag: str) -> None:
        """Read-modify-write of one output vector *through the PE array*
        (the no-near-memory-accumulator way to merge a partial output):
        load the current value, spend an adder cycle, store it back."""
        self.load(addr, cls, tag)
        self.alu_op(1)
        self.store(addr, cls, tag, allocate=True)

    def stream(self, nbytes: int, tag: str) -> None:
        """Consume ``nbytes`` of an SMQ-prefetched sequential stream.

        Charges DRAM bandwidth; throttles the frontend only if the
        stream falls more than one SMQ buffer behind the consumption
        point.
        """
        end = self.dram.stream_read(self.issue_t, nbytes, tag)
        throttled = end - self._stream_slack
        if throttled > self.issue_t:
            self.issue_t = throttled

    # ------------------------------------------------------------------
    def drain(self) -> float:
        """Finish in-flight work; returns the final cycle of this engine."""
        return max(self.issue_t, self.write_t, self.exec_t)

    def _record_store(self, addr: int, ready: float) -> None:
        if not self.forwarding:
            return
        self._store_map[addr] = ready
        self._store_map.move_to_end(addr)
        while len(self._store_map) > self.lsq_depth:
            self._store_map.popitem(last=False)

    def _track_partial_peak(self) -> None:
        """PE-merge footprint tracking: distinct partial lines resident
        plus those spilled, mirroring the near-memory accumulator's
        bookkeeping (the split organisation routes partials to its
        output half)."""
        target = getattr(self.buffer, "output_buffer", self.buffer)
        footprint = (
            target.resident_lines(CLASS_PARTIAL) + len(target._spilled_partials)
        ) * target.line_bytes
        if footprint > self.stats.partial_peak_bytes:
            self.stats.partial_peak_bytes = footprint

    # ------------------------------------------------------------------
    # Batch primitives (reference implementations)
    #
    # Kernels always issue whole address batches.  These loops over the
    # scalar primitives *define* the semantics; the batched engine
    # subclass replaces them with inlined fast paths that must stay
    # cycle- and stats-exact (the equivalence property tests compare
    # full ``SimStats`` between the two paths).
    # ------------------------------------------------------------------
    def mac_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        """One :meth:`mac_load` per address, in array order."""
        t0 = self.drain()
        mac_load = self.mac_load
        for addr in addrs.tolist():
            mac_load(addr, cls, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "mac_load_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        """One :meth:`load` per address, in array order."""
        t0 = self.drain()
        load = self.load
        for addr in addrs.tolist():
            load(addr, cls, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "load_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def mac_stream_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        """One :meth:`mac_stream_load` per address, in array order."""
        t0 = self.drain()
        mac_stream_load = self.mac_stream_load
        for addr in addrs.tolist():
            mac_stream_load(addr, cls, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "mac_stream_load_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def store_batch(
        self, addrs: np.ndarray, cls: str, tag: str, allocate: bool = True
    ) -> None:
        """One :meth:`store` per address, in array order."""
        t0 = self.drain()
        store = self.store
        for addr in addrs.tolist():
            store(addr, cls, tag, allocate=allocate)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "store_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )

    def accumulate_store_batch(self, addrs: np.ndarray, tag: str = "partial") -> None:
        """One :meth:`accumulate_store` per address, in array order."""
        t0 = self.drain()
        accumulate_store = self.accumulate_store
        for addr in addrs.tolist():
            accumulate_store(addr, tag)
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "accumulate_store_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "tag": tag},
            )

    def merge_rmw_batch(
        self,
        addrs: np.ndarray,
        cls: str,
        tag: str,
        touched: Set[int],
        track_peak: bool = False,
    ) -> None:
        """Merge one partial output per address through the PE array.

        The no-near-memory-accumulator merge path: the first touch of a
        line write-allocates (nothing to read yet); later touches are a
        read-modify-write.  ``touched`` is the caller's cross-batch set
        of first-touched addresses; ``track_peak`` additionally mirrors
        the accumulator's partial-footprint peak tracking (kernels track
        it, the CWP baseline's PE-local pool does not)."""
        t0 = self.drain()
        stats = self.stats
        for addr in addrs.tolist():
            stats.partials_produced += 1
            if addr in touched:
                self.rmw(addr, cls, tag)
            else:
                touched.add(addr)
                self.store(addr, cls, tag)
            if track_peak:
                self._track_partial_peak()
        tracer = self.tracer
        if tracer.enabled and len(addrs):
            tracer.span(
                "merge_rmw_batch", t0, self.drain(), "engine",
                {"n": int(len(addrs)), "cls": cls, "tag": tag},
            )


class BatchedAccessExecuteEngine(AccessExecuteEngine):
    """Vectorized batch-issue fast path of the decoupled pipeline.

    Overrides every batch primitive with a single Python loop that
    inlines the per-address hot path -- LSQ ring slot, store-to-load
    forwarding probe, slot-arena residency probe, one-splice intrusive
    LRU touch and the three-timeline arithmetic -- and batches the
    stats-counter updates.  Primary misses run through the buffer's
    single-frame :meth:`repro.sim.buffer.CacheBuffer._read_miss` /
    ``_insert``, so the MSHR/DRAM/eviction machinery has exactly one
    implementation.

    On top of the flat loops, the load-side primitives route **all-hit
    prefixes** through a numpy vector lane (:meth:`_all_hit_lane`): when
    pre-classification proves a prefix of the batch entirely resident,
    ready in time, and outside the forwarding window, the uniform-latency
    timeline recurrence is computed elementwise in closed form and the
    LRU touches applied as one run of C-level list splices.  The lane
    only engages when
    an exactness gate proves the closed form bit-identical to the
    sequential loop (all operands on a dyadic grid, see ``_LANE_MAG``);
    everything else takes the flat loop, which performs the *same scalar
    operations in the same order* as the reference engine.  Either way
    every cycle value is bit-identical to the scalar engine -- the
    equivalence contract ``docs/performance.md`` documents and
    ``tests/sim/test_engine_equivalence.py`` enforces.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Live count of forwarding-window addresses per address-space
        # prefix (``addr >> _SPACE_BITS``), kept in sync with every
        # store-map insertion/trim; see :meth:`_forward_active`.
        self._store_spaces: Dict[int, int] = {}
        # Cached [0, 1, ..., lsq_depth) for the vector lane's prefix-max
        # recurrence (sliced per call, never reallocated).
        self._lane_idx = np.arange(self.lsq_depth, dtype=np.float64)
        # Whole-simulation grid proof for the vector lane.  Every cycle
        # value any engine produces is built from the start cycle by
        # max() and by adding 1.0, integer latencies, or DRAM transfer
        # costs ``nbytes / bytes_per_cycle``.  When bytes_per_cycle is a
        # power of two <= 2^16, every such cost is an exact multiple of
        # 2^-16; with a nonnegative on-grid start cycle the induction
        # gives *every* timeline/ring/ready/forwarding value nonnegative
        # and on the 2^-16 grid, so the lane's per-array grid gate is
        # provably redundant and only magnitude checks remain.
        bpc = self.dram.config.bytes_per_cycle
        self._lane_grid_exact = (
            bpc > 0.0
            and math.frexp(bpc)[0] == 0.5
            and bpc <= 65536.0
            and self.issue_t >= 0.0
            and (self.issue_t * 65536.0).is_integer()
            and (self._stream_slack * 65536.0).is_integer()
        )

    # ------------------------------------------------------------------
    # Forwarding-window bookkeeping
    # ------------------------------------------------------------------
    def _record_store(self, addr: int, ready: float) -> None:
        if not self.forwarding:
            return
        store_map = self._store_map
        if addr in store_map:
            store_map[addr] = ready
            store_map.move_to_end(addr)
            return
        store_map[addr] = ready
        spaces = self._store_spaces
        sp = addr >> _SPACE_BITS
        spaces[sp] = spaces.get(sp, 0) + 1
        while len(store_map) > self.lsq_depth:
            a, _ = store_map.popitem(last=False)
            sp = a >> _SPACE_BITS
            c = spaces[sp] - 1
            if c:
                spaces[sp] = c
            else:
                del spaces[sp]

    def _forward_active(self, addr_list: List[int]) -> bool:
        """Whether the forwarding window could match *any* address of
        the batch.

        Kernels emit monotone address batches, so equal first/last
        space prefixes mean the whole batch lives in one (space, layer)
        region and a single ``_store_spaces`` lookup settles it; a
        batch spanning regions conservatively probes per address.
        """
        if not self.forwarding or not self._store_map:
            return False
        sp = addr_list[0] >> _SPACE_BITS
        if sp != (addr_list[-1] >> _SPACE_BITS):
            return True
        return sp in self._store_spaces

    # ------------------------------------------------------------------
    # All-hit vector lane
    # ------------------------------------------------------------------
    def _all_hit_lane(self, buf: CacheBuffer, addr_list: List[int], mac: bool) -> int:
        """Vectorize the longest all-hit prefix of a load batch.

        Preconditions (checked here; any failure returns 0 or a shorter
        prefix and the caller's flat loop handles the rest):

        * every prefix address resident in ``buf`` (hits never allocate
          or evict, so residency is invariant across the prefix);
        * every hit line ready by its issue floor
          (``line.ready <= issue_t + 1 + hit_latency``), so each
          per-element ready is exactly ``issue + hit_latency``;
        * the caller established the forwarding window cannot match
          (space filter empty), so no per-address store-map probe;
        * ``issue_t``/``exec_t`` and every consumed LSQ ring value on
          the 2^-16 grid with magnitude < 2^35, so the closed-form
          recurrences below are exact real arithmetic -- the same
          per-element operations as the flat loop, just elementwise.

        With ``S_j`` the pre-lane ring values (``j < depth``), the
        sequential all-hit recurrences

        ``issue_i = max(issue_(i-1) + 1, ring_slot_i)``
        ``ready_i = issue_i + hit_latency``
        mac:   ``exec_i  = max(exec_(i-1) + 1, ready_i)``
        plain: ``exec_i  = max(exec_(i-1), ready_i)``

        unroll to ``issue_i = i + base_i`` with
        ``base_i = max(issue_t + 1, max_{j<=min(i, depth-1)}(S_j - j))``
        -- a prefix maximum over *at most lsq_depth* values, because
        ring slots consumed beyond ``depth`` were written by this lane
        and provably never bind: the exec timeline leads the issue
        timeline by at most ``C = max(exec_t - issue_t, hit_latency)``
        throughout an all-hit run, so the slot-reuse constraint
        ``exec_(i-depth) <= issue_(i-1) + 1`` holds whenever
        ``C <= depth`` (checked; the lane truncates to ``depth``
        elements otherwise).  Past ``depth`` everything is affine in
        ``i``, so the whole lane costs O(lsq_depth) numpy work no
        matter how long the batch.

        The per-element ready check itself is usually free: the
        buffer's ``_max_ready`` watermark bounds every resident line's
        ready time, so when it sits at or below the first issue floor
        no gather is needed at all.

        LRU touches are applied afterwards in batch order -- each one
        C-level intrusive-list splice, duplicates re-splicing exactly
        like the sequential per-hit touches.

        Returns the number of prefix elements consumed (0 if the lane
        did not engage); updates ``issue_t``/``exec_t``/ring/``_k`` and
        the LRU lists for exactly that prefix.
        """
        slot_of = buf._slot_of
        if not slot_of or addr_list[0] not in slot_of:
            return 0
        issue_t = self.issue_t
        exec_t = self.exec_t
        if self._lane_grid_exact:
            # On-grid and nonnegative by construction; bound magnitude.
            if issue_t >= _LANE_MAG or exec_t >= _LANE_MAG:
                return 0
        elif not (_lane_scalar_ok(issue_t) and _lane_scalar_ok(exec_t)):
            return 0
        n = len(addr_list)
        try:
            slot_list = list(map(slot_of.__getitem__, addr_list))
            m = n
        except KeyError:
            mask = np.fromiter(
                map(slot_of.__contains__, addr_list), np.bool_, count=n
            )
            m = int(np.argmin(mask))
            if m < _LANE_MIN:
                return 0
            slot_list = list(map(slot_of.__getitem__, addr_list[:m]))
        hit_lat = buf.hit_latency
        floor0 = issue_t + 1.0 + hit_lat
        if buf._max_ready > floor0:
            ready_list = list(map(buf._slot_ready.__getitem__, slot_list))
            if max(ready_list) > floor0:
                ready_arr = np.fromiter(ready_list, np.float64, count=m)
                m = int(np.argmin(ready_arr <= floor0))
                if m < _LANE_MIN:
                    return 0
                slot_list = slot_list[:m]
        depth = self.lsq_depth
        if m > depth and exec_t - issue_t > depth:
            # The ring-feedback no-bind bound needs C <= depth; consume
            # only pre-lane ring slots instead.
            m = depth
            slot_list = slot_list[:m]
        ring = self._ring
        k0 = self._k % depth
        w = m if m < depth else depth
        if k0 + w <= depth:
            S = np.array(ring[k0 : k0 + w], dtype=np.float64)
        else:
            cut = depth - k0
            S = np.empty(w, dtype=np.float64)
            S[:cut] = ring[k0:]
            S[cut:] = ring[: w - cut]
        idx = self._lane_idx[:w]
        if self._lane_grid_exact:
            # Ring values are on-grid and nonnegative by construction
            # (see ``__init__``); compute the prefix max in place and
            # bound the magnitude afterwards -- ``bl + depth`` bounds
            # every consumed ring value, so one scalar comparison
            # replaces the per-array gate.  (An over-bound value makes
            # ``bl`` huge even under rounding, so the check is safe.)
            np.subtract(S, idx, out=S)
            np.maximum.accumulate(S, out=S)
            base = np.maximum(S, issue_t + 1.0, out=S)
            bl = float(base[w - 1])
            if bl + depth >= _LANE_MAG:
                return 0
        else:
            # Exactness gate on the consumed pre-lane ring values
            # (values the lane writes are grid sums of grid values,
            # still exact).
            scaled = S * 65536.0
            if not (
                (np.abs(S) < _LANE_MAG).all()
                and (scaled == np.floor(scaled)).all()
            ):
                return 0
            base = np.maximum(issue_t + 1.0, np.maximum.accumulate(S - idx))
            bl = float(base[w - 1])
        h = float(hit_lat)
        if mac:
            np.add(base, h, out=base)
            np.maximum(base, exec_t + 1.0, out=base)
            np.add(base, idx, out=base)
            e_head = base.tolist()
        else:
            np.add(base, h, out=base)
            np.add(base, idx, out=base)
            e_head = np.maximum(base, exec_t, out=base).tolist()
        if m <= depth:
            if k0 + m <= depth:
                ring[k0 : k0 + m] = e_head
            else:
                cut = depth - k0
                ring[k0:] = e_head[:cut]
                ring[: m - cut] = e_head[cut:]
            exec_last = e_head[-1]
        else:
            # The final ring state is E_i for the last `depth` elements;
            # past i = depth the base is the constant `bl`, so those
            # values are affine in i.
            lo = m - depth
            start_i = depth if lo < depth else lo
            if mac:
                c = max(exec_t + 1.0, bl + h)
                aff = (np.arange(start_i, m, dtype=np.float64) + c).tolist()
            else:
                aff = np.maximum(
                    exec_t, np.arange(start_i, m, dtype=np.float64) + (bl + h)
                ).tolist()
            tail_vals = (e_head[lo:] + aff) if lo < depth else aff
            p0 = (k0 + lo) % depth
            cut = depth - p0
            ring[p0:] = tail_vals[:cut]
            ring[:p0] = tail_vals[cut:]
            exec_last = tail_vals[-1]
        self.issue_t = (m - 1) + max(issue_t + 1.0, bl)
        self.exec_t = exec_last
        self._k += m
        if buf.lru:
            # Bulk LRU touch in batch order: per-slot C-level list
            # splices; a duplicate slot re-splices to the tail exactly
            # like the sequential per-hit touches would.
            ods = buf._lru_ods
            cls_arr = buf._slot_cls
            for s in slot_list:
                ods[cls_arr[s]].move_to_end(s)
        return m

    # ------------------------------------------------------------------
    # Batch primitives (inlined fast paths)
    # ------------------------------------------------------------------
    def mac_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        addr_list = addrs.tolist()
        fwd = self._forward_active(addr_list)
        start = 0
        if not fwd and n >= _LANE_MIN:
            start = self._all_hit_lane(buf, addr_list, mac=True)
            if start:
                stats.requests_issued += start
                stats.busy_cycles += start
                stats.buffer_hits[tag] += start
                if start == n:
                    if tracer.enabled:
                        tracer.span(
                            "mac_load_batch", t0, self.drain(), "engine",
                            {"n": n, "cls": cls, "tag": tag},
                        )
                    return
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        ods = buf._lru_ods
        cls_arr = buf._slot_cls
        outstanding = buf._outstanding
        read_miss = buf._read_miss
        lru = buf.lru
        hit_lat = buf.hit_latency
        store_map = self._store_map
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        exec_t = self.exec_t
        hits = 0
        misses = 0
        fetches = 0
        forwards = 0
        for addr in addr_list[start:] if start else addr_list:
            slot = ring[k]
            issue = issue_t + 1.0
            if slot > issue:
                issue = slot
            if fwd and addr in store_map:
                ready = store_map[addr]
                if issue > ready:
                    ready = issue
                forwards += 1
            else:
                s = slot_of.get(addr)
                if s is not None:
                    if lru:
                        ods[cls_arr[s]].move_to_end(s)
                    hits += 1
                    ready = issue + hit_lat
                    sr = slot_ready[s]
                    if sr > ready:
                        ready = sr
                else:
                    misses += 1
                    pending = outstanding.get(addr)
                    if pending is not None:
                        # Secondary miss: merged into the pending MSHR.
                        ready = issue + hit_lat
                        if pending > ready:
                            ready = pending
                    else:
                        fetches += 1
                        ready, issue = read_miss(issue, addr, cls, tag)
            issue_t = issue
            e = exec_t + 1.0
            if ready > e:
                e = ready
            exec_t = e
            ring[k] = e
            k += 1
            if k == depth:
                k = 0
        rest = n - start
        self.issue_t = issue_t
        self.exec_t = exec_t
        self._k += rest
        stats.requests_issued += rest
        stats.busy_cycles += rest
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if fetches:
            stats.dram_read_bytes[tag] += fetches * buf.line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if tracer.enabled:
            tracer.span(
                "mac_load_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        addr_list = addrs.tolist()
        fwd = self._forward_active(addr_list)
        start = 0
        if not fwd and n >= _LANE_MIN:
            start = self._all_hit_lane(buf, addr_list, mac=False)
            if start:
                stats.requests_issued += start
                stats.buffer_hits[tag] += start
                if start == n:
                    if tracer.enabled:
                        tracer.span(
                            "load_batch", t0, self.drain(), "engine",
                            {"n": n, "cls": cls, "tag": tag},
                        )
                    return
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        ods = buf._lru_ods
        cls_arr = buf._slot_cls
        outstanding = buf._outstanding
        read_miss = buf._read_miss
        lru = buf.lru
        hit_lat = buf.hit_latency
        store_map = self._store_map
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        exec_t = self.exec_t
        hits = 0
        misses = 0
        fetches = 0
        forwards = 0
        for addr in addr_list[start:] if start else addr_list:
            slot = ring[k]
            issue = issue_t + 1.0
            if slot > issue:
                issue = slot
            if fwd and addr in store_map:
                ready = store_map[addr]
                if issue > ready:
                    ready = issue
                forwards += 1
            else:
                s = slot_of.get(addr)
                if s is not None:
                    if lru:
                        ods[cls_arr[s]].move_to_end(s)
                    hits += 1
                    ready = issue + hit_lat
                    sr = slot_ready[s]
                    if sr > ready:
                        ready = sr
                else:
                    misses += 1
                    pending = outstanding.get(addr)
                    if pending is not None:
                        ready = issue + hit_lat
                        if pending > ready:
                            ready = pending
                    else:
                        fetches += 1
                        ready, issue = read_miss(issue, addr, cls, tag)
            issue_t = issue
            # A plain fetch: the backend waits but records no busy MAC.
            if ready > exec_t:
                exec_t = ready
            ring[k] = exec_t
            k += 1
            if k == depth:
                k = 0
        rest = n - start
        self.issue_t = issue_t
        self.exec_t = exec_t
        self._k += rest
        stats.requests_issued += rest
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if fetches:
            stats.dram_read_bytes[tag] += fetches * buf.line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if tracer.enabled:
            tracer.span(
                "load_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def mac_stream_load_batch(self, addrs: np.ndarray, cls: str, tag: str) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        top = self.buffer
        buf = top.route(cls)
        # One residency pass against the routed half only; the scalar
        # reference consults top-level contains(), but the two agree
        # whenever no address is resident in the *other* half.
        mask = buf.classify_batch(addrs)
        if buf is not top:
            other = (
                top.output_buffer
                if buf is top.input_buffer
                else top.input_buffer
            )
            # Split organisation: an address resident in the other half
            # hits the top-level contains() but would miss (and
            # allocate) in the routed half, changing residency mid-batch
            # and invalidating the plan -- replay exactly, one scalar
            # primitive at a time.
            if bool(np.any(other.classify_batch(addrs) & ~mask)):
                AccessExecuteEngine.mac_stream_load_batch(self, addrs, cls, tag)
                return
        # Residency is invariant across the batch: hits never allocate
        # and streamed lines are never inserted, so the mask stays true.
        stats = self.stats
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        ods = buf._lru_ods
        cls_arr = buf._slot_cls
        lru = buf.lru
        hit_lat = buf.hit_latency
        store_map = self._store_map
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        exec_t = self.exec_t
        dram = self.dram
        line_bytes = buf.line_bytes
        line_cost = buf._line_cost
        slack = self._stream_slack
        hits = 0
        misses = 0
        forwards = 0
        nk = 0
        addr_list = addrs.tolist()
        fwd = self._forward_active(addr_list)
        for addr, resident in zip(addr_list, mask.tolist()):
            if resident:
                slot = ring[k]
                issue = issue_t + 1.0
                if slot > issue:
                    issue = slot
                if fwd and addr in store_map:
                    ready = store_map[addr]
                    if issue > ready:
                        ready = issue
                    forwards += 1
                else:
                    s = slot_of[addr]
                    if lru:
                        ods[cls_arr[s]].move_to_end(s)
                    hits += 1
                    ready = issue + hit_lat
                    sr = slot_ready[s]
                    if sr > ready:
                        ready = sr
                issue_t = issue
                e = exec_t + 1.0
                if ready > e:
                    e = ready
                exec_t = e
                ring[k] = e
                k += 1
                if k == depth:
                    k = 0
                nk += 1
            else:
                # Stream miss: bandwidth only (DRAM.stream_read,
                # inlined; the byte counter is batched below).
                misses += 1
                issue_t += 1.0
                start = dram.next_free
                if issue_t > start:
                    start = issue_t
                end = start + line_cost
                dram.next_free = end
                throttled = end - slack
                if throttled > issue_t:
                    issue_t = throttled
                e = exec_t + 1.0
                if issue_t > e:
                    e = issue_t
                exec_t = e
        self.issue_t = issue_t
        self.exec_t = exec_t
        self._k += nk
        stats.requests_issued += n
        stats.busy_cycles += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
            stats.dram_read_bytes[tag] += misses * line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if tracer.enabled:
            tracer.span(
                "mac_stream_load_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def store_batch(
        self, addrs: np.ndarray, cls: str, tag: str, allocate: bool = True
    ) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        slot_dirty = buf._slot_dirty
        ods = buf._lru_ods
        cls_arr = buf._slot_cls
        mr = buf._max_ready
        insert = buf._insert
        dram = buf.dram
        line_cost = buf._line_cost
        lru = buf.lru
        hit_lat = buf.hit_latency
        fwd = self.forwarding
        store_map = self._store_map
        spaces = self._store_spaces
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        write_t = self.write_t
        # Stores never advance the backend, so the forwarded ready value
        # (scalar: ``_record_store(addr, self.exec_t)``) is constant.
        exec_t = self.exec_t
        hits = 0
        misses = 0
        posted = 0
        for addr in addrs.tolist():
            slot = ring[k]
            issue = write_t + 1.0
            if slot > issue:
                issue = slot
            s = slot_of.get(addr)
            if s is not None:
                hits += 1
                slot_dirty[s] = True
                r = issue + hit_lat
                if r > slot_ready[s]:
                    slot_ready[s] = r
                    if r > mr:
                        mr = r
                if lru:
                    ods[cls_arr[s]].move_to_end(s)
            elif allocate:
                misses += 1
                insert(issue, addr, cls, True, issue + hit_lat)
            else:
                # Write-through/no-allocate: DRAM.write, inlined; the
                # byte counter is batched below.
                misses += 1
                posted += 1
                start = dram.next_free
                if issue > start:
                    start = issue
                dram.next_free = start + line_cost
            write_t = issue
            r2 = issue + 1.0
            if exec_t > r2:
                r2 = exec_t
            ring[k] = r2
            k += 1
            if k == depth:
                k = 0
            if fwd:
                if addr in store_map:
                    store_map[addr] = exec_t
                    store_map.move_to_end(addr)
                else:
                    store_map[addr] = exec_t
                    sp = addr >> _SPACE_BITS
                    spaces[sp] = spaces.get(sp, 0) + 1
        if fwd:
            # Deferred trim: the surviving window is the last lsq_depth
            # distinct addresses in last-store order either way, and no
            # forwarding lookup happens inside a store batch.
            while len(store_map) > depth:
                a, _ = store_map.popitem(last=False)
                sp = a >> _SPACE_BITS
                c = spaces[sp] - 1
                if c:
                    spaces[sp] = c
                else:
                    del spaces[sp]
        if mr > buf._max_ready:
            buf._max_ready = mr
        self.write_t = write_t
        self._k += n
        stats.requests_issued += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if posted:
            stats.dram_write_bytes[tag] += posted * buf.line_bytes
        if tracer.enabled:
            tracer.span(
                "store_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )

    def accumulate_store_batch(self, addrs: np.ndarray, tag: str = "partial") -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = getattr(self.buffer, "output_buffer", self.buffer)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        slot_dirty = buf._slot_dirty
        ods = buf._lru_ods
        cls_arr = buf._slot_cls
        mr = buf._max_ready
        insert = buf._insert
        lru = buf.lru
        hit_lat = buf.hit_latency
        counts = buf._class_count
        spilled = buf._spilled_partials
        line_bytes = buf.line_bytes
        stride = stats.PARTIAL_TIMELINE_STRIDE
        timeline = stats.partial_timeline
        fwd = self.forwarding
        store_map = self._store_map
        spaces = self._store_spaces
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        write_t = self.write_t
        exec_t = self.exec_t
        hits = 0
        misses = 0
        pp = stats.partials_produced
        peak = stats.partial_peak_bytes
        # The partial footprint only changes when a line is inserted,
        # evicted or refetched -- all inside the miss branches below --
        # so it is recomputed there and cached across the hits.
        footprint = (counts[_PARTIAL_IDX] + len(spilled)) * line_bytes
        for addr in addrs.tolist():
            slot = ring[k]
            issue = write_t + 1.0
            if slot > issue:
                issue = slot
            pp += 1
            s = slot_of.get(addr)
            if s is not None:
                hits += 1
                slot_dirty[s] = True
                r = issue + hit_lat
                if r > slot_ready[s]:
                    slot_ready[s] = r
                    if r > mr:
                        mr = r
                if lru:
                    ods[cls_arr[s]].move_to_end(s)
                if footprint > peak:
                    peak = footprint
                if pp % stride == 0:
                    timeline.append((pp, footprint))
            elif addr in spilled:
                # Spilled partial: demand refetch + re-merge.  The
                # scalar accumulate bumps partials_produced and reads/
                # updates the peak itself: sync the locals around it.
                stats.partials_produced = pp - 1
                stats.partial_peak_bytes = peak
                buf.accumulate(issue, addr, tag)
                peak = stats.partial_peak_bytes
                footprint = (counts[_PARTIAL_IDX] + len(spilled)) * line_bytes
            else:
                misses += 1
                insert(issue, addr, CLASS_PARTIAL, True, issue + hit_lat)
                footprint = (counts[_PARTIAL_IDX] + len(spilled)) * line_bytes
                if footprint > peak:
                    peak = footprint
                if pp % stride == 0:
                    timeline.append((pp, footprint))
            write_t = issue
            r2 = issue + 1.0
            if exec_t > r2:
                r2 = exec_t
            ring[k] = r2
            k += 1
            if k == depth:
                k = 0
            if fwd:
                if addr in store_map:
                    store_map[addr] = exec_t
                    store_map.move_to_end(addr)
                else:
                    store_map[addr] = exec_t
                    sp = addr >> _SPACE_BITS
                    spaces[sp] = spaces.get(sp, 0) + 1
        if fwd:
            while len(store_map) > depth:
                a, _ = store_map.popitem(last=False)
                sp = a >> _SPACE_BITS
                c = spaces[sp] - 1
                if c:
                    spaces[sp] = c
                else:
                    del spaces[sp]
        if mr > buf._max_ready:
            buf._max_ready = mr
        self.write_t = write_t
        self._k += n
        stats.partials_produced = pp
        stats.partial_peak_bytes = peak
        stats.requests_issued += n
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if tracer.enabled:
            tracer.span(
                "accumulate_store_batch", t0, self.drain(), "engine",
                {"n": n, "tag": tag},
            )

    def merge_rmw_batch(
        self,
        addrs: np.ndarray,
        cls: str,
        tag: str,
        touched: Set[int],
        track_peak: bool = False,
    ) -> None:
        n = len(addrs)
        if n == 0:
            return
        tracer = self.tracer
        t0 = self.drain()
        stats = self.stats
        buf = self.buffer.route(cls)
        slot_of = buf._slot_of
        slot_ready = buf._slot_ready
        slot_dirty = buf._slot_dirty
        ods = buf._lru_ods
        cls_arr = buf._slot_cls
        mr = buf._max_ready
        insert = buf._insert
        outstanding = buf._outstanding
        read_miss = buf._read_miss
        lru = buf.lru
        hit_lat = buf.hit_latency
        fwd = self.forwarding
        store_map = self._store_map
        spaces = self._store_spaces
        ring = self._ring
        depth = self.lsq_depth
        k = self._k % depth
        issue_t = self.issue_t
        write_t = self.write_t
        exec_t = self.exec_t
        target = getattr(self.buffer, "output_buffer", self.buffer)
        target_counts = target._class_count
        target_spilled = target._spilled_partials
        target_line_bytes = target.line_bytes
        requests = 0
        busy = 0
        hits = 0
        misses = 0
        fetches = 0
        forwards = 0
        nk = 0
        pp = stats.partials_produced
        peak = stats.partial_peak_bytes
        # Cached like in accumulate_store_batch: only the miss branches
        # change the partial footprint.
        footprint = (
            target_counts[_PARTIAL_IDX] + len(target_spilled)
        ) * target_line_bytes
        for addr in addrs.tolist():
            pp += 1
            if addr in touched:
                # rmw = load + alu_op(1) + store.
                requests += 1
                slot = ring[k]
                issue = issue_t + 1.0
                if slot > issue:
                    issue = slot
                if fwd and addr in store_map:
                    ready = store_map[addr]
                    if issue > ready:
                        ready = issue
                    forwards += 1
                    probe = True
                    s = None
                else:
                    probe = False
                    s = slot_of.get(addr)
                    if s is not None:
                        if lru:
                            ods[cls_arr[s]].move_to_end(s)
                        hits += 1
                        ready = issue + hit_lat
                        sr = slot_ready[s]
                        if sr > ready:
                            ready = sr
                    else:
                        misses += 1
                        pending = outstanding.get(addr)
                        if pending is not None:
                            # Secondary miss: merged into the pending
                            # MSHR (the line was evicted while still in
                            # flight, so it is genuinely absent and the
                            # store leg write-allocates).
                            ready = issue + hit_lat
                            if pending > ready:
                                ready = pending
                        else:
                            fetches += 1
                            ready, issue = read_miss(issue, addr, cls, tag)
                            footprint = (
                                target_counts[_PARTIAL_IDX] + len(target_spilled)
                            ) * target_line_bytes
                            # The read just allocated the line; the
                            # store leg below reuses it.
                            s = slot_of[addr]
                issue_t = issue
                if ready > exec_t:
                    exec_t = ready
                ring[k] = exec_t
                k += 1
                if k == depth:
                    k = 0
                nk += 1
                exec_t += 1.0
                busy += 1
            else:
                touched.add(addr)
                probe = True
                s = None
            # The (write-allocating) store leg, shared by both
            # branches; nothing between the load leg's probe and here
            # can evict, so a line it found (or allocated) is reused.
            requests += 1
            slot = ring[k]
            issue = write_t + 1.0
            if slot > issue:
                issue = slot
            if probe:
                s = slot_of.get(addr)
            if s is not None:
                hits += 1
                slot_dirty[s] = True
                r = issue + hit_lat
                if r > slot_ready[s]:
                    slot_ready[s] = r
                    if r > mr:
                        mr = r
                if lru:
                    ods[cls_arr[s]].move_to_end(s)
            else:
                misses += 1
                insert(issue, addr, cls, True, issue + hit_lat)
                footprint = (
                    target_counts[_PARTIAL_IDX] + len(target_spilled)
                ) * target_line_bytes
            write_t = issue
            r2 = issue + 1.0
            if exec_t > r2:
                r2 = exec_t
            ring[k] = r2
            k += 1
            if k == depth:
                k = 0
            nk += 1
            if fwd:
                # Loads probe the window inside this batch, so the trim
                # must happen per store, exactly as _record_store does.
                if addr in store_map:
                    store_map[addr] = exec_t
                    store_map.move_to_end(addr)
                else:
                    store_map[addr] = exec_t
                    sp = addr >> _SPACE_BITS
                    spaces[sp] = spaces.get(sp, 0) + 1
                    if len(store_map) > depth:
                        a, _ = store_map.popitem(last=False)
                        sp = a >> _SPACE_BITS
                        c = spaces[sp] - 1
                        if c:
                            spaces[sp] = c
                        else:
                            del spaces[sp]
            if track_peak and footprint > peak:
                peak = footprint
        if mr > buf._max_ready:
            buf._max_ready = mr
        self.issue_t = issue_t
        self.write_t = write_t
        self.exec_t = exec_t
        self._k += nk
        stats.partials_produced = pp
        stats.requests_issued += requests
        stats.busy_cycles += busy
        if hits:
            stats.buffer_hits[tag] += hits
        if misses:
            stats.buffer_misses[tag] += misses
        if fetches:
            stats.dram_read_bytes[tag] += fetches * buf.line_bytes
        if forwards:
            stats.lsq_forwards += forwards
        if track_peak and peak > stats.partial_peak_bytes:
            stats.partial_peak_bytes = peak
        if tracer.enabled:
            tracer.span(
                "merge_rmw_batch", t0, self.drain(), "engine",
                {"n": n, "cls": cls, "tag": tag},
            )


def make_engine(
    kind: str,
    buffer: CacheBuffer,
    dram: DRAM,
    stats: SimStats,
    **kwargs,
) -> AccessExecuteEngine:
    """Build the engine implementation ``kind`` names.

    ``"scalar"`` is the reference model (one Python call per access);
    ``"batched"`` is the cycle-exact vectorized fast path and the
    default of :class:`repro.hymm.config.HyMMConfig`.
    """
    if kind == "scalar":
        return AccessExecuteEngine(buffer, dram, stats, **kwargs)
    if kind == "batched":
        return BatchedAccessExecuteEngine(buffer, dram, stats, **kwargs)
    raise ValueError(f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}")
