#!/usr/bin/env python3
"""Full multi-layer GCN inference on the accelerator.

Runs a two-layer GCN (the standard Kipf-Welling configuration, hidden
dimension 16 as in Table II) over a synthetic Amazon-Photo instance on
HyMM, layer by layer, and verifies every intermediate activation
against the NumPy reference.  Also prints the per-phase cycle
breakdown, showing how combination-first scheduling splits the work.

Run:  python examples/gcn_inference.py
"""

import numpy as np

from repro import GCNModel, HyMMAccelerator, load_dataset, reference_inference
from repro.bench import format_table


def main() -> None:
    dataset = load_dataset("amazon-photo", scale=0.1, seed=3)
    model = GCNModel(dataset, n_layers=2, n_classes=8, seed=4)
    print(f"Model: {model}")

    result = HyMMAccelerator().run_inference(model)
    oracle = reference_inference(dataset, model.weight_list)

    print("\nPer-layer verification against the NumPy oracle:")
    for idx, (ours, ref) in enumerate(zip(result.outputs, oracle)):
        err = float(np.max(np.abs(ours - ref)))
        status = "ok" if np.allclose(ours, ref, rtol=1e-2, atol=1e-3) else "MISMATCH"
        print(f"  layer {idx}: max abs error {err:.2e}  [{status}]")

    print("\nPhase breakdown (cycles):")
    rows = [[name, int(cycles), f"{100 * cycles / result.stats.cycles:.1f}%"]
            for name, cycles in result.phase_cycles.items()]
    print(format_table(["phase", "cycles", "share"], rows))

    print(f"\nTotal: {result.stats.cycles:,} cycles "
          f"({result.stats.alu_utilization():.1%} ALU utilisation, "
          f"{result.stats.dram_total_bytes() / 1024:.0f} KB of DRAM traffic)")
    print("Predicted logits for node 0:", np.round(result.outputs[-1][0], 3))


if __name__ == "__main__":
    main()
