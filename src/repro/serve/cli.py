"""``python -m repro.serve`` -- serve, submit, status, metrics, bench.

Subcommands:

``serve [--host H] [--port P] [--cache-dir DIR] [--no-cache]
[--workers N] [--max-batch N] [--retries N] [--timeout S]
[--ready-file PATH] [--log PATH] [--span-file PATH] [--no-telemetry]``
    Run the sweep server in the foreground until SIGINT or a
    ``/shutdown`` request.  ``--ready-file`` writes ``host port`` once
    the socket is accepting (the CI smoke job's handshake).  ``--log``
    turns on NDJSON structured logging, ``--span-file`` records
    wall-clock spans into a Chrome-trace file at shutdown, and
    ``--no-telemetry`` disables correlation IDs for byte-identical
    pre-telemetry responses (see ``docs/observability.md``).
``submit DATASET [--kind hymm] [--scale S] [--layers N] [--seed N]
[--no-wait] [--include-result] [--json]``
    Build the bench :class:`~repro.runtime.job.JobSpec` and submit it;
    prints the terminal status (or the queued ack with ``--no-wait``).
``status JOB_ID [--follow] [--json]``
    One status snapshot, or a live event stream until terminal.
``healthz`` / ``metrics [--prom]``
    Scrape the respective endpoint as JSON; ``metrics --prom`` prints
    the Prometheus text exposition instead (CI pipes it into the
    ``python -m repro.telemetry validate -`` checker).
``shutdown``
    Ask a running server to exit.
``bench-hitpath [--requests N] [--dataset D] [--kind K] ...``
    Measure the warm served-lookup path and append an entry to the
    ``BENCH_serve.json`` trajectory (see :mod:`repro.serve.bench`).
``smoke``
    Self-hosted replay smoke: run a cache-less server with a throwaway
    trace tree, execute a tiny job, force it out of the terminal-job
    registry, submit it again, and assert via ``/metrics`` that the
    repeat was *replayed* from its recorded phase traces (and still
    streamed per-phase progress).  The CI guard for the
    replay-by-default serving path.

Runtime/bench imports happen inside the handlers -- the CLI must be
importable (e.g. for ``--help``) without dragging the workload layer
in.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

DEFAULT_PORT = 7341


def _print_payload(payload: Dict[str, Any], as_json: bool) -> None:
    if as_json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    status = payload.get("status")
    if status is None:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    line = f"{payload.get('job_id', '?')[:12]}  {payload.get('label', '')}  {status}"
    source = payload.get("source")
    if source:
        line += f"  [{source}]"
    print(line)
    for row in payload.get("phases", []):
        print(
            f"  {row.get('phase', '?'):24s} cycles={row.get('cycles', 0)} "
            f"end={row.get('end_cycle', 0):.0f}"
        )
    summary = payload.get("result_summary")
    if summary:
        print(
            f"  result: {summary.get('accelerator')} on "
            f"{summary.get('dataset')}: {summary.get('cycles')} cycles"
        )
    if payload.get("error"):
        print(f"  error: {payload['error']}")


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import os

    from repro.runtime.cache import ShardedResultCache
    from repro.serve.server import ServeSettings, SweepServer
    from repro.telemetry import SpanRecorder, configure_logging, install_recorder

    # Replay knobs ride on the env var so pool workers (which re-derive
    # their trace sessions process-locally) see the same setting.
    if args.no_replay:
        os.environ["REPRO_TRACE_DIR"] = "off"
    elif args.trace_dir:
        os.environ["REPRO_TRACE_DIR"] = args.trace_dir

    # Telemetry wiring: --log enables NDJSON structured logging (a
    # path, or '-' for stderr; the REPRO_TELEMETRY_LOG env var is the
    # equivalent switch for pool workers), --span-file records the
    # server's wall-clock spans and writes the Chrome-trace file at
    # shutdown, --no-telemetry restores pre-telemetry byte-identical
    # submit/status responses (no correlation IDs minted).
    if args.log:
        configure_logging(args.log)
        os.environ.setdefault("REPRO_TELEMETRY_LOG", args.log)
    recorder = None
    if args.span_file:
        recorder = SpanRecorder()
        install_recorder(recorder)

    cache = None if args.no_cache else ShardedResultCache(args.cache_dir)
    settings = ServeSettings(
        workers=args.workers,
        max_batch=args.max_batch,
        retries=args.retries,
        timeout=args.timeout,
        telemetry=not args.no_telemetry,
    )
    server = SweepServer(cache=cache, settings=settings)

    async def main() -> None:
        host, port = await server.start(args.host, args.port)
        where = "memory-less (no cache)" if cache is None else str(cache.cache_dir)
        print(f"serving on {host}:{port}  cache: {where}", flush=True)
        if args.ready_file:
            await asyncio.to_thread(
                Path(args.ready_file).write_text, f"{host} {port}\n",
                encoding="utf-8",
            )
        await server.serve_until_stopped()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    finally:
        if recorder is not None:
            recorder.write(args.span_file, tool="repro.serve")
            print(f"wall-clock spans written to {args.span_file}", flush=True)
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.bench.runner import job_spec
    from repro.serve.client import ServeClient

    spec = job_spec(
        args.dataset, args.kind, scale=args.scale,
        n_layers=args.layers, seed=args.seed,
    )
    with ServeClient(args.host, args.port) as client:
        response = client.submit(
            spec.to_dict(),
            wait=not args.no_wait,
            include_result=args.include_result,
        )
    _print_payload(response, args.json)
    return 0 if response.get("status") != "failed" else 1


def cmd_status(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        if not args.follow:
            response = client.status(args.job_id, args.include_result)
            _print_payload(response, args.json)
            return 0 if response.get("status") != "failed" else 1
        final: Dict[str, Any] = {}
        for event in client.follow(args.job_id, args.include_result):
            if event.get("final"):
                final = event
                break
            if args.json:
                print(json.dumps(event, sort_keys=True))
            elif event.get("event") == "phase":
                print(
                    f"  phase {event.get('phase', '?'):24s} "
                    f"cycles={event.get('cycles', 0)}"
                )
            elif event.get("event") == "status":
                print(f"  -> {event.get('status')}")
    _print_payload(final, args.json)
    return 0 if final.get("status") != "failed" else 1


def _scrape(args: argparse.Namespace, op: str) -> int:
    from repro.serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        payload = client.request({"op": op})
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    if not args.prom:
        return _scrape(args, "metrics")
    from repro.serve.client import ServeClient

    with ServeClient(args.host, args.port) as client:
        sys.stdout.write(client.metrics_prometheus())
    return 0


def cmd_smoke(args: argparse.Namespace) -> int:
    """Self-hosted replay smoke (see the module doc)."""
    import os
    import tempfile

    from repro.bench.runner import job_spec
    from repro.serve.client import ServeClient
    from repro.serve.server import ServerThread, ServeSettings

    # Two tiny jobs: the probe, and a second fingerprint whose only
    # purpose is to evict the probe from the 1-deep terminal-job
    # registry so the repeated submit re-executes instead of being
    # answered from memory -- the re-execution is what must replay.
    probe = job_spec(args.dataset, args.kind, scale=args.scale, n_layers=1, seed=0)
    evictor = job_spec(args.dataset, args.kind, scale=args.scale, n_layers=1, seed=1)
    settings = ServeSettings(registry_limit=1)
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        server = ServerThread(
            cache=None,
            settings=settings,
            trace_root=os.path.join(tmp, "traces"),
        )
        with server as srv:
            with ServeClient(srv.host, srv.port) as client:
                for label, spec in (("probe", probe), ("evictor", evictor)):
                    response = client.submit(spec.to_dict(), wait=True)
                    if response.get("status") != "done":
                        print(
                            f"SMOKE FAIL: {label} submit did not complete: "
                            f"{response.get('error')}",
                            file=sys.stderr,
                        )
                        return 1
                repeat = client.submit(probe.to_dict(), wait=True)
                metrics = client.request({"op": "metrics"})
                exposition = client.metrics_prometheus()
    if repeat.get("status") != "done" or repeat.get("source") != "executed":
        print(
            f"SMOKE FAIL: repeated submit was not re-executed "
            f"(status={repeat.get('status')!r} source={repeat.get('source')!r})",
            file=sys.stderr,
        )
        return 1
    if not repeat.get("phases"):
        print(
            "SMOKE FAIL: repeated submit streamed no per-phase progress",
            file=sys.stderr,
        )
        return 1
    replay = metrics.get("replay", {})
    hits, misses = replay.get("hits", 0), replay.get("misses", 0)
    # The two first executions record every phase (misses); the repeat
    # must replay every one of its phases (hits).
    if not replay.get("enabled") or hits < 1 or misses < 1:
        print(
            f"SMOKE FAIL: repeated submit did not replay "
            f"(replay metrics: {replay})",
            file=sys.stderr,
        )
        return 1
    # The Prometheus scrape must pass the in-repo validator with real
    # traffic in the counters (the CI serve-smoke's local twin).
    from repro.telemetry import ExpositionError, validate_exposition

    try:
        exposition_stats = validate_exposition(exposition)
    except ExpositionError as exc:
        print(f"SMOKE FAIL: prometheus exposition: {exc}", file=sys.stderr)
        return 1
    if exposition_stats["samples"] < 10:
        print(
            f"SMOKE FAIL: prometheus exposition too thin "
            f"({exposition_stats['samples']} samples)",
            file=sys.stderr,
        )
        return 1
    print(
        f"serve smoke ok: repeat of {probe.describe()} re-executed with "
        f"{hits} phase(s) replayed ({misses} recorded live), "
        f"{len(repeat['phases'])} progress rows streamed; prometheus "
        f"scrape valid ({exposition_stats['families']} families, "
        f"{exposition_stats['samples']} samples)"
    )
    return 0


def cmd_bench_hitpath(args: argparse.Namespace) -> int:
    from repro.serve.bench import bench_hitpath_main

    bench_hitpath_main(
        dataset=args.dataset,
        kind=args.kind,
        scale=args.scale,
        n_layers=args.layers,
        seed=args.seed,
        requests=args.requests,
        host=args.host,
        port=args.port,
        output=args.output,
        dry_run=args.dry_run,
    )
    return 0


def _add_endpoint_args(
    parser: argparse.ArgumentParser, default_port: Optional[int] = DEFAULT_PORT
) -> None:
    parser.add_argument("--host", default="127.0.0.1" if default_port else None)
    parser.add_argument("--port", type=int, default=default_port)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the sweep server in the foreground")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT)
    p.add_argument("--cache-dir", default=None,
                   help="result cache directory (default: repo cache)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without a result cache (every submit executes)")
    p.add_argument("--trace-dir", default=None,
                   help="phase-trace tree for record/replay (default: "
                   "<cache dir>/traces)")
    p.add_argument("--no-replay", action="store_true",
                   help="disable phase-trace record/replay (every executed "
                   "job simulates fully live)")
    p.add_argument("--workers", type=int, default=1,
                   help="SweepExecutor width per batch (1 = serial with "
                   "live phase progress)")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--retries", type=int, default=1)
    p.add_argument("--timeout", type=float, default=None)
    p.add_argument("--ready-file", default=None,
                   help="write 'host port' here once accepting")
    p.add_argument("--log", default=None, metavar="PATH",
                   help="write NDJSON structured logs here ('-' = stderr)")
    p.add_argument("--span-file", default=None, metavar="PATH",
                   help="record wall-clock spans, write the Chrome-trace "
                   "JSON here at shutdown")
    p.add_argument("--no-telemetry", action="store_true",
                   help="disable correlation IDs (pre-telemetry "
                   "byte-identical submit/status responses)")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit one bench job spec")
    _add_endpoint_args(p)
    p.add_argument("dataset")
    p.add_argument("--kind", default="hymm")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-wait", action="store_true",
                   help="return the queued ack instead of waiting")
    p.add_argument("--include-result", action="store_true")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="job status snapshot or event stream")
    _add_endpoint_args(p)
    p.add_argument("job_id")
    p.add_argument("--follow", action="store_true")
    p.add_argument("--include-result", action="store_true")
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("healthz", help="liveness check")
    _add_endpoint_args(p)
    p.set_defaults(fn=lambda args: _scrape(args, "healthz"))

    p = sub.add_parser("metrics", help="scrape server metrics")
    _add_endpoint_args(p)
    p.add_argument("--prom", action="store_true",
                   help="print the Prometheus text exposition instead of "
                   "JSON (pipe into 'python -m repro.telemetry validate -')")
    p.set_defaults(fn=cmd_metrics)

    p = sub.add_parser("shutdown", help="stop a running server")
    _add_endpoint_args(p)
    p.set_defaults(fn=lambda args: _scrape(args, "shutdown"))

    p = sub.add_parser(
        "smoke",
        help="self-hosted replay smoke: assert a repeated submit replays",
    )
    p.add_argument("--dataset", default="cora")
    p.add_argument("--kind", default="op")
    p.add_argument("--scale", type=float, default=0.3)
    p.set_defaults(fn=cmd_smoke)

    p = sub.add_parser(
        "bench-hitpath",
        help="measure the warm served-lookup path, append to BENCH_serve.json",
    )
    p.add_argument("--host", default=None,
                   help="target a running server (default: self-host)")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--dataset", default="cora")
    p.add_argument("--kind", default="hymm")
    p.add_argument("--scale", type=float, default=None)
    p.add_argument("--layers", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument(
        "--output", type=Path,
        default=Path(__file__).resolve().parents[3] / "BENCH_serve.json",
    )
    p.add_argument("--dry-run", action="store_true",
                   help="print the measurement, skip the trajectory write")
    p.set_defaults(fn=cmd_bench_hitpath)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ConnectionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
