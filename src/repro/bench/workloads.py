"""Workload construction and the scale policy for benches.

Cycle-accurate simulation in Python is slow, so benches default to
per-dataset scale factors chosen to finish the full suite in minutes
while keeping every dataset's working set well above the DMB capacity
(so the locality effects the paper measures remain visible).  Setting
``REPRO_FULL_SCALE=1`` reruns at paper scale (Yelp and Flickr stay
reduced -- a 717k-node simulation is hours in Python; the cap is
documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Optional, Tuple

from repro.gcn.model import GCNModel
from repro.graphs.registry import load_dataset

#: Table II order.
BENCH_DATASETS: Tuple[str, ...] = (
    "cora",
    "amazon-photo",
    "amazon-computers",
    "coauthor-cs",
    "coauthor-physics",
    "flickr",
    "yelp",
)

#: Default (fast) scales per dataset.
_FAST_SCALES = {
    "cora": 1.0,
    "amazon-photo": 0.4,
    "amazon-computers": 0.25,
    "coauthor-cs": 0.3,
    "coauthor-physics": 0.15,
    "flickr": 0.08,
    "yelp": 0.02,
}

#: Paper-scale run; the two largest graphs stay capped.
_FULL_SCALES = {
    "cora": 1.0,
    "amazon-photo": 1.0,
    "amazon-computers": 1.0,
    "coauthor-cs": 1.0,
    "coauthor-physics": 1.0,
    "flickr": 0.5,
    "yelp": 0.05,
}


def full_scale_requested() -> bool:
    """Whether the environment asks for paper-scale runs."""
    return os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def bench_scale(name: str) -> float:
    """The scale factor benches use for one dataset."""
    table = _FULL_SCALES if full_scale_requested() else _FAST_SCALES
    try:
        return table[name]
    except KeyError:
        raise KeyError(f"no bench scale for dataset {name!r}") from None


@lru_cache(maxsize=32)
def make_model(
    name: str,
    scale: float,
    n_layers: int = 1,
    seed: int = 0,
    feature_length: Optional[int] = None,
) -> GCNModel:
    """Build (and memoise) the GCN workload for one dataset.

    ``feature_length`` overrides the registry's feature width (used by
    design-space sweeps); ``None`` keeps the dataset default.
    """
    kwargs = {} if feature_length is None else {"feature_length": feature_length}
    dataset = load_dataset(name, scale=scale, seed=seed, **kwargs)
    return GCNModel(dataset, n_layers=n_layers, seed=seed + 17)
