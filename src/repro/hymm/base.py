"""Accelerator scaffolding shared by HyMM and the baseline dataflows.

:class:`AcceleratorBase` owns the run loop -- build the memory
hierarchy, execute combination then aggregation per layer, collect
statistics -- while subclasses choose the dataflow by overriding
:meth:`AcceleratorBase.prepare` (operand formats, preprocessing) and
:meth:`AcceleratorBase.run_aggregation` /
:meth:`AcceleratorBase.run_combination`.

All accelerators share the same hierarchy (PEs, DMB, SMQ, LSQ, DRAM),
matching the paper's evaluation setup: "We assume the GCN accelerators
employ the similar memory hierarchy such as sparse/dense buffers and
PEs."
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.gcn.model import GCNModel
from repro.gcn.reference import relu
from repro.hymm.config import HyMMConfig
from repro.hymm.dmb import AddressMap, make_buffer
from repro.hymm.kernels import KernelContext, combination_dense, combination_rwp
from repro.hymm.pe import PEArray
from repro.hymm.smq import SparseMatrixQueue
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim.buffer import CLASS_W, CLASS_XW
from repro.sim.engine import make_engine
from repro.sim.memory import DRAM
from repro.sim.stats import SimStats
from repro.sparse import CSRMatrix


@dataclass
class RunResult:
    """Everything one simulated inference produces.

    ``outputs`` are per-layer result matrices in *original* node order
    (accelerators that degree-sort map their results back), so results
    from different accelerators are directly comparable.
    """

    accelerator: str
    dataset: str
    config: HyMMConfig
    stats: SimStats
    outputs: List[np.ndarray]
    phase_cycles: Dict[str, float] = field(default_factory=dict)
    #: Per-phase counter deltas: phase -> {"cycles", "busy", "hits",
    #: "misses", "forwards", "occupancy"}.  Lets experiments separate
    #: combination behaviour from the aggregation SpDeMM the paper's
    #: Figs. 8/9 characterise, and exposes the end-of-phase buffer
    #: composition (Section III's dynamic space management).
    phase_stats: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Full per-phase :class:`SimStats` deltas (phase -> snapshot),
    #: including a trailing ``"drain"`` pseudo-phase when DRAM finishes
    #: after the engine.  Conservation invariant: folding every snapshot
    #: with :meth:`SimStats.merge` reproduces :attr:`stats` exactly --
    #: cycles sum, counters sum, the peak is the max of running peaks,
    #: and the timeline concatenates.
    phase_snapshots: Dict[str, SimStats] = field(default_factory=dict)
    sort_ms: float = 0.0
    wall_seconds: float = 0.0
    extra: Dict[str, object] = field(default_factory=dict)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def runtime_ms(self) -> float:
        """Wall time of the simulated inference at the configured clock
        (lets the Table II sorting cost be compared against inference
        time directly)."""
        return self.stats.cycles / (self.config.clock_ghz * 1e6)

    def speedup_over(self, other: "RunResult") -> float:
        """How many times faster this run is than ``other``."""
        if self.stats.cycles == 0:
            raise ValueError("run has zero cycles")
        return other.stats.cycles / self.stats.cycles

    #: Wire-format version of :meth:`to_dict`.  Bump on layout changes;
    #: the runtime's disk cache treats records of any other version as
    #: misses.  v2: added ``phase_snapshots``.
    SCHEMA_VERSION = 2

    # ------------------------------------------------------------------
    # Serialisation (runtime disk cache + cross-process transport)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; outputs round-trip bit-identically.

        ``extra`` is sanitised: live objects (region plans, CSR
        matrices) are dropped and their keys recorded under
        ``extra["_dropped"]``, so cached results carry every scalar
        by-product but no pickled simulator state.
        """
        from repro.runtime.serialize import array_to_dict, sanitize_extra

        return {
            "schema_version": self.SCHEMA_VERSION,
            "accelerator": self.accelerator,
            "dataset": self.dataset,
            "config": self.config.to_dict(),
            "stats": self.stats.to_dict(),
            "outputs": [array_to_dict(a) for a in self.outputs],
            "phase_cycles": dict(self.phase_cycles),
            "phase_stats": {
                phase: {k: (dict(v) if isinstance(v, dict) else v)
                        for k, v in counters.items()}
                for phase, counters in self.phase_stats.items()
            },
            "phase_snapshots": {
                phase: snap.to_dict()
                for phase, snap in self.phase_snapshots.items()
            },
            "sort_ms": self.sort_ms,
            "wall_seconds": self.wall_seconds,
            "extra": sanitize_extra(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Inverse of :meth:`to_dict`; raises on schema mismatch."""
        from repro.runtime.serialize import array_from_dict

        version = data.get("schema_version")
        if version != cls.SCHEMA_VERSION:
            raise ValueError(
                f"RunResult schema mismatch: record v{version}, "
                f"code v{cls.SCHEMA_VERSION}"
            )
        return cls(
            accelerator=data["accelerator"],
            dataset=data["dataset"],
            config=HyMMConfig.from_dict(data["config"]),
            stats=SimStats.from_dict(data["stats"]),
            outputs=[array_from_dict(a) for a in data["outputs"]],
            phase_cycles=dict(data["phase_cycles"]),
            phase_stats={p: dict(c) for p, c in data["phase_stats"].items()},
            phase_snapshots={
                p: SimStats.from_dict(s)
                for p, s in data["phase_snapshots"].items()
            },
            sort_ms=data["sort_ms"],
            wall_seconds=data["wall_seconds"],
            extra=dict(data["extra"]),
        )


class AcceleratorBase:
    """Template for a simulated GCN accelerator."""

    #: Short name used in reports ("rwp", "op", "hymm", ...).
    name = "base"

    def __init__(self, config: Optional[HyMMConfig] = None) -> None:
        self.config = config if config is not None else HyMMConfig()

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def prepare(self, model: GCNModel) -> dict:
        """Build the operand representations this dataflow consumes.

        Returns a dict; the base implementation provides the feature
        matrix unchanged and no adjacency representation (subclasses
        add theirs).  Keys consumed by the run loop: ``features``
        (CSRMatrix), ``sort_ms`` (float), ``unpermute`` (callable or
        None).
        """
        return {"features": model.dataset.features, "sort_ms": 0.0, "unpermute": None}

    def run_combination(
        self, ctx: KernelContext, prep: dict, features: CSRMatrix, weights: np.ndarray
    ) -> np.ndarray:
        """Combination dataflow; default is row-wise product (Table I)."""
        return combination_rwp(ctx, features, weights)

    def run_aggregation(self, ctx: KernelContext, prep: dict, xw: np.ndarray) -> np.ndarray:
        """Aggregation dataflow; must be provided by the subclass."""
        raise NotImplementedError

    def phase_config_exempt(self) -> frozenset:
        """Config fields this dataflow's simulated timing never reads.

        Trace replay (:mod:`repro.sim.replay`) drops these from the
        phase-signature chain, so sweeps that vary only exempt knobs
        share recorded phases.  Subclasses may widen the set for knobs
        their dataflow provably ignores; never list a field any code
        path between ``prepare`` and the last phase can read.
        """
        from repro.sim.replay import BASE_TIMING_EXEMPT

        return BASE_TIMING_EXEMPT

    @staticmethod
    def _snapshot(stats: SimStats) -> Tuple[int, int, int, int]:
        return (
            stats.busy_cycles,
            sum(stats.buffer_hits.values()),
            sum(stats.buffer_misses.values()),
            stats.lsq_forwards,
        )

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run_inference(
        self,
        model: GCNModel,
        tracer: Optional[Tracer] = None,
        replay_session: Optional[object] = None,
    ) -> RunResult:
        """Simulate full inference of ``model`` on this accelerator.

        ``tracer`` (optional, disabled :data:`NULL_TRACER` by default)
        receives simulated-time events: engine batch spans, buffer
        cold-path events, kernel region spans, and one ``cat="phase"``
        span per phase boundary.  Tracing never touches ``stats`` --
        cycle counts and every counter are identical whether or not a
        tracer is attached.

        ``replay_session`` (optional, a
        :class:`repro.sim.replay.TraceSession`) turns on the trace
        record/replay lane: phases whose chained signature hits the
        trace store are *replayed* -- restore the recorded post-phase
        state, merge the recorded stats delta -- instead of simulated,
        bit-identically (see the exactness argument in
        :mod:`repro.sim.replay`); misses simulate live and record.
        Replay is disabled while a full tracer is attached (the engine
        and buffer events it narrates only exist during live
        simulation), but recording still runs.  Tracers that consume
        only phase-boundary events -- :class:`~repro.obs.tracer.
        PhaseFeed` -- declare ``replay_compatible`` and keep replay on:
        the run loop emits their phase spans from the recorded deltas.
        """
        wall_start = time.perf_counter()
        tracer = tracer if tracer is not None else NULL_TRACER
        cfg = self.config
        stats = SimStats()
        dram = DRAM(cfg.dram, stats)
        buffer = make_buffer(cfg, dram, stats)
        if tracer.enabled:
            buffer.set_tracer(tracer)
        engine = make_engine(
            cfg.engine,
            buffer,
            dram,
            stats,
            lsq_depth=cfg.lsq_entries,
            forwarding=cfg.forwarding,
            smq_buffer_bytes=cfg.smq_bytes,
            tracer=tracer,
        )
        amap = AddressMap(cfg)
        pe = PEArray(cfg.n_pes)
        smq = SparseMatrixQueue(cfg.smq_pointer_bytes, cfg.smq_index_bytes)

        prep = self.prepare(model)
        if tracer.enabled:
            tracer.instant("prepare", engine.drain(), "phase")
        features: CSRMatrix = prep["features"]
        unpermute = prep.get("unpermute")

        outputs: List[np.ndarray] = []
        phase_cycles: Dict[str, float] = {}
        phase_stats: Dict[str, Dict[str, float]] = {}
        phase_snapshots: Dict[str, SimStats] = {}
        dense_h: Optional[np.ndarray] = None
        mark = 0.0
        snap = self._snapshot(stats)
        base_snapshot = stats.copy()
        cum_mark = 0

        def close_phase(
            name: str, occupancy: Optional[Dict[str, int]] = None
        ) -> None:
            nonlocal mark, snap, base_snapshot, cum_mark
            now = engine.drain()
            new_snap = self._snapshot(stats)
            phase_cycles[name] = now - mark
            phase_stats[name] = {
                "cycles": now - mark,
                "busy": new_snap[0] - snap[0],
                "hits": new_snap[1] - snap[1],
                "misses": new_snap[2] - snap[2],
                "forwards": new_snap[3] - snap[3],
                # End-of-phase buffer composition (Section III
                # dynamics).  Replayed aggregation phases pass the
                # recorded composition: their restored state is already
                # past the W/XW invalidates, so reading the live buffer
                # here would under-count what the live phase saw.
                "occupancy": (
                    {k: int(v) for k, v in occupancy.items()}
                    if occupancy is not None
                    else buffer.occupancy_by_class()
                ),
            }
            # Full SimStats delta for this phase.  Phase cycles use the
            # cumulative-ceil scheme (ceil of the running drain, minus
            # the previous mark) so integer per-phase cycles sum to the
            # whole-run ceil total exactly -- the conservation invariant
            # phase_snapshots documents.
            delta = stats.delta_since(base_snapshot)
            cum_now = int(math.ceil(now))
            delta.cycles = cum_now - cum_mark
            phase_snapshots[name] = delta
            if tracer.enabled:
                tracer.span(
                    name, mark, now, "phase",
                    {
                        "cycles": delta.cycles,
                        "busy_cycles": delta.busy_cycles,
                        "dram_read_bytes": sum(delta.dram_read_bytes.values()),
                        "dram_write_bytes": sum(
                            delta.dram_write_bytes.values()
                        ),
                        "buffer_hits": sum(delta.buffer_hits.values()),
                        "buffer_misses": sum(delta.buffer_misses.values()),
                    },
                )
                tracer.counter(
                    "buffer_occupancy_lines", now,
                    dict(buffer.occupancy_by_class()),
                )
            base_snapshot = stats.copy()
            cum_mark = cum_now
            mark = now
            snap = new_snap

        replay = replay_session
        if replay is not None:
            replay.open(self.name, cfg, model, self.phase_config_exempt())
        # Replay would skip the live simulation a full tracer narrates,
        # so a traced run records but never replays -- unless the
        # tracer only consumes phase-boundary events (PhaseFeed), which
        # close_phase still emits for replayed phases.
        use_replay = replay is not None and (
            not tracer.enabled or tracer.replay_compatible
        )

        def apply_trace(name: str, rec: Dict[str, object]) -> np.ndarray:
            """Apply one recorded phase: restore the post-phase
            simulator state, merge the stats delta (cycles zeroed --
            run totals are assigned once, at the end, from the restored
            state), and close the phase exactly as the live path would
            from that state."""
            from repro.runtime.serialize import array_from_dict

            buffer.restore_state(rec["buffer"])
            engine.restore_state(rec["engine"])
            dram.next_free = float(rec["dram_next_free"])
            delta = SimStats.from_dict(rec["stats"])
            delta.cycles = 0
            stats.merge(delta)
            close_phase(name, occupancy=rec["occupancy"])
            return array_from_dict(rec["output"])

        def trace_record(out: np.ndarray, name: str) -> Dict[str, object]:
            """The phase record `apply_trace` consumes, captured from
            the live simulator right after the phase closed."""
            from repro.runtime.serialize import array_to_dict

            return {
                "stats": phase_snapshots[name].to_dict(),
                "occupancy": phase_stats[name]["occupancy"],
                "output": array_to_dict(out),
                "buffer": buffer.snapshot_state(),
                "engine": engine.snapshot_state(),
                "dram_next_free": dram.next_free,
            }

        for layer_idx, layer in enumerate(model.layers):
            ctx = KernelContext(cfg, engine, buffer, amap, pe, smq, layer=layer_idx)
            comb_name = f"layer{layer_idx}.combination"
            comb_sig = replay.next_signature(comb_name) if replay is not None else ""
            rec = replay.lookup(comb_sig, comb_name) if use_replay else None
            if rec is not None:
                xw = apply_trace(comb_name, rec)
            else:
                if layer_idx == 0:
                    xw = self.run_combination(ctx, prep, features, layer.weights)
                else:
                    xw = combination_dense(ctx, dense_h, layer.weights)
                close_phase(comb_name)
                if replay is not None:
                    replay.record(comb_sig, comb_name, trace_record(xw, comb_name))

            agg_name = f"layer{layer_idx}.aggregation"
            agg_sig = replay.next_signature(agg_name) if replay is not None else ""
            rec = replay.lookup(agg_sig, agg_name) if use_replay else None
            if rec is not None:
                axw = apply_trace(agg_name, rec)
            else:
                axw = self.run_aggregation(ctx, prep, xw)
                close_phase(agg_name)

            raw_axw = axw
            if layer.activation is not None:
                axw = relu(axw)
            dense_h = axw
            outputs.append(axw if unpermute is None else unpermute(axw))
            # W and XW are dead after the aggregation consumed them.
            buffer.invalidate(CLASS_W)
            buffer.invalidate(CLASS_XW)
            if replay is not None and rec is None:
                # Aggregation records capture state *after* the W/XW
                # invalidates: a replayed phase restores straight to the
                # post-invalidate point (the invalidates above then
                # no-op on restored state), and the output is recorded
                # pre-activation -- relu/unpermute are host arithmetic
                # the replay path re-runs itself.
                replay.record(agg_sig, agg_name, trace_record(raw_axw, agg_name))

        stats.cycles = int(math.ceil(max(engine.drain(), dram.busy_until)))
        tail = stats.cycles - cum_mark
        if tail:
            # DRAM finishes the last writebacks after the engine drains;
            # give the tail its own pseudo-phase so the snapshots still
            # sum to the whole-run aggregate.
            phase_snapshots["drain"] = SimStats(cycles=tail)
            if tracer.enabled:
                tracer.instant(
                    "drain", float(stats.cycles), "phase", {"cycles": tail}
                )
        return RunResult(
            accelerator=self.name,
            dataset=model.dataset.name,
            config=cfg,
            stats=stats,
            outputs=outputs,
            phase_cycles=phase_cycles,
            phase_stats=phase_stats,
            phase_snapshots=phase_snapshots,
            sort_ms=prep.get("sort_ms", 0.0),
            wall_seconds=time.perf_counter() - wall_start,
            extra={k: v for k, v in prep.items()
                   if k not in ("features", "unpermute")},
        )
