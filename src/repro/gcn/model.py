"""Multi-layer GCN model built from :class:`repro.gcn.layer.GCNLayer`."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.gcn.layer import GCNLayer
from repro.gcn.reference import relu
from repro.gcn.weights import glorot_weights, layer_dims
from repro.graphs.dataset import GraphDataset
from repro.graphs.preprocess import gcn_normalize
from repro.sparse import COOMatrix


class GCNModel:
    """An ``n_layers``-deep GCN with seeded Glorot weights.

    This is the *workload definition* shared by the NumPy oracle and all
    simulated dataflows: it owns the weight matrices and the normalised
    adjacency, and exposes layer-by-layer forward execution.
    """

    def __init__(
        self,
        dataset: GraphDataset,
        n_layers: int = 2,
        n_classes: Optional[int] = None,
        seed: int = 0,
    ):
        if n_layers < 1:
            raise ValueError("n_layers must be at least 1")
        self.dataset = dataset
        self.norm_adj: COOMatrix = gcn_normalize(dataset.adjacency)
        dims = layer_dims(
            dataset.feature_length, dataset.hidden_dim, n_layers, n_classes
        )
        self.layers: List[GCNLayer] = []
        for idx, (fan_in, fan_out) in enumerate(dims):
            act = relu if idx < n_layers - 1 else None
            self.layers.append(
                GCNLayer(glorot_weights(fan_in, fan_out, seed=seed + idx), act)
            )

    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def weight_list(self) -> List[np.ndarray]:
        """The raw weight matrices, layer order."""
        return [layer.weights for layer in self.layers]

    def forward(self) -> List[np.ndarray]:
        """Run inference with the oracle kernels; returns all layer outputs."""
        h = self.dataset.features
        outputs: List[np.ndarray] = []
        for layer in self.layers:
            h = layer.forward(self.norm_adj, h)
            outputs.append(h)
        return outputs

    def __repr__(self) -> str:
        dims = " -> ".join(
            [str(self.layers[0].fan_in)] + [str(l.fan_out) for l in self.layers]
        )
        return f"GCNModel({self.dataset.name!r}, dims={dims})"
