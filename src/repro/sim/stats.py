"""Simulation counters and derived metrics.

One :class:`SimStats` instance is threaded through a whole simulated
run (all phases, all engines); the experiment harness reads the derived
metrics that correspond to the paper's figures:

* total ``cycles`` -> Fig. 7 speedups,
* :meth:`SimStats.alu_utilization` -> Fig. 8,
* :meth:`SimStats.hit_rate` -> Fig. 9,
* :meth:`SimStats.partial_peak_bytes` -> Fig. 10,
* :meth:`SimStats.dram_breakdown` -> Fig. 11.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Tuple

#: The declared traffic-tag vocabulary.  Every DRAM/buffer counter is
#: keyed by one of these components, which is what makes the Fig. 11
#: breakdown stack to the total: ``A`` (adjacency stream), ``X`` (input
#: features), ``W`` (weights), ``XW`` (combination results), ``AXW``
#: (final outputs), ``partial`` (partial-output spill/merge traffic).
#: The static analyzer's ``stats-conservation`` rule rejects literal
#: tags outside this set; extend it here -- deliberately -- before
#: introducing a new component.
TRAFFIC_TAGS = ("A", "X", "W", "XW", "AXW", "partial")


@dataclass
class SimStats:
    """Mutable counter bundle for one simulation run."""

    #: Final cycle count (set by the runner when all engines drain).
    cycles: int = 0
    #: Cycles in which the PE array issued a vector MAC (numerator of
    #: ALU utilisation).
    busy_cycles: int = 0
    #: DRAM bytes read, keyed by traffic tag ("A", "X", "W", "XW",
    #: "AXW", "partial").
    dram_read_bytes: Counter[str] = field(default_factory=Counter)
    #: DRAM bytes written, keyed the same way.
    dram_write_bytes: Counter[str] = field(default_factory=Counter)
    #: Buffer hits / misses, keyed by traffic tag.
    buffer_hits: Counter[str] = field(default_factory=Counter)
    buffer_misses: Counter[str] = field(default_factory=Counter)
    #: Loads satisfied by LSQ store-to-load forwarding.
    lsq_forwards: int = 0
    #: Peak bytes occupied by partial outputs (on-chip + spilled).
    partial_peak_bytes: int = 0
    #: Bytes of partial outputs that overflowed to DRAM.
    partial_spill_bytes: int = 0
    #: Total partial outputs produced (for footprint-reduction ratios).
    partials_produced: int = 0
    #: Frontend memory requests issued (LSQ occupancy proxy).
    requests_issued: int = 0
    #: Sampled (partials_produced, footprint_bytes) pairs -- the Fig. 10
    #: "memory usage over time" curve.  One sample per
    #: ``PARTIAL_TIMELINE_STRIDE`` partials keeps it cheap.
    partial_timeline: List[Tuple[int, int]] = field(default_factory=list)

    #: Sampling stride of :attr:`partial_timeline`.
    PARTIAL_TIMELINE_STRIDE: ClassVar[int] = 64

    def sample_partial_footprint(self, footprint_bytes: int) -> None:
        """Record one footprint sample (strided; call on every update)."""
        if self.partials_produced % self.PARTIAL_TIMELINE_STRIDE == 0:
            self.partial_timeline.append((self.partials_produced, footprint_bytes))

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def alu_utilization(self) -> float:
        """Fraction of run cycles in which the PE array did useful MACs."""
        return self.busy_cycles / self.cycles if self.cycles else 0.0

    def hit_rate(self) -> float:
        """Buffer hit fraction over all tags (LSQ forwards count as hits:
        the target data was found on-chip)."""
        hits = sum(self.buffer_hits.values()) + self.lsq_forwards
        total = hits + sum(self.buffer_misses.values())
        return hits / total if total else 0.0

    def hit_rate_for(self, tag: str) -> float:
        """Buffer hit fraction for a single traffic tag."""
        hits = self.buffer_hits[tag]
        total = hits + self.buffer_misses[tag]
        return hits / total if total else 0.0

    def dram_total_bytes(self) -> int:
        """All off-chip traffic, read + write."""
        return sum(self.dram_read_bytes.values()) + sum(self.dram_write_bytes.values())

    def dram_breakdown(self) -> Dict[str, int]:
        """Read+write bytes per traffic tag (Fig. 11 stacking)."""
        tags = set(self.dram_read_bytes) | set(self.dram_write_bytes)
        return {
            tag: self.dram_read_bytes[tag] + self.dram_write_bytes[tag]
            for tag in sorted(tags)
        }

    def partial_reduction(self) -> float:
        """Fractional reduction of partial-output footprint vs the naive
        one-entry-per-partial baseline (Fig. 10 ratio)."""
        naive = self.partials_produced
        if naive == 0:
            return 0.0
        # Footprint is tracked in bytes; normalise by the naive count in
        # lines of the same size.  partial_peak_bytes / line is <= naive.
        return 1.0 - (self.partial_peak_bytes / max(1, naive * 64))

    def merge(self, other: "SimStats") -> None:
        """Fold another phase's counters into this one (cycles add;
        peaks take the max)."""
        self.cycles += other.cycles
        self.busy_cycles += other.busy_cycles
        self.dram_read_bytes.update(other.dram_read_bytes)
        self.dram_write_bytes.update(other.dram_write_bytes)
        self.buffer_hits.update(other.buffer_hits)
        self.buffer_misses.update(other.buffer_misses)
        self.lsq_forwards += other.lsq_forwards
        self.partial_peak_bytes = max(self.partial_peak_bytes, other.partial_peak_bytes)
        self.partial_spill_bytes += other.partial_spill_bytes
        self.partials_produced += other.partials_produced
        self.requests_issued += other.requests_issued
        self.partial_timeline.extend(other.partial_timeline)

    # ------------------------------------------------------------------
    # Lossless serialisation (runtime result cache / cross-process)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Every counter, round-trippable through :meth:`from_dict`
        (unlike :meth:`as_dict`, which is a report-oriented summary)."""
        return {
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "dram_read_bytes": dict(self.dram_read_bytes),
            "dram_write_bytes": dict(self.dram_write_bytes),
            "buffer_hits": dict(self.buffer_hits),
            "buffer_misses": dict(self.buffer_misses),
            "lsq_forwards": self.lsq_forwards,
            "partial_peak_bytes": self.partial_peak_bytes,
            "partial_spill_bytes": self.partial_spill_bytes,
            "partials_produced": self.partials_produced,
            "requests_issued": self.requests_issued,
            "partial_timeline": [list(pair) for pair in self.partial_timeline],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimStats":
        """Inverse of :meth:`to_dict`."""
        return cls(
            cycles=data["cycles"],
            busy_cycles=data["busy_cycles"],
            dram_read_bytes=Counter(data["dram_read_bytes"]),
            dram_write_bytes=Counter(data["dram_write_bytes"]),
            buffer_hits=Counter(data["buffer_hits"]),
            buffer_misses=Counter(data["buffer_misses"]),
            lsq_forwards=data["lsq_forwards"],
            partial_peak_bytes=data["partial_peak_bytes"],
            partial_spill_bytes=data["partial_spill_bytes"],
            partials_produced=data["partials_produced"],
            requests_issued=data["requests_issued"],
            partial_timeline=[tuple(pair) for pair in data["partial_timeline"]],
        )

    def as_dict(self) -> Dict[str, Any]:
        """Flat dictionary for report tables."""
        return {
            "cycles": self.cycles,
            "busy_cycles": self.busy_cycles,
            "alu_utilization": self.alu_utilization(),
            "hit_rate": self.hit_rate(),
            "dram_total_bytes": self.dram_total_bytes(),
            "dram_breakdown": self.dram_breakdown(),
            "lsq_forwards": self.lsq_forwards,
            "partial_peak_bytes": self.partial_peak_bytes,
            "partial_spill_bytes": self.partial_spill_bytes,
            "partials_produced": self.partials_produced,
        }
