"""Fixture for the ``loop-affinity`` rule.

Loaded as ``repro.serve.affinity_fixture``.  ``StatsTracker.probe``
runs on a worker thread (handed to ``asyncio.to_thread`` by the
server) and mutates counters that the event loop reads through
``snapshot()`` -- the unlocked one is the violation.  The lock-guarded
update and the ``call_soon_threadsafe`` hop are the sanctioned
patterns, and a thread-side attribute nothing loop-side touches is
private by construction.
"""

import asyncio
import threading


class StatsTracker:
    def __init__(self):
        self.lookups = 0
        self.safe_updates = 0
        self.finished = 0
        self.scratch = None
        self._lock = threading.Lock()

    def probe(self, key):
        self.lookups += 1  # VIOLATION: loop reads this via snapshot()
        self.scratch = key  # clean: no loop-side reader
        return key

    def probe_locked(self, key):
        with self._lock:
            self.safe_updates += 1  # clean: both sides take the lock
        return key

    def worker(self, loop):
        loop.call_soon_threadsafe(self._finish)  # clean: loopsafe hop

    def _finish(self):
        self.finished += 1  # runs on the loop, not a thread

    def snapshot(self):
        with self._lock:
            safe = self.safe_updates
        return {
            "lookups": self.lookups,
            "safe_updates": safe,
            "finished": self.finished,
        }


class AffinityServer:
    def __init__(self, tracker: StatsTracker):
        self.tracker = tracker

    async def handle(self, key):
        loop = asyncio.get_running_loop()
        value = await asyncio.to_thread(self.tracker.probe, key)
        await asyncio.to_thread(self.tracker.probe_locked, key)
        await asyncio.to_thread(self.tracker.worker, loop)
        return value

    async def metrics(self):
        return self.tracker.snapshot()
