"""Shared simulation runner with per-process memoisation."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines import (
    CWPAccelerator,
    GCoDAccelerator,
    OPAccelerator,
    RWPAccelerator,
    TiledOPAccelerator,
)
from repro.bench.workloads import bench_scale, make_model
from repro.hymm import HyMMAccelerator, HyMMConfig
from repro.hymm.base import RunResult

#: The dataflows of the paper's Figure 7 comparison, plus extensions.
DEFAULT_ACCELERATORS = ("op", "rwp", "hymm")
ALL_ACCELERATORS = ("op", "rwp", "cwp", "gcod", "op-deferred", "op-tiled", "hymm")

_CACHE: Dict[Tuple, RunResult] = {}


def make_accelerator(kind: str, config: Optional[HyMMConfig] = None):
    """Instantiate an accelerator by its report name."""
    if kind == "rwp":
        return RWPAccelerator(config)
    if kind == "op":
        return OPAccelerator(config)
    if kind == "op-deferred":
        return OPAccelerator(config, merge_mode="deferred")
    if kind == "op-tiled":
        return TiledOPAccelerator(config)
    if kind == "gcod":
        return GCoDAccelerator(config)
    if kind == "cwp":
        return CWPAccelerator(config)
    if kind == "hymm":
        return HyMMAccelerator(config if config is not None else HyMMConfig())
    raise ValueError(f"unknown accelerator kind {kind!r}")


def run_accelerator(
    dataset: str,
    kind: str,
    scale: Optional[float] = None,
    n_layers: int = 1,
    seed: int = 0,
    config: Optional[HyMMConfig] = None,
    cache: bool = True,
) -> RunResult:
    """Simulate one accelerator on one dataset (memoised).

    ``config=None`` uses each accelerator's paper-default configuration
    (HyMM unified buffer, baselines split buffers).
    """
    if scale is None:
        scale = bench_scale(dataset)
    key = (dataset, kind, scale, n_layers, seed, config)
    if cache and key in _CACHE:
        return _CACHE[key]
    model = make_model(dataset, scale, n_layers=n_layers, seed=seed)
    result = make_accelerator(kind, config).run_inference(model)
    if cache:
        _CACHE[key] = result
    return result


def run_suite(
    dataset: str,
    kinds=DEFAULT_ACCELERATORS,
    scale: Optional[float] = None,
    n_layers: int = 1,
    seed: int = 0,
) -> Dict[str, RunResult]:
    """Simulate several accelerators on one dataset."""
    return {
        kind: run_accelerator(dataset, kind, scale=scale, n_layers=n_layers, seed=seed)
        for kind in kinds
    }


def aggregation_cycles(result: RunResult) -> float:
    """Cycles spent in aggregation phases (the SpDeMM under study)."""
    return sum(v for k, v in result.phase_cycles.items() if k.endswith("aggregation"))


def _aggregation_phase_sums(result: RunResult):
    phases = [v for k, v in result.phase_stats.items() if k.endswith("aggregation")]
    return {
        key: sum(p[key] for p in phases)
        for key in ("cycles", "busy", "hits", "misses", "forwards")
    }


def aggregation_utilization(result: RunResult) -> float:
    """ALU utilisation within the aggregation phases (Fig. 8's subject:
    the SpDeMM dataflow, uncontaminated by the shared combination)."""
    sums = _aggregation_phase_sums(result)
    return sums["busy"] / sums["cycles"] if sums["cycles"] else 0.0


def aggregation_hit_rate(result: RunResult) -> float:
    """Buffer hit rate within the aggregation phases (Fig. 9's subject);
    LSQ forwards count as on-chip hits."""
    sums = _aggregation_phase_sums(result)
    total = sums["hits"] + sums["forwards"] + sums["misses"]
    return (sums["hits"] + sums["forwards"]) / total if total else 0.0


def clear_cache() -> int:
    """Drop memoised runs; returns how many were cached."""
    n = len(_CACHE)
    _CACHE.clear()
    return n
