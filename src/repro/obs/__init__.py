"""repro.obs: opt-in observability for the simulator and runtime.

Three layers, all off by default:

* **simulated-time tracing** (:mod:`repro.obs.tracer`) -- span/instant/
  counter events with the simulated cycle count as the clock, exported
  as Chrome trace-event JSON (Perfetto-loadable);
* **phase-attributed metrics** -- per-phase :class:`repro.sim.stats.
  SimStats` snapshots on every :class:`repro.hymm.base.RunResult`
  (``phase_snapshots``), conserving the whole-run aggregate under
  ``SimStats.merge``;
* **host-side run telemetry** -- wall time, retries, timeouts, cache
  hits and peak RSS per job in the run manifest
  (:mod:`repro.runtime.manifest`).

``python -m repro.obs`` exposes ``trace`` / ``report`` / ``diff`` /
``validate`` subcommands; see :mod:`repro.obs.cli`.

This module deliberately re-exports only the tracer surface -- it is
imported by the simulator's hot modules, so it must stay stdlib-only
and cycle-free.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    ChromeTracer,
    NullTracer,
    PhaseFeed,
    Tracer,
)

__all__ = ["Tracer", "NullTracer", "ChromeTracer", "PhaseFeed", "NULL_TRACER"]
