"""Region planning: the paper's tiling rules (Section IV-E).

The tiling threshold is 20% of the graph's nodes, clamped so that the
resident working set of each high-degree tile -- AXW output rows during
outer-product (region 1), XW input rows during row-wise product
(region 2) -- fits in the DMB.  When 20% of the nodes exceeds the DMB
capacity, the high-degree band is cut into capacity-sized sub-tiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sparse import COOMatrix, RegionTiledMatrix

#: Paper Section IV-E: "The maximum tiling size, referred to as the tiling
#: threshold, is set to 20% of the total number of graph nodes."
DEFAULT_THRESHOLD_FRACTION = 0.2

#: Fraction of the DMB reserved for the resident tile working set; the
#: remainder streams the non-resident operand.
DEFAULT_RESIDENT_FRACTION = 0.75


def tiling_threshold(n_nodes: int, fraction: float = DEFAULT_THRESHOLD_FRACTION) -> int:
    """Number of nodes in the high-degree band (at least 1 for non-empty graphs)."""
    if n_nodes <= 0:
        return 0
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    return max(1, int(round(n_nodes * fraction)))


def dmb_resident_rows(
    dmb_bytes: int,
    hidden_dim: int,
    resident_fraction: float = DEFAULT_RESIDENT_FRACTION,
    value_bytes: int = 4,
) -> int:
    """How many ``hidden_dim``-wide vectors the DMB can keep resident."""
    if dmb_bytes <= 0 or hidden_dim <= 0:
        raise ValueError("dmb_bytes and hidden_dim must be positive")
    vector_bytes = hidden_dim * value_bytes
    return max(1, int(dmb_bytes * resident_fraction) // vector_bytes)


@dataclass(frozen=True)
class RegionPlan:
    """A concrete tiling of one degree-sorted adjacency matrix.

    Attributes
    ----------
    threshold:
        Size of the high-degree band (rows for region 1, columns for
        region 2).
    band:
        Sub-tile height/width when the band exceeds DMB capacity
        (equals ``threshold`` when no sub-tiling is needed).
    tiled:
        The region-tiled matrix ready for the hybrid scheduler.
    """

    threshold: int
    band: int
    tiled: RegionTiledMatrix

    @property
    def n_region1_tiles(self) -> int:
        return len(self.tiled.tiles_in_region(1))

    @property
    def n_region2_tiles(self) -> int:
        return len(self.tiled.tiles_in_region(2))


def plan_regions(
    sorted_adj: COOMatrix,
    hidden_dim: int,
    dmb_bytes: int,
    threshold_fraction: float = DEFAULT_THRESHOLD_FRACTION,
    resident_fraction: float = DEFAULT_RESIDENT_FRACTION,
    threshold: Optional[int] = None,
) -> RegionPlan:
    """Apply the paper's tiling rules to a degree-sorted adjacency matrix.

    Parameters
    ----------
    sorted_adj:
        Adjacency matrix *after* :func:`repro.graphs.preprocess.degree_sort`.
    hidden_dim:
        Width of the XW / AXW vectors (Table II layer dimension).
    dmb_bytes:
        Dense matrix buffer capacity (Table III: 256 KB).
    threshold_fraction / resident_fraction:
        Tiling knobs; defaults follow the paper.
    threshold:
        Explicit band size override (used by the threshold-sweep bench).
    """
    n = sorted_adj.shape[0]
    if threshold is None:
        threshold = tiling_threshold(n, threshold_fraction)
    threshold = min(threshold, n)
    capacity = dmb_resident_rows(dmb_bytes, hidden_dim, resident_fraction)
    band = min(threshold, capacity) if threshold else 0
    tiled = RegionTiledMatrix.build(
        sorted_adj,
        threshold,
        row_band=band if band and band < threshold else None,
        col_band=band if band and band < threshold else None,
    )
    return RegionPlan(threshold=threshold, band=band or threshold, tiled=tiled)
