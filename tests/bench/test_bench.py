"""Experiment harness: report formatting, runner caching, generators.

Generators are exercised on the two smallest datasets with explicit
tiny scales so the whole file stays fast.
"""

import numpy as np
import pytest

from repro.bench import figures, format_table, render_series, tables
from repro.bench import runner as runner_mod
from repro.bench.runner import (
    aggregation_cycles,
    clear_cache,
    configure_runtime,
    job_spec,
    make_accelerator,
    run_accelerator,
    run_suite,
    run_sweep,
    runtime_settings,
)
from repro.bench.workloads import BENCH_DATASETS, bench_scale, make_model


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [30, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # equal widths

    def test_format_table_large_numbers(self):
        text = format_table(["n"], [[1234567]])
        assert "1,234,567" in text

    def test_render_series(self):
        series = {"rwp": {"CR": 1.0, "AP": 2.0}, "hymm": {"CR": 3.0}}
        text = render_series("title", series)
        assert "title" in text
        assert "CR" in text and "AP" in text
        assert "-" in text  # missing hymm/AP cell


class TestWorkloads:
    def test_all_datasets_have_scales(self):
        for name in BENCH_DATASETS:
            assert 0 < bench_scale(name) <= 1.0

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            bench_scale("reddit")

    def test_make_model_memoised(self):
        a = make_model("cora", 0.05)
        b = make_model("cora", 0.05)
        assert a is b


class TestRunner:
    def test_run_accelerator_cached(self):
        clear_cache()
        a = run_accelerator("cora", "rwp", scale=0.05)
        b = run_accelerator("cora", "rwp", scale=0.05)
        assert a is b
        assert clear_cache() >= 1

    def test_cache_bypass(self):
        a = run_accelerator("cora", "rwp", scale=0.05, cache=False)
        b = run_accelerator("cora", "rwp", scale=0.05, cache=False)
        assert a is not b
        assert a.stats.cycles == b.stats.cycles

    def test_run_suite_keys(self):
        runs = run_suite("cora", kinds=("rwp", "hymm"), scale=0.05)
        assert set(runs) == {"rwp", "hymm"}

    def test_make_accelerator_kinds(self):
        for kind in ("op", "rwp", "cwp", "op-deferred", "hymm"):
            assert make_accelerator(kind).name == kind

    def test_make_accelerator_unknown(self):
        with pytest.raises(ValueError):
            make_accelerator("tpu")

    def test_aggregation_cycles_sums_layers(self):
        r = run_accelerator("cora", "rwp", scale=0.05, n_layers=2)
        agg = aggregation_cycles(r)
        assert agg > 0
        assert agg < r.stats.cycles

    def test_memo_keyed_by_fingerprint(self):
        clear_cache()
        run_accelerator("cora", "rwp", scale=0.05)
        fp = job_spec("cora", "rwp", 0.05).fingerprint()
        assert fp in runner_mod._CACHE

    def test_memo_is_bounded(self):
        clear_cache()
        configure_runtime(memo_limit=2)
        try:
            run_accelerator("cora", "rwp", scale=0.05)
            run_accelerator("cora", "op", scale=0.05)
            run_accelerator("cora", "rwp", scale=0.05, seed=1)
            assert len(runner_mod._CACHE) == 2
            # The oldest entry (rwp seed 0) was LRU-evicted.
            assert job_spec("cora", "rwp", 0.05).fingerprint() not in runner_mod._CACHE
        finally:
            configure_runtime(memo_limit=256)

    def test_disk_cache_round_trip(self, tmp_path):
        clear_cache()
        configure_runtime(cache_dir=str(tmp_path), disk_cache=True)
        first = run_accelerator("cora", "rwp", scale=0.05)
        clear_cache()  # drop the memo; force the disk path
        second = run_accelerator("cora", "rwp", scale=0.05)
        assert second is not first
        assert second.stats.cycles == first.stats.cycles
        disk = runtime_settings()["disk_cache"]
        assert disk.hits == 1 and disk.stores == 1

    def test_run_sweep_primes_memo(self):
        clear_cache()
        specs = [job_spec("cora", k, 0.05) for k in ("rwp", "op")]
        sweep = run_sweep(specs, n_jobs=1)
        assert len(sweep.results) == 2
        # run_accelerator now hits the memo (identity-preserved).
        assert run_accelerator("cora", "rwp", scale=0.05) is (
            sweep.results[specs[0].fingerprint()]
        )

    def test_run_suite_parallel_matches_serial(self):
        clear_cache()
        serial = run_suite("cora", kinds=("rwp", "hymm"), scale=0.05)
        clear_cache()
        parallel = run_suite("cora", kinds=("rwp", "hymm"), scale=0.05, n_jobs=2)
        for kind in ("rwp", "hymm"):
            assert parallel[kind].stats.cycles == serial[kind].stats.cycles

    def test_make_accelerator_sort_mode(self):
        acc = make_accelerator("hymm", sort_mode="none")
        assert acc.sort_mode == "none"
        with pytest.raises(ValueError):
            make_accelerator("rwp", sort_mode="none")


class TestTables:
    def test_table1_mentions_all(self):
        text = tables.table1()
        for word in ("Hybrid", "Degree sorting", "CSC", "CSR"):
            assert word in text

    def test_table2_explicit_scale(self, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.tables.BENCH_DATASETS", ("cora",)
        )
        t2 = tables.table2(scale=0.05)
        assert len(t2["rows"]) == 1
        row = t2["rows"][0]
        assert row[0] == "CR" and row[1] == 0.05
        assert row[-1] > 0  # sorting cost measured

    def test_table3_structure(self):
        t3 = tables.table3()
        assert len(t3["rows"]) == 6
        assert t3["rows"][-1][0] == "Total"
        # 7nm column reproduces the paper closely.
        for row in t3["rows"][:-1]:
            assert row[1] == pytest.approx(row[2], rel=0.06)


_TINY = ["cora", "amazon-photo"]


class TestFigures:
    @pytest.fixture(autouse=True)
    def _small_scales(self, monkeypatch):
        monkeypatch.setattr(
            "repro.bench.workloads._FAST_SCALES",
            {"cora": 0.05, "amazon-photo": 0.03},
        )

    def test_fig2(self):
        out = figures.fig2_degree_distribution(datasets=_TINY)
        assert set(out["top20_share"]) == {"CR", "AP"}
        for share in out["top20_share"].values():
            assert 0.3 < share <= 1.0

    def test_fig6(self):
        out = figures.fig6_storage_overhead(datasets=_TINY)
        for pct in out["overhead_pct"].values():
            assert pct > 0

    def test_fig7(self):
        out = figures.fig7_speedup(datasets=["cora"])
        assert out["total_speedup"]["op"]["CR"] == pytest.approx(1.0)
        assert out["aggregation_speedup"]["hymm"]["CR"] > 0

    def test_fig8(self):
        out = figures.fig8_alu_utilization(datasets=["cora"])
        for kind in ("op", "rwp", "hymm"):
            assert 0 < out["utilization"][kind]["CR"] <= 1.0

    def test_fig9(self):
        out = figures.fig9_hit_rate(datasets=["cora"])
        for kind in ("op", "rwp", "hymm"):
            assert 0 <= out["hit_rate"][kind]["CR"] <= 1.0

    def test_fig7_custom_kinds(self):
        out = figures.fig7_speedup(datasets=["cora"], kinds=("op", "op-tiled", "hymm"))
        assert set(out["total_speedup"]) == {"op", "op-tiled", "hymm"}

    def test_fig10(self):
        out = figures.fig10_partial_outputs(datasets=["cora"])
        assert out["reduction_pct"]["CR"] > 0
        assert "CR" in out["timelines"]

    def test_fig11(self):
        out = figures.fig11_dram_breakdown(datasets=["cora"])
        assert "CR" in out["reduction_vs_op"]
        assert out["breakdown"]["CR"]["hymm"]
