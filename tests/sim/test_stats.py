"""SimStats counters and derived metrics."""

import pytest

from repro.sim import SimStats


@pytest.fixture
def populated():
    s = SimStats()
    s.cycles = 1000
    s.busy_cycles = 600
    s.dram_read_bytes.update({"A": 100, "XW": 300})
    s.dram_write_bytes.update({"AXW": 200})
    s.buffer_hits.update({"XW": 80})
    s.buffer_misses.update({"XW": 20})
    s.lsq_forwards = 10
    s.partials_produced = 50
    s.partial_peak_bytes = 640
    return s


class TestDerived:
    def test_alu_utilization(self, populated):
        assert populated.alu_utilization() == pytest.approx(0.6)

    def test_alu_utilization_zero_cycles(self):
        assert SimStats().alu_utilization() == 0.0

    def test_hit_rate_includes_forwards(self, populated):
        assert populated.hit_rate() == pytest.approx((80 + 10) / 110)

    def test_hit_rate_empty(self):
        assert SimStats().hit_rate() == 0.0

    def test_hit_rate_for_tag(self, populated):
        assert populated.hit_rate_for("XW") == pytest.approx(0.8)

    def test_hit_rate_for_unknown_tag_raises(self, populated):
        with pytest.raises(ValueError, match="nope"):
            populated.hit_rate_for("nope")

    def test_hit_rate_for_declared_but_unused_tag(self, populated):
        # Declared in TRAFFIC_TAGS but absent from this run: legal, 0.0.
        assert populated.hit_rate_for("H") == 0.0

    def test_dram_total(self, populated):
        assert populated.dram_total_bytes() == 600

    def test_breakdown_merges_reads_writes(self, populated):
        bd = populated.dram_breakdown()
        assert bd == {"A": 100, "AXW": 200, "XW": 300}

    def test_partial_reduction(self, populated):
        # naive = 50 partials x 64B = 3200; peak 640 -> 80% reduction.
        assert populated.partial_reduction() == pytest.approx(0.8)

    def test_partial_reduction_no_partials(self):
        assert SimStats().partial_reduction() == 0.0


class TestPartialTimeline:
    def test_strided_sampling(self):
        s = SimStats()
        for k in range(3 * SimStats.PARTIAL_TIMELINE_STRIDE):
            s.partials_produced += 1
            s.sample_partial_footprint(k * 64)
        assert len(s.partial_timeline) == 3

    def test_samples_carry_footprint(self):
        s = SimStats()
        s.partials_produced = SimStats.PARTIAL_TIMELINE_STRIDE
        s.sample_partial_footprint(12_345)
        assert s.partial_timeline == [(SimStats.PARTIAL_TIMELINE_STRIDE, 12_345)]

    def test_merge_extends_timeline(self, populated):
        other = SimStats()
        other.partial_timeline.append((64, 640))
        populated.merge(other)
        assert (64, 640) in populated.partial_timeline


class TestMerge:
    def test_merge_adds_counters(self, populated):
        other = SimStats()
        other.cycles = 500
        other.busy_cycles = 100
        other.dram_read_bytes.update({"A": 50})
        populated.merge(other)
        assert populated.cycles == 1500
        assert populated.busy_cycles == 700
        assert populated.dram_read_bytes["A"] == 150

    def test_merge_takes_peak_max(self, populated):
        other = SimStats()
        other.partial_peak_bytes = 10_000
        populated.merge(other)
        assert populated.partial_peak_bytes == 10_000

    def test_merge_rejects_unknown_tag(self, populated):
        other = SimStats()
        other.dram_read_bytes.update({"bogus": 1})
        with pytest.raises(ValueError, match="bogus"):
            populated.merge(other)

    def test_as_dict_keys(self, populated):
        d = populated.as_dict()
        for key in (
            "cycles",
            "alu_utilization",
            "hit_rate",
            "dram_total_bytes",
            "requests_issued",
            "partial_timeline",
        ):
            assert key in d

    def test_as_dict_timeline_summary(self, populated):
        populated.partial_timeline = [(64, 100), (128, 640), (192, 320)]
        summary = populated.as_dict()["partial_timeline"]
        assert summary == {"samples": 3, "peak_footprint_bytes": 640}


class TestPhaseAttribution:
    def test_copy_is_independent(self, populated):
        snap = populated.copy()
        populated.cycles += 1
        populated.dram_read_bytes.update({"A": 1})
        populated.partial_timeline.append((999, 999))
        assert snap.cycles == 1000
        assert snap.dram_read_bytes["A"] == 100
        assert (999, 999) not in snap.partial_timeline

    def test_delta_since_counts_only_growth(self, populated):
        base = populated.copy()
        populated.cycles += 250
        populated.busy_cycles += 40
        populated.dram_read_bytes.update({"A": 64})
        populated.buffer_hits.update({"XW": 5})
        delta = populated.delta_since(base)
        assert delta.cycles == 250
        assert delta.busy_cycles == 40
        assert delta.dram_read_bytes == {"A": 64}
        assert delta.buffer_hits == {"XW": 5}
        # Untouched counters stay empty -- no resurrected zero keys.
        assert delta.dram_write_bytes == {}

    def test_delta_fold_reconstructs_whole(self, populated):
        base = populated.copy()
        populated.cycles += 100
        populated.dram_write_bytes.update({"AXW": 32})
        delta = populated.delta_since(base)
        base.merge(delta)
        assert base.to_dict() == populated.to_dict()
