"""HyMM: the paper's hybrid-dataflow GCN accelerator.

The public entry point is :class:`repro.hymm.accelerator.HyMMAccelerator`:

>>> from repro.graphs import load_dataset
>>> from repro.gcn import GCNModel
>>> from repro.hymm import HyMMAccelerator, HyMMConfig
>>> model = GCNModel(load_dataset("cora", scale=0.1))
>>> result = HyMMAccelerator(HyMMConfig()).run_inference(model)
>>> result.stats.cycles > 0
True

Internally it composes the hardware units of the paper's Figure 3:
SMQ (:mod:`repro.hymm.smq`), LSQ + PE array
(:class:`repro.sim.engine.AccessExecuteEngine`,
:mod:`repro.hymm.pe`), the unified DMB with near-memory accumulator
(:mod:`repro.hymm.dmb`), and the hybrid OP-then-RWP schedule over the
degree-sorted, region-tiled adjacency matrix
(:mod:`repro.hymm.kernels`).
"""

from repro.hymm.config import HyMMConfig
from repro.hymm.dmb import AddressMap, DenseMatrixBuffer, SplitBufferPair
from repro.hymm.smq import SparseMatrixQueue, csr_row_stream_bytes, csc_col_stream_bytes
from repro.hymm.pe import PEArray
from repro.hymm.base import AcceleratorBase, RunResult
from repro.hymm.accelerator import HyMMAccelerator

__all__ = [
    "HyMMConfig",
    "AddressMap",
    "DenseMatrixBuffer",
    "SplitBufferPair",
    "SparseMatrixQueue",
    "csr_row_stream_bytes",
    "csc_col_stream_bytes",
    "PEArray",
    "AcceleratorBase",
    "RunResult",
    "HyMMAccelerator",
]
